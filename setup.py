"""Thin shim so legacy editable installs work without the wheel package.

All project metadata (including the ``repro`` console script) lives in
``pyproject.toml``; this file exists only so ``python setup.py develop``
style tooling keeps working.
"""
from setuptools import setup

setup()
