"""Thin shim so legacy editable installs work without the wheel package."""
from setuptools import setup

setup()
