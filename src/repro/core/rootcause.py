"""Root-cause semantics: hypothetical, definitive, and minimal causes.

Implements Definitions 3-5 of the paper.  "Hypothetical" is a property
relative to an execution history (evidence so far); "definitive" and
"minimal" are properties relative to the whole instance universe, which
for a black box can only be certified by exhaustive enumeration (small
spaces) or estimated by sampling (large spaces).  The evaluation harness
uses the exhaustive/oracle forms to build ground truth for synthetic
pipelines whose failure law is known.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Iterable

from .history import ExecutionHistory
from .predicates import Conjunction, Disjunction
from .types import Instance, Outcome, ParameterSpace, Value

__all__ = [
    "is_hypothetical_root_cause",
    "is_definitive_root_cause",
    "is_minimal_definitive_root_cause",
    "find_refuting_instance",
    "minimal_definitive_causes_of_oracle",
    "prune_to_minimal",
]

# An oracle is the ground-truth failure law of a pipeline: it decides
# the outcome of *any* instance without cost.  Synthetic pipelines and
# workload simulators expose one; real black boxes do not.
Oracle = Callable[[Instance], Outcome]


def is_hypothetical_root_cause(
    conjunction: Conjunction, history: ExecutionHistory
) -> bool:
    """Definition 3: supported by a failure, refuted by no success."""
    return history.is_hypothetical_root_cause(conjunction)


def find_refuting_instance(
    conjunction: Conjunction,
    space: ParameterSpace,
    oracle: Oracle,
    max_checks: int | None = None,
    rng: random.Random | None = None,
) -> Instance | None:
    """Search the universe for a succeeding instance satisfying the cause.

    Returns a counterexample to "definitive" (Definition 4) or None when
    none exists among the checked instances.  With ``max_checks`` set,
    instances satisfying the conjunction are sampled randomly (without
    replacement when feasible); otherwise the full satisfying set is
    enumerated.
    """
    sets = conjunction.canonical(space)
    per_parameter: list[tuple[str, list[Value]]] = []
    for name in space.names:
        allowed = sets.get(name)
        if allowed is None:
            per_parameter.append((name, list(space.domain(name))))
        else:
            if not allowed:
                return None  # unsatisfiable: vacuously definitive
            per_parameter.append((name, sorted(allowed, key=repr)))

    total = 1
    for _, values in per_parameter:
        total *= len(values)

    if max_checks is None or total <= max_checks:
        names = [name for name, _ in per_parameter]
        for combo in itertools.product(*(values for _, values in per_parameter)):
            candidate = Instance(dict(zip(names, combo)))
            if oracle(candidate) is Outcome.SUCCEED:
                return candidate
        return None

    rng = rng or random.Random(0)
    # Sampling with replacement: in the large spaces that reach this
    # branch, collisions are rare enough that deduplication would cost
    # more than the occasional repeated oracle call it saves.
    for __ in range(max_checks):
        candidate = Instance(
            {name: rng.choice(values) for name, values in per_parameter}
        )
        if oracle(candidate) is Outcome.SUCCEED:
            return candidate
    return None


def is_definitive_root_cause(
    conjunction: Conjunction,
    space: ParameterSpace,
    oracle: Oracle,
    max_checks: int | None = None,
    rng: random.Random | None = None,
    require_support: bool = True,
) -> bool:
    """Definition 4 against a ground-truth oracle.

    A conjunction is definitive when every satisfying instance fails.
    ``require_support`` additionally demands the satisfying set be
    non-empty (an unsatisfiable conjunction fails every instance
    vacuously but explains nothing).
    """
    if require_support and not conjunction.is_satisfiable(space):
        return False
    refutation = find_refuting_instance(
        conjunction, space, oracle, max_checks=max_checks, rng=rng
    )
    return refutation is None


def is_minimal_definitive_root_cause(
    conjunction: Conjunction,
    space: ParameterSpace,
    oracle: Oracle,
    max_checks: int | None = None,
    rng: random.Random | None = None,
) -> bool:
    """Definition 5: definitive, and no proper predicate subset is.

    The trivial (empty) conjunction is definitive only for a pipeline
    that always fails; it is treated as minimal in that degenerate case.
    """
    if not is_definitive_root_cause(
        conjunction, space, oracle, max_checks=max_checks, rng=rng
    ):
        return False
    predicates = list(conjunction.predicates)
    for dropped in predicates:
        subset = Conjunction(p for p in predicates if p != dropped)
        if is_definitive_root_cause(
            subset, space, oracle, max_checks=max_checks, rng=rng
        ):
            return False
    return True


def prune_to_minimal(
    conjunctions: Iterable[Conjunction], space: ParameterSpace
) -> list[Conjunction]:
    """Drop conjunctions subsumed by a strictly more general peer.

    Used to normalize asserted cause sets before scoring: if both
    ``A=1`` and ``A=1 and B=2`` are asserted, only ``A=1`` is kept
    (its satisfying set is a strict superset).
    """
    unique = list(dict.fromkeys(conjunctions))
    kept: list[Conjunction] = []
    for candidate in unique:
        subsumed = False
        for other in unique:
            if other is candidate or other == candidate:
                continue
            if other.subsumes(candidate, space) and not candidate.subsumes(
                other, space
            ):
                subsumed = True
                break
        if not subsumed:
            kept.append(candidate)
    return kept


def minimal_definitive_causes_of_oracle(
    space: ParameterSpace,
    oracle: Oracle,
    max_arity: int | None = None,
    candidate_conjunctions: Iterable[Conjunction] | None = None,
) -> list[Conjunction]:
    """Enumerate all minimal definitive *equality* root causes of an oracle.

    Exhaustive ground-truth computation for small spaces: every
    conjunction of ``parameter = value`` pairs up to ``max_arity`` is
    tested for Definition 5.  Synthetic workloads with planted
    inequality causes should pass their planted conjunctions through
    ``candidate_conjunctions`` instead, which are verified (not trusted).

    This is exponential by design; it exists to create ground truth for
    the evaluation harness, not for debugging.
    """
    results: list[Conjunction] = []
    if candidate_conjunctions is not None:
        for conjunction in candidate_conjunctions:
            if is_minimal_definitive_root_cause(conjunction, space, oracle):
                results.append(conjunction)
        return prune_to_minimal(results, space)

    from .predicates import Comparator, Predicate

    names = space.names
    arity_limit = max_arity if max_arity is not None else len(names)
    definitive_so_far: list[Conjunction] = []
    for arity in range(1, arity_limit + 1):
        for subset in itertools.combinations(names, arity):
            value_lists = [space.domain(name) for name in subset]
            for values in itertools.product(*value_lists):
                conjunction = Conjunction(
                    Predicate(name, Comparator.EQ, value)
                    for name, value in zip(subset, values)
                )
                # Skip if a smaller definitive cause is a sub-conjunction:
                # such a candidate cannot be minimal.
                if any(
                    smaller.predicates <= conjunction.predicates
                    for smaller in definitive_so_far
                ):
                    continue
                if is_definitive_root_cause(conjunction, space, oracle):
                    definitive_so_far.append(conjunction)
                    results.append(conjunction)
    return prune_to_minimal(results, space)


def causes_semantically_match(
    asserted: Conjunction,
    actual: Conjunction,
    space: ParameterSpace,
) -> bool:
    """True when the asserted cause equals the actual one over the space."""
    return asserted.semantically_equals(actual, space)


def disjunction_of(conjunctions: Iterable[Conjunction]) -> Disjunction:
    """Convenience constructor used by callers assembling explanations."""
    return Disjunction(conjunctions)
