"""Debugging sessions: the shared execution context of all algorithms.

A :class:`DebugSession` bundles the three things every BugDoc algorithm
needs -- the black-box :class:`~repro.core.types.Executor`, the growing
:class:`~repro.core.history.ExecutionHistory`, and an
:class:`~repro.core.budget.InstanceBudget` -- behind a single
``evaluate`` call that implements the paper's cost model: looking up a
previously-run instance is free; executing a new one costs one budget
unit and is recorded in the history.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Sequence
from typing import Protocol, runtime_checkable

from .budget import InstanceBudget
from .history import ExecutionHistory
from .types import Evaluation, Executor, Instance, Outcome, ParameterSpace

__all__ = ["DebugSession", "ExecutionBackend", "InstanceUnavailable"]


class InstanceUnavailable(LookupError):
    """Raised in historical (replay-only) mode for never-logged instances.

    Section 5.3 (DBSherlock): when new instances cannot be created, the
    algorithms "early stop" the hypothesis that required the missing
    instance instead of fabricating an outcome.
    """

    def __init__(self, instance: Instance):
        super().__init__(f"instance not available in historical log: {instance!r}")
        self.instance = instance


@runtime_checkable
class ExecutionBackend(Protocol):
    """Pluggable batch-execution strategy for a :class:`DebugSession`.

    The session stays the single owner of budget/history accounting; a
    backend only decides *where and with what concurrency* the batch
    tasks run.  Implementations live in :mod:`repro.concurrency.scheduler`
    (a per-job view of a shared worker pool) -- the parallel
    dispatcher of Section 4.3 is the ``parallel=True`` case.

    Each task is a zero-argument callable returning the evaluated
    :class:`~repro.core.types.Outcome` or None for a dropped item; it
    may expose a zero-argument ``skip`` attribute that a budget-aware
    backend can consult to resolve the task as dropped without
    occupying an execution slot.
    """

    @property
    def parallel(self) -> bool:  # pragma: no cover - protocol
        """Whether batches run concurrently (drives algorithm strategy)."""
        ...

    def run_batch(
        self, tasks: Sequence[Callable[[], Outcome | None]]
    ) -> list[Outcome | None]:  # pragma: no cover - protocol
        """Run independent tasks, returning their results in order."""
        ...


class DebugSession:
    """Execution context shared by the debugging algorithms.

    Thread-safe: the parallel dispatcher evaluates many instances
    concurrently against one session.  The lock protects the
    history/budget pair so the paper's cost accounting stays exact even
    under speculative parallelism (Section 4.3).

    Args:
        executor: black-box pipeline (instance -> outcome).
        space: the parameter space instances are drawn from.
        history: previously-run instances; shared, mutated in place.
        budget: cap on *new* executions; defaults to unlimited.
        candidate_source: optional hypothesis-testing oracle for
            *historical mode* -- given a conjunction and a count, return
            logged-but-unread instances satisfying it.  The paper's
            DBSherlock experiment "simulated the creation of new
            instances by reading only part of provenance": algorithms
            draw their test instances from this source instead of the
            full Cartesian space, and early-stop when it is empty.
        backend: optional :class:`ExecutionBackend` that ``evaluate_many``
            fans batches out to (e.g. the shared service scheduler).
            Without one, batches run serially inline.
        progress: optional ``(kind, payload)`` callable -- the neutral
            progress hook.  The session publishes ``budget_spent`` after
            every *charged, completed* execution, and the strategies
            publish their own events through it (via
            :meth:`StrategyContext.emit`); the service layer plugs an
            event bus in here without the core importing it.  The hook
            is a plain mutable attribute, so callers may also attach it
            after construction.  A raising hook is swallowed: progress
            reporting must never corrupt accounting.
    """

    def __init__(
        self,
        executor: Executor,
        space: ParameterSpace,
        history: ExecutionHistory | None = None,
        budget: InstanceBudget | None = None,
        candidate_source=None,
        backend: ExecutionBackend | None = None,
        progress=None,
    ):
        self._executor = executor
        self._space = space
        self._history = history if history is not None else ExecutionHistory()
        self._budget = budget if budget is not None else InstanceBudget()
        self._lock = threading.Lock()
        self._executions = 0
        self._backend = backend
        self.candidate_source = candidate_source
        self.progress = progress

    # -- Accessors ---------------------------------------------------------
    @property
    def space(self) -> ParameterSpace:
        return self._space

    @property
    def history(self) -> ExecutionHistory:
        return self._history

    @property
    def budget(self) -> InstanceBudget:
        return self._budget

    @property
    def new_executions(self) -> int:
        """Count of instances actually executed (not served from history)."""
        return self._executions

    @property
    def backend(self) -> ExecutionBackend | None:
        """The pluggable batch-execution backend, if any."""
        return self._backend

    @property
    def parallel(self) -> bool:
        """True when ``evaluate_many`` runs a batch concurrently.

        The DDT suspect test inspects this: a serial session evaluates
        variations one at a time with an early stop on the first
        refutation; a parallel session speculatively executes the whole
        batch (Section 4.3's latency-for-waste trade-off).
        """
        return bool(self._backend is not None and self._backend.parallel)

    # -- Core operation -------------------------------------------------------
    def evaluate(self, instance: Instance) -> Outcome:
        """Evaluate an instance, executing it only if it is not in history.

        Raises:
            BudgetExhausted: when a new execution would exceed the budget.
            InstanceUnavailable: in replay-only mode for unknown instances.
        """
        with self._lock:
            known = self._history.outcome_of(instance)
            if known is not None:
                return known
            self._budget.charge()
        # Execute outside the lock: pipeline runs are the expensive part
        # and are independent (Section 4.3).
        started = time.perf_counter()
        try:
            outcome = self._executor(instance)
        except BaseException:
            # BaseException: cancellation unwinds (service layer) travel
            # as non-Exception errors precisely so batch error-swallowing
            # cannot absorb them; their charge must be refunded too.
            with self._lock:
                # Refund: the execution did not complete, so the paper's
                # cost measure (completed instance runs) is not charged.
                self._budget._spent -= 1  # noqa: SLF001 - deliberate refund
            raise
        elapsed = time.perf_counter() - started
        with self._lock:
            if self._history.outcome_of(instance) is None:
                self._history.record(instance, outcome)
            else:
                # A concurrent evaluation beat us to it; refund our charge
                # so accounting matches the deduplicated history.
                self._budget._spent -= 1  # noqa: SLF001 - deliberate refund
                return self._history.outcome_of(instance)  # type: ignore[return-value]
            self._executions += 1
            spent = self._budget.spent
            executions = self._executions
        progress = self.progress
        if progress is not None:
            # Snapshot taken under the lock (self-consistent); published
            # outside it so a slow subscriber cannot stall evaluation.
            # Exactly one budget_spent event per charged execution, and
            # one execution span right before it (wall-time breakdowns
            # per job stay queryable from the event log alone).
            try:
                progress("span", {"name": "execution", "seconds": elapsed})
                progress(
                    "budget_spent",
                    {
                        "spent": spent,
                        "limit": self._budget.limit,
                        "new_executions": executions,
                    },
                )
            except Exception:
                pass  # a broken progress sink must never fail the run
        return outcome

    def evaluate_many(self, instances: Sequence[Instance]) -> list[Outcome | None]:
        """Evaluate a batch; the backend (if any) decides the concurrency.

        Without a backend the batch runs serially inline and exceptions
        propagate (strict per-item semantics).  With a backend, items
        are speculatively independent (Section 4.3): an item whose
        evaluation raised, replay-missed, or ran out of budget resolves
        to None instead of aborting the batch.
        """
        if self._backend is None:
            return [self.evaluate(instance) for instance in instances]
        if not instances:
            return []
        return list(
            self._backend.run_batch(
                [self._batch_task(instance) for instance in instances]
            )
        )

    def _batch_task(self, instance: Instance):
        """One backend task: evaluate with drop-on-failure semantics.

        The attached ``skip`` hook lets a budget-aware backend resolve
        the task without dispatching it when the job's budget is gone
        and the instance is not a free history hit.
        """

        def task() -> Outcome | None:
            try:
                return self.evaluate(instance)
            except InstanceUnavailable:
                return None
            except Exception:
                return None

        def skip() -> bool:
            return (
                self._budget.exhausted()
                and self._history.outcome_of(instance) is None
            )

        task.skip = skip  # type: ignore[attr-defined]
        return task

    def try_evaluate(self, instance: Instance) -> Outcome | None:
        """Evaluate, mapping replay-unavailability to None (early stop)."""
        try:
            return self.evaluate(instance)
        except InstanceUnavailable:
            return None

    # -- Columnar engine integration -----------------------------------------
    def columnar_store(self, plan=None):
        """The history's columnar store for this session's space, synced.

        Syncing happens under the session lock, so the engine's bitsets
        never observe a half-recorded evaluation even when a parallel
        backend is appending to the history concurrently.  ``plan``
        optionally pins the :class:`~repro.core.shards.ShardPlan` used
        when the store is (re)built.
        """
        with self._lock:
            return self._history.columnar_store(self._space, plan=plan)

    # -- Seeding ------------------------------------------------------------
    def seed(self, evaluations: Iterable[Evaluation]) -> None:
        """Load prior provenance into the history free of charge."""
        with self._lock:
            for evaluation in evaluations:
                if self._history.outcome_of(evaluation.instance) is None:
                    self._history.append(evaluation)
