"""Execution history: the algorithm-facing view of provenance.

Every BugDoc algorithm consumes an :class:`ExecutionHistory` -- the set
``G = CP1..CPk`` of previously-run instances with their evaluations --
and appends to it as new instances are executed.  The history maintains
the parameter-value universe of Definition 1 and the indexes the
algorithms need (failing instances, successful instances, disjoint-pair
search).

Two derived structures are maintained *incrementally* on append instead
of being recomputed per call:

* the per-parameter value universe (and the :class:`ParameterSpace`
  built from it), and
* optional columnar stores (:class:`repro.core.engine.ColumnarStore`),
  one per parameter space, which hold integer-encoded value columns and
  fail/succeed bitsets for the columnar evaluation engine.

The durable, queryable provenance store lives in
:mod:`repro.provenance`; it can produce and ingest histories.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from .predicates import Conjunction
from .types import Evaluation, Instance, Outcome, ParameterSpace, Value

__all__ = ["ExecutionHistory"]


class ExecutionHistory:
    """An append-only log of evaluated pipeline instances.

    Duplicate executions of the same instance are recorded (real logs
    contain them) but :meth:`outcome_of` exposes the deterministic-bug
    assumption of Definition 2: re-running an instance yields the same
    outcome, and appending a contradictory outcome raises.
    """

    def __init__(self, evaluations: Iterable[Evaluation] = ()):
        self._evaluations: list[Evaluation] = []
        self._outcome_by_instance: dict[Instance, Outcome] = {}
        self._failures: list[Instance] = []
        self._successes: list[Instance] = []
        self._distinct: list[Instance] = []
        self._universe: dict[str, set[Value]] = {}
        self._observed_space: ParameterSpace | None = None
        self._columnar_store = None  # latest ColumnarStore (one space)
        for evaluation in evaluations:
            self.append(evaluation)

    # -- Mutation ------------------------------------------------------------
    def append(self, evaluation: Evaluation) -> None:
        """Record one evaluation.

        Raises:
            ValueError: when the instance was already recorded with the
                opposite outcome (violates the deterministic evaluation
                assumption of Definition 2).
        """
        instance = evaluation.instance
        known = self._outcome_by_instance.get(instance)
        if known is not None and known is not evaluation.outcome:
            raise ValueError(
                f"contradictory outcomes recorded for instance {instance!r}: "
                f"{known.value} then {evaluation.outcome.value}"
            )
        self._evaluations.append(evaluation)
        if known is None:
            self._outcome_by_instance[instance] = evaluation.outcome
            self._distinct.append(instance)
            if evaluation.outcome is Outcome.FAIL:
                self._failures.append(instance)
            else:
                self._successes.append(instance)
            for name, value in instance.items():
                values = self._universe.get(name)
                if values is None:
                    self._universe[name] = {value}
                    self._observed_space = None
                elif value not in values:
                    values.add(value)
                    self._observed_space = None

    def record(self, instance: Instance, outcome: Outcome, **kwargs) -> Evaluation:
        """Convenience: build an :class:`Evaluation` and append it."""
        evaluation = Evaluation(instance=instance, outcome=outcome, **kwargs)
        self.append(evaluation)
        return evaluation

    # -- Lookup ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._evaluations)

    def __iter__(self) -> Iterator[Evaluation]:
        return iter(self._evaluations)

    def __contains__(self, instance: Instance) -> bool:
        return instance in self._outcome_by_instance

    @property
    def evaluations(self) -> tuple[Evaluation, ...]:
        return tuple(self._evaluations)

    @property
    def instances(self) -> tuple[Instance, ...]:
        """Distinct executed instances, in first-execution order."""
        return tuple(self._distinct)

    @property
    def distinct_count(self) -> int:
        """Number of distinct executed instances (cheap, no tuple build)."""
        return len(self._distinct)

    def distinct_since(
        self, start: int
    ) -> Sequence[tuple[Instance, Outcome]]:
        """Distinct (instance, outcome) pairs appended at position >= start.

        The columnar engine uses this to extend its column store
        incrementally instead of re-reading the whole history.
        """
        return [
            (instance, self._outcome_by_instance[instance])
            for instance in self._distinct[start:]
        ]

    @property
    def failures(self) -> tuple[Instance, ...]:
        """Distinct failing instances, in first-execution order."""
        return tuple(self._failures)

    @property
    def successes(self) -> tuple[Instance, ...]:
        """Distinct succeeding instances, in first-execution order."""
        return tuple(self._successes)

    def outcome_of(self, instance: Instance) -> Outcome | None:
        """The recorded outcome of ``instance``, or None if never run."""
        return self._outcome_by_instance.get(instance)

    # -- Universe (Definition 1) -------------------------------------------
    def value_universe(self) -> dict[str, set[Value]]:
        """``U_p`` per parameter: every value any executed instance assigned.

        Maintained incrementally on append; the returned sets are copies
        so callers may mutate them freely.
        """
        return {name: set(values) for name, values in self._universe.items()}

    def observed_space(self) -> ParameterSpace:
        """A :class:`ParameterSpace` built from the observed universe.

        All parameters are treated as categorical (order information is
        not recoverable from a bare log); callers that know better should
        supply their own space.  The space is cached and only rebuilt
        after an append introduced a new parameter or value.
        """
        from .types import Parameter  # local import to keep module load light

        if self._observed_space is None:
            self._observed_space = ParameterSpace(
                [
                    Parameter(name, tuple(sorted(values, key=repr)))
                    for name, values in sorted(self._universe.items())
                ]
            )
        return self._observed_space

    # -- Columnar store (engine integration) ---------------------------------
    def columnar_store(self, space: ParameterSpace, plan=None):
        """The columnar store of this history for ``space``, synced.

        The latest store is kept and extended incrementally: repeated
        calls with the same space object only encode instances appended
        since the last call.  Asking with a *different* space rebuilds
        (keep-latest, so alternating spaces per history is O(rows) per
        switch -- sessions use one space, which stays incremental, and
        nothing accumulates unboundedly).  ``plan`` is an optional
        :class:`~repro.core.shards.ShardPlan` applied when a store is
        (re)built; None keeps an existing store's plan or auto-sizes a
        new one.  See :class:`repro.core.engine.ColumnarStore`.
        """
        from .engine import ColumnarStore  # lazy: avoid import cycle

        store = self._columnar_store
        if (
            store is None
            or store.space is not space
            or (plan is not None and store.plan != plan)
        ):
            store = ColumnarStore(self, space, plan=plan)
            self._columnar_store = store
        store.sync()
        return store

    def columnar_store_from_codes(self, space: ParameterSpace, codes, plan=None):
        """Adopt a columnar store seeded from pre-encoded rows.

        ``codes`` holds one code tuple per distinct instance, in
        first-execution order (what a schema-v3 provenance store
        persists).  The store is populated without a single
        ``SpaceCodec.encode`` call and becomes this history's
        incremental store, so later appends extend it normally.
        Raises ValueError for malformed codes (callers fall back to
        the encoding path via :meth:`columnar_store`).
        """
        from .engine import ColumnarStore  # lazy: avoid import cycle

        store = ColumnarStore(self, space, plan=plan)
        store.load_codes(codes)
        self._columnar_store = store
        return store

    # -- Queries used by the debugging algorithms ----------------------------
    def successes_satisfying(self, conjunction: Conjunction) -> list[Instance]:
        """Succeeding instances whose assignment satisfies ``conjunction``."""
        return [s for s in self._successes if conjunction.satisfied_by(s)]

    def failures_satisfying(self, conjunction: Conjunction) -> list[Instance]:
        """Failing instances whose assignment satisfies ``conjunction``."""
        return [f for f in self._failures if conjunction.satisfied_by(f)]

    def refutes(self, conjunction: Conjunction) -> bool:
        """True when some *successful* instance satisfies the conjunction.

        This is the negation of condition (ii) of Definition 3: a
        satisfied-and-succeeded instance disproves the hypothesis.
        """
        return any(conjunction.satisfied_by(s) for s in self._successes)

    def supports(self, conjunction: Conjunction) -> bool:
        """True when some *failing* instance satisfies the conjunction.

        Condition (i) of Definition 3.
        """
        return any(conjunction.satisfied_by(f) for f in self._failures)

    def is_hypothetical_root_cause(self, conjunction: Conjunction) -> bool:
        """Definition 3 against this history: supported and not refuted."""
        return self.supports(conjunction) and not self.refutes(conjunction)

    def disjoint_successes(self, failing: Instance) -> list[Instance]:
        """Successful instances disjoint (Definition 6) from ``failing``."""
        return [
            s for s in self._successes if failing.is_disjoint_from(s)
        ]

    def most_different_success(self, failing: Instance) -> Instance | None:
        """The success with maximal Hamming distance from ``failing``.

        Used as the paper's fallback heuristic when the Disjointness
        Condition does not hold.  Ties break toward the earliest-run
        instance for determinism.
        """
        best: Instance | None = None
        best_distance = -1
        for success in self._successes:
            distance = failing.hamming_distance(success)
            if distance > best_distance:
                best, best_distance = success, distance
        return best

    def mutually_disjoint_successes(
        self, failing: Instance, limit: int | None = None
    ) -> list[Instance]:
        """Greedily select successes disjoint from ``failing`` and each other.

        The Stacked Shortcut algorithm wants ``k`` mutually disjoint
        successful instances (Algorithm 2).  Finding a maximum such set
        is NP-hard in general; we use the greedy first-fit order of the
        log, which matches the paper's "if possible" phrasing.  Every
        returned instance is disjoint from ``failing`` (unioning
        assertions from non-disjoint comparisons would over-assert,
        breaking Theorem 2's never-a-superset guarantee); callers with
        no disjoint success at all fall back to the single
        most-different-instance heuristic.
        """
        selected: list[Instance] = []
        for success in self._successes:
            if not failing.is_disjoint_from(success):
                continue
            if all(success.is_disjoint_from(other) for other in selected):
                selected.append(success)
                if limit is not None and len(selected) >= limit:
                    break
        return selected

    def success_superset_of(self, assignment) -> bool:
        """True when some success contains every pair of ``assignment``.

        This is the Shortcut algorithm's final sanity check (Theorem 4):
        an asserted cause contained in a *successful* instance is a
        truncated assertion and must be rejected.  The columnar engine
        (:meth:`repro.core.engine.ColumnarEngine.success_superset_of`)
        answers the same question with one bitset AND per pair.
        """
        for success in self._successes:
            if all(success[name] == value for name, value in assignment.items()):
                return True
        return False

    def copy(self) -> "ExecutionHistory":
        """A shallow copy sharing the evaluation objects."""
        return ExecutionHistory(self._evaluations)

    @staticmethod
    def from_pairs(
        pairs: Sequence[tuple[Instance, Outcome]],
    ) -> "ExecutionHistory":
        """Build a history from bare (instance, outcome) pairs."""
        history = ExecutionHistory()
        for instance, outcome in pairs:
            history.record(instance, outcome)
        return history
