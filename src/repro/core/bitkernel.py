"""Shared bit-twiddling helpers and the popcount/rank kernel seam.

Every hot loop of the columnar engine reduces to the same handful of
big-int idioms: pull the lowest set bit (``mask & -mask`` then
``bit_length() - 1``), iterate set-bit positions, OR a column subset
selected by an allowed-code mask, and count bits.  Before this module
the idioms were copy-pasted across :mod:`repro.core.engine`; they now
live here so the sharded and legacy code paths share one audited
implementation.

The popcount/rank *kernel* is selectable:

* ``"int"`` (default): CPython's C-level :meth:`int.bit_count`, which
  on this interpreter beats everything that requires materializing the
  integer as bytes first (``to_bytes`` alone costs more than the count).
* ``"bytes"``: converts masks to little-endian bytes and counts with
  :func:`numpy.bitwise_count` over a ``uint64`` view.  numpy releases
  the GIL for large array ops, so this path is the one worth fanning
  across the shard thread pool on interpreters/platforms where big-int
  conversion is cheap relative to the digit-loop popcount.  Falls back
  to the pure-int path when numpy is unavailable.

Select with ``REPRO_BITKERNEL=int|bytes`` (read at import); the active
path is visible as ``kernel_path()`` and surfaced through
``ColumnarEngine.stats()["kernel_path"]`` so benchmark runs record
which kernel produced their numbers.  Both kernels return identical
values (property-tested in ``tests/test_shards.py``).
"""

from __future__ import annotations

import os

__all__ = [
    "lowest_bit",
    "iter_bits",
    "accumulate_codes",
    "popcount",
    "popcount_and",
    "rank",
    "kernel_path",
]

try:  # the bytes kernel is optional; the int path is always available
    import numpy as _np

    if not hasattr(_np, "bitwise_count"):  # pragma: no cover - numpy < 2
        _np = None
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit of a non-zero ``mask``."""
    return (mask & -mask).bit_length() - 1


def iter_bits(mask: int):
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def accumulate_codes(column: list[int], allowed: int) -> int:
    """OR of ``column[code]`` over the set bits of ``allowed``.

    The match-table build loop: ``column`` is one parameter's per-code
    row bitsets and ``allowed`` the compiled allowed-code mask; the
    result is the bitset of rows whose code lies in the mask.  Shared
    by the per-shard tables and the legacy uncached accumulation.
    """
    matched = 0
    while allowed:
        low = allowed & -allowed
        matched |= column[low.bit_length() - 1]
        allowed ^= low
    return matched


def _popcount_int(mask: int) -> int:
    return mask.bit_count()


def _popcount_bytes(mask: int) -> int:
    if mask < 0:  # pragma: no cover - engine masks are non-negative
        raise ValueError("popcount of a negative mask")
    length = mask.bit_length()
    if length <= 512:
        # Fixed numpy dispatch overhead dominates tiny masks; the
        # crossover is far above this, so stay on the C digit loop.
        return mask.bit_count()
    words = (length + 63) // 64
    view = _np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=_np.uint64
    )
    return int(_np.bitwise_count(view).sum())


_KERNELS = {"int": _popcount_int}
if _np is not None:
    _KERNELS["bytes"] = _popcount_bytes

_requested = os.environ.get("REPRO_BITKERNEL", "int").strip().lower() or "int"
if _requested not in ("int", "bytes"):
    raise ValueError(
        f"REPRO_BITKERNEL={_requested!r}: expected 'int' or 'bytes'"
    )
# Fall back to the pure-int path when the bytes kernel has no numpy.
_ACTIVE = _requested if _requested in _KERNELS else "int"
popcount = _KERNELS[_ACTIVE]


def popcount_and(a: int, b: int) -> int:
    """``popcount(a & b)`` through the active kernel."""
    return popcount(a & b)


def rank(mask: int, position: int) -> int:
    """Number of set bits of ``mask`` strictly below ``position``."""
    return popcount(mask & ((1 << position) - 1))


def kernel_path() -> str:
    """The active popcount kernel: ``"int"`` or ``"bytes"``."""
    return _ACTIVE
