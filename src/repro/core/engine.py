"""Columnar evaluation engine: the bitset fast path of the debugger.

The reference implementations in :mod:`repro.core.history` and
:mod:`repro.core.tree` evaluate hypotheses by walking Python dicts: a
``refutes`` call applies every predicate to every successful instance,
and every Debugging-Decision-Trees round re-partitions instance dicts at
every tree node.  On large parameter sweeps the debugger's own CPU time
then dominates (the paper's Figure 5 regime), exactly the situation
SMBO-style tools handle by compiling the search's inner loop to array
operations.

This module provides that compiled path:

* :class:`SpaceCodec` interns every domain value of a
  :class:`~repro.core.types.ParameterSpace` to a small integer code
  (its domain position, so ordinal code order equals value order).
* :class:`ColumnarStore` maintains, per parameter and per value code,
  a bitset of history rows holding that code, plus fail/succeed row
  bitsets.  It appends incrementally as the history grows.
* Conjunctions compile to per-parameter *allowed-code masks*; testing
  one against the whole history is a handful of big-int ANDs
  (:meth:`ColumnarEngine.refutes` / :meth:`ColumnarEngine.supports`).
* :class:`IncrementalTreeBuilder` induces the debugging decision tree
  over index bitsets, and *repairs* the previous round's tree on append
  instead of rebuilding it: only nodes whose row set changed are
  re-scored, and a subtree is rebuilt only when its best split changed.

Correctness contract: every public operation returns **exactly** what
the dict-based reference path returns.  The encoders therefore refuse
anything they cannot mirror faithfully -- a history row whose parameter
set differs from the space, an out-of-domain value, a predicate whose
comparator raises -- and the engine transparently falls back to the
reference implementation for that query (or entirely, when the store is
degraded).  The equivalence is property-tested in
``tests/test_engine.py``.

The incremental-tree invariant: after ``sync``, the shadow tree equals
the tree a full rebuild over the current rows would produce.  This
holds because tree induction is a pure function of a node's row bitset
(and depth): repaired nodes re-run the full candidate scan, children
that received no new rows keep bit-identical row sets, and a node whose
best split changed is rebuilt from scratch.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .predicates import Comparator, Conjunction, Predicate
from .tree import DebuggingTree, LeafKind, TreeNode, _gini, _predicate_rank
from .types import Instance, Outcome, ParameterSpace

__all__ = [
    "SpaceCodec",
    "ColumnarStore",
    "ColumnarEngine",
    "IncrementalTreeBuilder",
    "compile_conjunction",
]


def _iter_bits(mask: int):
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class SpaceCodec:
    """Value-interning tables for one parameter space.

    Codes are domain positions: ``codec`` work is a handful of dict
    lookups per instance, done once, after which every engine operation
    is integer arithmetic.
    """

    __slots__ = (
        "space",
        "names",
        "parameters",
        "n_params",
        "index_of_name",
        "domain_sizes",
        "full_masks",
        "repr_orders",
    )

    def __init__(self, space: ParameterSpace):
        self.space = space
        self.names = space.names
        self.parameters = space.parameters
        self.n_params = len(self.names)
        self.index_of_name = {name: i for i, name in enumerate(self.names)}
        self.domain_sizes = tuple(len(p.domain) for p in self.parameters)
        self.full_masks = tuple((1 << size) - 1 for size in self.domain_sizes)
        # Candidate order for categorical splits: codes sorted by value
        # repr, mirroring ``sorted(observed, key=repr)`` in the
        # reference ``_candidate_splits``.
        self.repr_orders = tuple(
            tuple(sorted(range(len(p.domain)), key=lambda c, p=p: repr(p.domain[c])))
            for p in self.parameters
        )

    def encode(self, instance: Mapping[str, object]) -> tuple[int, ...] | None:
        """Instance -> per-parameter value codes, or None when the
        instance is not exactly one in-domain value per space parameter.
        """
        codes = self.encode_lenient(instance)
        if codes is None or None in codes:
            return None
        return codes  # type: ignore[return-value]

    def encode_lenient(
        self, instance: Mapping[str, object]
    ) -> tuple[int | None, ...] | None:
        """Like :meth:`encode`, but tolerant of out-of-domain values.

        Out-of-domain values encode to None *per parameter* -- for
        distance/disjointness purposes such a value simply differs from
        every in-domain row value, which keeps Hamming and disjointness
        queries exact without falling back.  Returns None (uncodable)
        only when the instance's parameter-name set is not exactly the
        space's, because then the reference semantics (shared-parameter
        counting, Definition 6's common-parameter-set requirement)
        cannot be mirrored column-wise.
        """
        if len(instance) != self.n_params:
            return None
        codes: list[int | None] = []
        for parameter in self.parameters:
            try:
                value = instance[parameter.name]
            except KeyError:
                return None
            codes.append(parameter.code_of(value))
        return tuple(codes)


def compile_conjunction(
    conjunction: Conjunction, codec: SpaceCodec
) -> list[tuple[int, int]] | None:
    """Compile to ``[(parameter_index, allowed_code_mask), ...]``.

    Mirrors :meth:`Conjunction.satisfied_by` exactly over in-domain
    rows: a row satisfies the conjunction iff, for every entry, the
    row's code bit is inside the allowed mask.  Entries whose mask is
    the full domain are kept out (no constraint).  Returns None when
    the conjunction cannot be compiled faithfully (a predicate on a
    parameter outside the space, or a comparator that raises on some
    domain value); callers must fall back to the reference path.
    """
    masks: dict[int, int] = {}
    try:
        for predicate in conjunction.predicates:
            index = codec.index_of_name.get(predicate.parameter)
            if index is None:
                return None
            mask = predicate.satisfying_code_mask(codec.parameters[index])
            previous = masks.get(index)
            masks[index] = mask if previous is None else previous & mask
    except Exception:
        return None
    return sorted(
        (index, mask)
        for index, mask in masks.items()
        if mask != codec.full_masks[index]
    )


class ColumnarStore:
    """Integer-coded columns + outcome bitsets over one history.

    Row ``i`` is the ``i``-th *distinct* instance of the history (the
    exact sample set the DDT induction consumes).  ``value_rows[p][c]``
    is the bitset of rows whose parameter ``p`` has code ``c``;
    ``fail_mask`` / ``succeed_mask`` partition ``all_mask`` by outcome.
    :meth:`sync` appends rows for history entries recorded since the
    last call -- nothing is ever recomputed from scratch.

    A row the codec cannot encode marks the store *degraded*: every
    engine operation then falls back to the reference path (answers
    from a partial column store would silently diverge).
    """

    def __init__(self, history, space: ParameterSpace):
        self.history = history
        self.space = space
        self.codec = SpaceCodec(space)
        self.value_rows: list[list[int]] = [
            [0] * size for size in self.codec.domain_sizes
        ]
        self.fail_mask = 0
        self.all_mask = 0
        self.n_rows = 0
        self.rows: list[Instance] = []
        self.row_codes: list[tuple[int, ...]] = []
        self.degraded = False
        self._synced = 0
        self._builders: dict[int | None, IncrementalTreeBuilder] = {}

    @property
    def succeed_mask(self) -> int:
        return self.all_mask & ~self.fail_mask

    def sync(self) -> None:
        """Append rows for history entries recorded since the last sync."""
        if self.degraded:
            return
        count = self.history.distinct_count
        if count == self._synced:
            return
        encode = self.codec.encode
        value_rows = self.value_rows
        for instance, outcome in self.history.distinct_since(self._synced):
            codes = encode(instance)
            if codes is None:
                self.degraded = True
                break
            bit = 1 << self.n_rows
            for index, code in enumerate(codes):
                value_rows[index][code] |= bit
            if outcome is Outcome.FAIL:
                self.fail_mask |= bit
            self.all_mask |= bit
            self.rows.append(instance)
            self.row_codes.append(codes)
            self.n_rows += 1
        self._synced = count

    def rows_matching(self, compiled: list[tuple[int, int]], within: int) -> int:
        """Bitset of rows in ``within`` satisfying a compiled conjunction."""
        rows = within
        for index, allowed in compiled:
            if not rows:
                break
            column = self.value_rows[index]
            matched = 0
            remaining = allowed
            while remaining:
                low = remaining & -remaining
                matched |= column[low.bit_length() - 1]
                remaining ^= low
            rows &= matched
        return rows

    def materialize(self, rows_mask: int) -> list[Instance]:
        """The instances of the rows in ``rows_mask``, in row order."""
        rows = self.rows
        return [rows[index] for index in _iter_bits(rows_mask)]

    # -- Distance / disjointness primitives ----------------------------------
    def share_mask(self, codes: Sequence[int | None]) -> int:
        """Bitset of rows sharing at least one coded value with ``codes``.

        ``codes`` is a leniently-encoded instance (one entry per space
        parameter); a None entry is an out-of-domain value, which shares
        with no row.  The complement of the result (within ``all_mask``)
        is exactly the rows *disjoint* from the instance under
        Definition 6, because every store row assigns every parameter.
        """
        shared = 0
        value_rows = self.value_rows
        for index, code in enumerate(codes):
            if code is not None:
                shared |= value_rows[index][code]
        return shared

    def min_shared_row(
        self, codes: Sequence[int | None], within: int
    ) -> int | None:
        """The earliest row in ``within`` sharing the *fewest* parameter
        values with ``codes`` -- i.e. the maximal-Hamming-distance row,
        with ties broken toward the lowest row index (first-execution
        order), mirroring the reference scan's strictly-greater update.

        Returns None when ``within`` is empty.  Cost is
        O(n_params * log(n_params)) big-int operations: per-row shared
        counts are accumulated in bit-sliced binary counters, then the
        minimum is selected plane-by-plane from the high bit down.
        """
        if not within:
            return None
        planes: list[int] = []  # planes[i]: rows whose count has bit i set
        value_rows = self.value_rows
        for index, code in enumerate(codes):
            if code is None:
                continue
            carry = value_rows[index][code] & within
            level = 0
            while carry:
                if level == len(planes):
                    planes.append(carry)
                    break
                carry, planes[level] = (
                    planes[level] & carry,
                    planes[level] ^ carry,
                )
                level += 1
        candidates = within
        for plane in reversed(planes):
            zeros = candidates & ~plane
            if zeros:
                candidates = zeros
        low = candidates & -candidates
        return low.bit_length() - 1

    def builder(self, max_depth: int | None) -> "IncrementalTreeBuilder":
        """The (cached) incremental tree builder for this depth cap."""
        builder = self._builders.get(max_depth)
        if builder is None:
            builder = IncrementalTreeBuilder(self, max_depth)
            self._builders[max_depth] = builder
        return builder


class _Shadow:
    """A tree node plus the row bitset it was induced from."""

    __slots__ = ("node", "mask", "true_shadow", "false_shadow")

    def __init__(
        self,
        node: TreeNode,
        mask: int,
        true_shadow: "_Shadow | None" = None,
        false_shadow: "_Shadow | None" = None,
    ):
        self.node = node
        self.mask = mask
        self.true_shadow = true_shadow
        self.false_shadow = false_shadow


class IncrementalTreeBuilder:
    """Columnar decision-tree induction with append-only repair.

    Produces a :class:`~repro.core.tree.TreeNode` structure identical to
    :func:`~repro.core.tree.build_tree` over the store's rows.  After an
    append, :meth:`tree` walks only the root-to-leaf paths the new rows
    fall into; sibling subtrees whose row sets are untouched are reused
    as-is.  Returned nodes are updated in place across rounds -- callers
    must treat a previous round's tree as expired after the next call.
    """

    def __init__(self, store: ColumnarStore, max_depth: int | None):
        self.store = store
        self.max_depth = max_depth
        self._root: _Shadow | None = None
        self._built_rows = 0
        self._rank_cache: dict[tuple[int, Comparator, int], int] = {}

    def tree(self) -> TreeNode:
        """The tree over the store's current rows (store must be synced)."""
        n = self.store.n_rows
        if n == 0:
            return TreeNode(leaf_kind=LeafKind.MIXED, depth=0)
        if self._root is None:
            self._root = self._build(self.store.all_mask, 0)
        elif self._built_rows < n:
            new_bits = self.store.all_mask ^ ((1 << self._built_rows) - 1)
            self._root = self._update(self._root, new_bits, 0)
        self._built_rows = n
        return self._root.node

    # -- Induction ---------------------------------------------------------
    def _leaf(self, mask: int, depth: int) -> _Shadow:
        n_fail = (mask & self.store.fail_mask).bit_count()
        n_succeed = mask.bit_count() - n_fail
        if n_fail and not n_succeed:
            kind = LeafKind.FAIL
        elif n_succeed and not n_fail:
            kind = LeafKind.SUCCEED
        else:
            kind = LeafKind.MIXED
        node = TreeNode(
            leaf_kind=kind, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )
        return _Shadow(node, mask)

    def _rank(self, index: int, comparator: Comparator, code: int) -> int:
        key = (index, comparator, code)
        rank = self._rank_cache.get(key)
        if rank is None:
            parameter = self.store.codec.parameters[index]
            rank = _predicate_rank(
                Predicate(parameter.name, comparator, parameter.domain[code])
            )
            self._rank_cache[key] = rank
        return rank

    def _best_split(self, mask: int) -> tuple[Predicate, int] | None:
        """Best (predicate, true-row bitset), mirroring the reference.

        Candidate enumeration order, the Gini gain arithmetic, and the
        ``(gain, -rank)`` tie-break replicate ``_candidate_splits`` /
        ``_split_gain`` bit for bit, so the chosen split -- and hence
        the whole tree -- is identical to the dict path's.
        """
        store = self.store
        codec = store.codec
        fail = store.fail_mask
        total = mask.bit_count()
        n_fail_total = (mask & fail).bit_count()
        n_succeed_total = total - n_fail_total
        parent = _gini(n_fail_total, n_succeed_total)

        best_gain: float | None = None
        best_rank = 0
        best: tuple[Predicate, int] | None = None

        def consider(
            index: int, comparator: Comparator, code: int, true_mask: int
        ) -> None:
            nonlocal best_gain, best_rank, best
            n_true = true_mask.bit_count()
            n_false = total - n_true
            if n_true == 0 or n_false == 0:
                return
            true_fail = (true_mask & fail).bit_count()
            true_succeed = n_true - true_fail
            false_fail = n_fail_total - true_fail
            false_succeed = n_succeed_total - true_succeed
            child = (n_true / total) * _gini(true_fail, true_succeed) + (
                n_false / total
            ) * _gini(false_fail, false_succeed)
            gain = parent - child
            if best_gain is not None and gain < best_gain:
                return
            rank = self._rank(index, comparator, code)
            if best_gain is None or gain > best_gain or -rank > -best_rank:
                parameter = codec.parameters[index]
                best_gain = gain
                best_rank = rank
                best = (
                    Predicate(parameter.name, comparator, parameter.domain[code]),
                    true_mask,
                )

        for index, parameter in enumerate(codec.parameters):
            column = store.value_rows[index]
            observed = [c for c in range(len(column)) if column[c] & mask]
            if len(observed) < 2:
                continue
            if parameter.is_ordinal:
                accumulated = 0
                for code in observed[:-1]:
                    accumulated |= column[code]
                    consider(index, Comparator.LE, code, accumulated & mask)
            else:
                observed_set = set(observed)
                for code in codec.repr_orders[index]:
                    if code in observed_set:
                        consider(index, Comparator.EQ, code, column[code] & mask)
        return best

    def _build(self, mask: int, depth: int) -> _Shadow:
        n_fail = (mask & self.store.fail_mask).bit_count()
        n_succeed = mask.bit_count() - n_fail
        if n_fail == 0 or n_succeed == 0:
            return self._leaf(mask, depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return self._leaf(mask, depth)
        best = self._best_split(mask)
        if best is None:
            return self._leaf(mask, depth)
        predicate, true_mask = best
        node = TreeNode(
            predicate=predicate, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )
        true_shadow = self._build(true_mask, depth + 1)
        false_shadow = self._build(mask & ~true_mask, depth + 1)
        node.true_branch = true_shadow.node
        node.false_branch = false_shadow.node
        return _Shadow(node, mask, true_shadow, false_shadow)

    def _update(self, shadow: _Shadow, new_bits: int, depth: int) -> _Shadow:
        """Repair a subtree after ``new_bits`` rows joined its row set.

        Equivalent to ``_build(shadow.mask | new_bits, depth)`` -- see
        the module docstring for the invariant argument -- but reuses
        every descendant whose row set is unchanged.
        """
        mask = shadow.mask | new_bits
        n_fail = (mask & self.store.fail_mask).bit_count()
        n_succeed = mask.bit_count() - n_fail
        if n_fail == 0 or n_succeed == 0:
            return self._leaf(mask, depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return self._leaf(mask, depth)
        best = self._best_split(mask)
        if best is None:
            return self._leaf(mask, depth)
        predicate, true_mask = best
        node = shadow.node
        if node.predicate is None or node.predicate != predicate:
            return self._build(mask, depth)
        new_true = new_bits & true_mask
        new_false = new_bits & ~true_mask
        if new_true:
            shadow.true_shadow = self._update(
                shadow.true_shadow, new_true, depth + 1  # type: ignore[arg-type]
            )
        if new_false:
            shadow.false_shadow = self._update(
                shadow.false_shadow, new_false, depth + 1  # type: ignore[arg-type]
            )
        node.true_branch = shadow.true_shadow.node  # type: ignore[union-attr]
        node.false_branch = shadow.false_shadow.node  # type: ignore[union-attr]
        node.n_fail = n_fail
        node.n_succeed = n_succeed
        shadow.mask = mask
        return shadow


class ColumnarEngine:
    """Facade the algorithms drive: compiled queries over one session.

    Wraps a (space, history) pair -- or a
    :class:`~repro.core.session.DebugSession`, whose lock then guards
    store syncs -- and memoizes compiled conjunctions and canonical
    code masks, which the DDT loop queries repeatedly for the same
    suspects.  Every method degrades gracefully to the dict-based
    reference implementation when a query cannot be compiled, so
    results are always identical to the reference path.
    """

    def __init__(self, space: ParameterSpace, history, session=None):
        self.space = space
        self.history = history
        self._session = session
        self._codec = SpaceCodec(space)
        self._compiled: dict[Conjunction, list[tuple[int, int]] | None] = {}
        self._canonical: dict[Conjunction, dict[int, int]] = {}

    @classmethod
    def for_session(cls, session) -> "ColumnarEngine":
        return cls(session.space, session.history, session=session)

    def _store(self) -> ColumnarStore:
        if self._session is not None:
            return self._session.columnar_store()
        return self.history.columnar_store(self.space)

    def _compiled_for(self, conjunction: Conjunction):
        try:
            return self._compiled[conjunction]
        except KeyError:
            compiled = compile_conjunction(conjunction, self._codec)
            self._compiled[conjunction] = compiled
            return compiled

    # -- History queries ----------------------------------------------------
    def refutes(self, conjunction: Conjunction) -> bool:
        """Identical to :meth:`ExecutionHistory.refutes`, bitset-fast."""
        store = self._store()
        if store.degraded:
            return self.history.refutes(conjunction)
        compiled = self._compiled_for(conjunction)
        if compiled is None:
            return self.history.refutes(conjunction)
        return store.rows_matching(compiled, store.succeed_mask) != 0

    def supports(self, conjunction: Conjunction) -> bool:
        """Identical to :meth:`ExecutionHistory.supports`, bitset-fast."""
        store = self._store()
        if store.degraded:
            return self.history.supports(conjunction)
        compiled = self._compiled_for(conjunction)
        if compiled is None:
            return self.history.supports(conjunction)
        return store.rows_matching(compiled, store.fail_mask) != 0

    def is_hypothetical_root_cause(self, conjunction: Conjunction) -> bool:
        return self.supports(conjunction) and not self.refutes(conjunction)

    # -- Canonical forms and subsumption -------------------------------------
    def canonical_masks(self, conjunction: Conjunction) -> dict[int, int]:
        """Per-parameter-index allowed-code masks; the compiled analogue
        of :meth:`Conjunction.canonical` (full-domain entries dropped),
        with the same error behavior for unknown parameters and
        kind-incompatible comparators.
        """
        cached = self._canonical.get(conjunction)
        if cached is not None:
            return cached
        codec = self._codec
        masks: dict[int, int] = {}
        for predicate in conjunction.predicates:
            index = codec.index_of_name.get(predicate.parameter)
            if index is None:
                raise ValueError(
                    f"predicate on unknown parameter {predicate.parameter!r}"
                )
            parameter = codec.parameters[index]
            if predicate.comparator.is_ordinal_only and not parameter.is_ordinal:
                raise ValueError(
                    f"comparator {predicate.comparator.value!r} requires ordinal "
                    f"parameter, but {predicate.parameter!r} is categorical"
                )
            mask = predicate.satisfying_code_mask(parameter)
            previous = masks.get(index)
            masks[index] = mask if previous is None else previous & mask
        result = {
            index: mask
            for index, mask in masks.items()
            if mask != codec.full_masks[index]
        }
        self._canonical[conjunction] = result
        return result

    def subsumes(self, general: Conjunction, specific: Conjunction) -> bool:
        """Identical to :meth:`Conjunction.subsumes` over this space."""
        try:
            mine = self.canonical_masks(general)
            theirs = self.canonical_masks(specific)
        except ValueError:
            raise
        except Exception:
            return general.subsumes(specific, self.space)
        if any(mask == 0 for mask in theirs.values()):
            return True
        full = self._codec.full_masks
        for index, my_mask in mine.items():
            their_mask = theirs.get(index, full[index])
            if their_mask & ~my_mask:
                return False
        return True

    # -- History scans (Shortcut / Stacked Shortcut support) ------------------
    def _scannable_codes(self, failing: Instance):
        """(store, lenient codes) when the bitset path can serve a scan
        anchored on ``failing``; (store, None) demands reference fallback.
        """
        store = self._store()
        if store.degraded:
            return store, None
        return store, store.codec.encode_lenient(failing)

    def disjoint_successes(self, failing: Instance) -> list[Instance]:
        """Identical to :meth:`ExecutionHistory.disjoint_successes`.

        One OR per parameter builds the rows-sharing-a-value mask; the
        disjoint successes are its complement within the success bitset.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.disjoint_successes(failing)
        return store.materialize(store.succeed_mask & ~store.share_mask(codes))

    def most_different_success(self, failing: Instance) -> Instance | None:
        """Identical to :meth:`ExecutionHistory.most_different_success`:
        the earliest success at maximal Hamming distance from ``failing``.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.most_different_success(failing)
        row = store.min_shared_row(codes, store.succeed_mask)
        return None if row is None else store.rows[row]

    def mutually_disjoint_successes(
        self, failing: Instance, limit: int | None = None
    ) -> list[Instance]:
        """Identical to :meth:`ExecutionHistory.mutually_disjoint_successes`
        (greedy first-fit in log order), with each accepted instance
        eliminating everything it shares a value with in one mask AND.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.mutually_disjoint_successes(failing, limit)
        candidates = store.succeed_mask & ~store.share_mask(codes)
        selected: list[Instance] = []
        while candidates:
            row = (candidates & -candidates).bit_length() - 1
            selected.append(store.rows[row])
            if limit is not None and len(selected) >= limit:
                break
            # A row shares every value with itself, so this also clears it.
            candidates &= ~store.share_mask(store.row_codes[row])
        return selected

    def success_superset_of(self, assignment: Mapping[str, object]) -> bool:
        """Identical to :meth:`ExecutionHistory.success_superset_of`:
        True when some success contains the (partial) assignment.

        This is the Shortcut sanity check (Theorem 4's truncation
        test), compiled to one AND per asserted parameter-value pair.
        """
        store = self._store()
        if store.degraded:
            return self.history.success_superset_of(assignment)
        codec = store.codec
        rows = store.succeed_mask
        for name, value in assignment.items():
            index = codec.index_of_name.get(name)
            if index is None:
                # A name outside the space: the reference loop may raise
                # KeyError (order-dependent); replay it exactly.
                return self.history.success_superset_of(assignment)
            code = codec.parameters[index].code_of(value)
            if code is None:
                return False  # out-of-domain value matches no store row
            rows &= store.value_rows[index][code]
            if not rows:
                return False
        return rows != 0

    # -- Tree induction ------------------------------------------------------
    def tree(self, max_depth: int | None = None) -> DebuggingTree | None:
        """The debugging tree over the current history, incrementally
        maintained; None when the store is degraded (caller should fall
        back to :class:`~repro.core.tree.DebuggingTree`).
        """
        store = self._store()
        if store.degraded:
            return None
        root = store.builder(max_depth).tree()
        return DebuggingTree.from_root(self.space, root, store.n_rows)
