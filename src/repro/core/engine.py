"""Columnar evaluation engine: the bitset fast path of the debugger.

The reference implementations in :mod:`repro.core.history` and
:mod:`repro.core.tree` evaluate hypotheses by walking Python dicts: a
``refutes`` call applies every predicate to every successful instance,
and every Debugging-Decision-Trees round re-partitions instance dicts at
every tree node.  On large parameter sweeps the debugger's own CPU time
then dominates (the paper's Figure 5 regime), exactly the situation
SMBO-style tools handle by compiling the search's inner loop to array
operations.

This module provides that compiled path:

* :class:`SpaceCodec` interns every domain value of a
  :class:`~repro.core.types.ParameterSpace` to a small integer code
  (its domain position, so ordinal code order equals value order).
* :class:`ColumnarStore` maintains, per parameter and per value code,
  a bitset of history rows holding that code, plus fail/succeed row
  bitsets.  It appends incrementally as the history grows.
* Conjunctions compile to per-parameter *allowed-code masks*; testing
  one against the whole history is a handful of big-int ANDs
  (:meth:`ColumnarEngine.refutes` / :meth:`ColumnarEngine.supports`).
* Whole *batches* of conjunctions evaluate in one pass
  (:func:`compile_many`, :meth:`ColumnarStore.rows_matching_many`,
  :meth:`ColumnarEngine.refutes_many` / :meth:`~ColumnarEngine.supports_many`
  / :meth:`~ColumnarEngine.subsumes_matrix`): conjunctions sharing
  literals share one per-``(parameter, allowed-mask)`` *match table*
  (:meth:`ColumnarStore.match_rows`), memoized on the store and
  invalidated by row-count generation whenever the history grows.
* :class:`IncrementalTreeBuilder` induces the debugging decision tree
  over index bitsets, and *repairs* the previous round's tree on append
  instead of rebuilding it: only nodes whose row set changed are
  re-scored, and a subtree is rebuilt only when its best split changed.
* The store is **row-range sharded** (:mod:`repro.core.shards`): rows
  live in per-shard per-(parameter, code) bitsets with per-shard fail
  masks and per-shard LRU match tables.  Appends touch only the tail
  shard; sealed shards -- and everything cached against them -- are
  immutable.  Existence queries (``refutes``/``supports`` and their
  batches) walk shards in row order and stop at the first witness, so
  a refutation found in the first shard never scans the rest of a
  multi-million-row history; global bitset views (for the tree builder
  and the legacy uncached paths) are composed lazily from shard-local
  masks and memoized.  A :class:`~repro.core.shards.ShardExecutor`
  fans per-shard work across a thread pool when the
  :class:`~repro.core.shards.ShardPlan` allows more than one worker.

Correctness contract: every public operation returns **exactly** what
the dict-based reference path returns.  The encoders therefore refuse
anything they cannot mirror faithfully -- a history row whose parameter
set differs from the space, an out-of-domain value, a predicate whose
comparator raises -- and the engine transparently falls back to the
reference implementation for that query (or entirely, when the store is
degraded).  The equivalence is property-tested in
``tests/test_engine.py``.

The incremental-tree invariant: after ``sync``, the shadow tree equals
the tree a full rebuild over the current rows would produce.  This
holds because tree induction is a pure function of a node's row bitset
(and depth): repaired nodes re-run the full candidate scan, children
that received no new rows keep bit-identical row sets, and a node whose
best split changed is rebuilt from scratch.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence

from .bitkernel import iter_bits, kernel_path, lowest_bit, popcount
from .predicates import Comparator, Conjunction, Predicate
from .shards import DEFAULT_MATCH_TABLE_LIMIT, Shard, ShardExecutor, ShardPlan
from .tree import DebuggingTree, LeafKind, TreeNode, _gini, _predicate_rank
from .types import Instance, Outcome, ParameterSpace

__all__ = [
    "SpaceCodec",
    "ColumnarStore",
    "ColumnarEngine",
    "IncrementalTreeBuilder",
    "ShardPlan",
    "compile_conjunction",
    "compile_many",
]

# Backwards-compatible alias; the canonical helper lives in bitkernel.
_iter_bits = iter_bits


class SpaceCodec:
    """Value-interning tables for one parameter space.

    Codes are domain positions: ``codec`` work is a handful of dict
    lookups per instance, done once, after which every engine operation
    is integer arithmetic.
    """

    __slots__ = (
        "space",
        "names",
        "parameters",
        "n_params",
        "index_of_name",
        "domain_sizes",
        "full_masks",
        "repr_orders",
        "unique_reprs",
    )

    def __init__(self, space: ParameterSpace):
        self.space = space
        self.names = space.names
        self.parameters = space.parameters
        self.n_params = len(self.names)
        self.index_of_name = {name: i for i, name in enumerate(self.names)}
        self.domain_sizes = tuple(len(p.domain) for p in self.parameters)
        self.full_masks = tuple((1 << size) - 1 for size in self.domain_sizes)
        # Candidate order for categorical splits: codes sorted by value
        # repr, mirroring ``sorted(observed, key=repr)`` in the
        # reference ``_candidate_splits``.
        self.repr_orders = tuple(
            tuple(sorted(range(len(p.domain)), key=lambda c, p=p: repr(p.domain[c])))
            for p in self.parameters
        )
        # Whether the domain's value reprs are pairwise distinct: only
        # then is ``sorted(values, key=repr)`` a total order, letting
        # mask->value decoding reproduce the reference's repr-sorted
        # value lists exactly (ties in the reference depend on set
        # iteration order, which codes cannot mirror).
        self.unique_reprs = tuple(
            len({repr(v) for v in p.domain}) == len(p.domain)
            for p in self.parameters
        )

    def encode(self, instance: Mapping[str, object]) -> tuple[int, ...] | None:
        """Instance -> per-parameter value codes, or None when the
        instance is not exactly one in-domain value per space parameter.
        """
        codes = self.encode_lenient(instance)
        if codes is None or None in codes:
            return None
        return codes  # type: ignore[return-value]

    def encode_lenient(
        self, instance: Mapping[str, object]
    ) -> tuple[int | None, ...] | None:
        """Like :meth:`encode`, but tolerant of out-of-domain values.

        Out-of-domain values encode to None *per parameter* -- for
        distance/disjointness purposes such a value simply differs from
        every in-domain row value, which keeps Hamming and disjointness
        queries exact without falling back.  Returns None (uncodable)
        only when the instance's parameter-name set is not exactly the
        space's, because then the reference semantics (shared-parameter
        counting, Definition 6's common-parameter-set requirement)
        cannot be mirrored column-wise.
        """
        if len(instance) != self.n_params:
            return None
        codes: list[int | None] = []
        for parameter in self.parameters:
            try:
                value = instance[parameter.name]
            except KeyError:
                return None
            codes.append(parameter.code_of(value))
        return tuple(codes)


# Sentinel for "this predicate cannot be compiled" in shared memos (a
# plain None entry would be indistinguishable from a cache miss).
_UNCOMPILABLE = object()


def compile_conjunction(
    conjunction: Conjunction,
    codec: SpaceCodec,
    predicate_masks: dict[Predicate, object] | None = None,
) -> list[tuple[int, int]] | None:
    """Compile to ``[(parameter_index, allowed_code_mask), ...]``.

    Mirrors :meth:`Conjunction.satisfied_by` exactly over in-domain
    rows: a row satisfies the conjunction iff, for every entry, the
    row's code bit is inside the allowed mask.  Entries whose mask is
    the full domain are kept out (no constraint).  Returns None when
    the conjunction cannot be compiled faithfully (a predicate on a
    parameter outside the space, or a comparator that raises on some
    domain value); callers must fall back to the reference path.

    ``predicate_masks`` is an optional per-predicate memo shared across
    calls (the batch layer's literal table): conjunctions sharing a
    literal then share one :meth:`Predicate.satisfying_code_mask`
    evaluation instead of re-scanning the domain per conjunction.
    """
    masks: dict[int, int] = {}
    for predicate in conjunction.predicates:
        entry = None if predicate_masks is None else predicate_masks.get(predicate)
        if entry is None:
            index = codec.index_of_name.get(predicate.parameter)
            if index is None:
                entry = _UNCOMPILABLE
            else:
                try:
                    entry = (index, predicate.satisfying_code_mask(codec.parameters[index]))
                except Exception:
                    entry = _UNCOMPILABLE
            if predicate_masks is not None:
                predicate_masks[predicate] = entry
        if entry is _UNCOMPILABLE:
            return None
        index, mask = entry  # type: ignore[misc]
        previous = masks.get(index)
        masks[index] = mask if previous is None else previous & mask
    return sorted(
        (index, mask)
        for index, mask in masks.items()
        if mask != codec.full_masks[index]
    )


def compile_many(
    conjunctions: Sequence[Conjunction],
    codec: SpaceCodec,
    predicate_masks: dict[Predicate, object] | None = None,
) -> list[list[tuple[int, int]] | None]:
    """Compile a batch of conjunctions with one shared literal table.

    Equivalent to ``[compile_conjunction(c, codec) for c in
    conjunctions]`` (per-item None for uncompilable entries), but every
    distinct predicate's allowed-code mask is computed once for the
    whole batch.  Pass a ``predicate_masks`` dict to keep the table
    alive across batches.
    """
    if predicate_masks is None:
        predicate_masks = {}
    return [
        compile_conjunction(conjunction, codec, predicate_masks)
        for conjunction in conjunctions
    ]


class ColumnarStore:
    """Integer-coded columns + outcome bitsets over one history.

    Row ``i`` is the ``i``-th *distinct* instance of the history (the
    exact sample set the DDT induction consumes).  Rows live in
    row-range :class:`~repro.core.shards.Shard` objects sized by the
    store's :class:`~repro.core.shards.ShardPlan`: ``shards[k]`` holds
    local per-(parameter, code) bitsets and a local fail mask for its
    row range, and only the tail shard grows.  :meth:`sync` appends
    rows for history entries recorded since the last call -- nothing is
    ever recomputed from scratch, and sealing a full tail shard folds
    its columns into the sealed-prefix caches exactly once.

    Global views (``value_rows``, ``fail_mask``, ``all_mask``,
    ``succeed_mask``, :meth:`match_rows`) are *composed lazily* from
    the shard-local masks and memoized against the row count, so
    single-shard stores -- every store below
    :data:`~repro.core.shards.MIN_AUTO_SHARD_ROWS` rows under the auto
    plan -- behave (and count match-table traffic) exactly like the
    pre-shard store.

    A row the codec cannot encode marks the store *degraded*: every
    engine operation then falls back to the reference path (answers
    from a partial column store would silently diverge).
    """

    def __init__(
        self,
        history,
        space: ParameterSpace,
        plan: ShardPlan | None = None,
        match_table_limit: int = DEFAULT_MATCH_TABLE_LIMIT,
    ):
        self.history = history
        self.space = space
        self.codec = SpaceCodec(space)
        if plan is None:
            plan = ShardPlan.auto(getattr(history, "distinct_count", 0) or 0)
        self.plan = plan
        self.match_table_limit = match_table_limit
        self.shards: list[Shard] = [Shard(0, self.codec.domain_sizes)]
        self.executor = ShardExecutor(plan.max_workers)
        self.n_rows = 0
        self.rows: list[Instance] = []
        self.row_codes: list[tuple[int, ...]] = []
        self.degraded = False
        self._synced = 0
        self._builders: dict[int | None, IncrementalTreeBuilder] = {}
        # Sealed-prefix composed caches: global-position bitsets folded
        # from every *sealed* shard, extended once per seal.  The tail
        # shard's contribution is shifted in on demand and memoized
        # against the row count (appends only ever touch the tail).
        self._sealed_columns: dict[tuple[int, int], int] = {}
        self._sealed_fail = 0
        self._columns: dict[tuple[int, int], list[int]] = {}
        self._fail_cache = 0
        self._fail_rows = 0
        self._all_cache = 0
        self._all_rows = 0
        self._succeed_cache = 0
        self._succeed_rows = 0
        # Composed match tables for multi-shard stores: global bitsets
        # assembled from the per-shard tables, LRU-capped like them.
        self._composed_match: OrderedDict[tuple[int, int], list[int]] = (
            OrderedDict()
        )
        self._composed_evictions = 0

    # -- Composed global views ------------------------------------------------
    @property
    def fail_mask(self) -> int:
        if self._fail_rows != self.n_rows or not self.n_rows:
            tail = self.shards[-1]
            self._fail_cache = self._sealed_fail | (tail.fail_mask << tail.start)
            self._fail_rows = self.n_rows
        return self._fail_cache

    @property
    def all_mask(self) -> int:
        if self._all_rows != self.n_rows or not self.n_rows:
            self._all_cache = (1 << self.n_rows) - 1
            self._all_rows = self.n_rows
        return self._all_cache

    @property
    def succeed_mask(self) -> int:
        if self._succeed_rows != self.n_rows or not self.n_rows:
            self._succeed_cache = self.all_mask & ~self.fail_mask
            self._succeed_rows = self.n_rows
        return self._succeed_cache

    def column(self, index: int, code: int) -> int:
        """Global bitset of rows whose parameter ``index`` holds ``code``.

        Composed as ``sealed_prefix | (tail_local << tail.start)`` and
        memoized against the row count; sealed shards never change, so
        the prefix part is exact until the next seal folds a new shard
        into it.
        """
        key = (index, code)
        entry = self._columns.get(key)
        if entry is not None and entry[1] == self.n_rows:
            return entry[0]
        tail = self.shards[-1]
        mask = self._sealed_columns.get(key, 0) | (
            tail.value_rows[index][code] << tail.start
        )
        if entry is None:
            self._columns[key] = [mask, self.n_rows]
        else:
            entry[0] = mask
            entry[1] = self.n_rows
        return mask

    @property
    def value_rows(self) -> list[list[int]]:
        """Composed per-parameter per-code global bitsets.

        Compatibility view of the pre-shard layout (tests and external
        consumers compare stores through it); internal paths read
        shard-local masks or :meth:`column` instead.
        """
        return [
            [self.column(index, code) for code in range(size)]
            for index, size in enumerate(self.codec.domain_sizes)
        ]

    # -- Match-table counters (summed over shards) ---------------------------
    @property
    def match_hits(self) -> int:
        return sum(shard.hits for shard in self.shards)

    @property
    def match_misses(self) -> int:
        return sum(shard.misses for shard in self.shards)

    @property
    def match_extensions(self) -> int:
        return sum(shard.extensions for shard in self.shards)

    @property
    def match_evictions(self) -> int:
        return (
            sum(shard.evictions for shard in self.shards)
            + self._composed_evictions
        )

    # -- Appends --------------------------------------------------------------
    def _seal_tail(self) -> None:
        """Seal the full tail shard and open a fresh one after it.

        Folds the sealed shard's columns and fail mask into the
        sealed-prefix caches (one shift+OR per non-empty column, paid
        once per shard lifetime); per-shard match tables and counters
        survive untouched, which is what lets compiled masks, match
        tables, and tree-repair state outlive shard splits.
        """
        tail = self.shards[-1]
        tail.sealed = True
        start = tail.start
        sealed_columns = self._sealed_columns
        for index, column in enumerate(tail.value_rows):
            for code, mask in enumerate(column):
                if mask:
                    key = (index, code)
                    sealed_columns[key] = sealed_columns.get(key, 0) | (
                        mask << start
                    )
        self._sealed_fail |= tail.fail_mask << start
        self.shards.append(Shard(self.n_rows, self.codec.domain_sizes))

    def _append_row(
        self, instance: Instance, codes: tuple[int, ...], is_fail: bool
    ) -> None:
        tail = self.shards[-1]
        if tail.n_rows >= self.plan.shard_rows:
            self._seal_tail()
            tail = self.shards[-1]
        tail.append(codes, is_fail)
        self.rows.append(instance)
        self.row_codes.append(codes)
        self.n_rows += 1

    def sync(self) -> None:
        """Append rows for history entries recorded since the last sync."""
        if self.degraded:
            return
        count = self.history.distinct_count
        if count == self._synced:
            return
        encode = self.codec.encode
        for instance, outcome in self.history.distinct_since(self._synced):
            codes = encode(instance)
            if codes is None:
                self.degraded = True
                break
            self._append_row(instance, codes, outcome is Outcome.FAIL)
        self._synced = count

    def load_codes(self, codes: Sequence[Sequence[int]]) -> None:
        """Seed a fresh store from pre-encoded rows (zero encode calls).

        ``codes`` must hold one in-range code tuple per *distinct*
        history instance, in first-execution order -- exactly what
        :meth:`sync` would have produced by encoding.  Persistence uses
        this to hydrate a store straight from schema-v3 encoded-row
        tables; rows stream through the same tail-shard append path as
        live syncs, so a hydrated store warm-starts directly into the
        sharded layout.  Raises ValueError for a non-fresh store or
        malformed codes (callers fall back to the encoding path).
        """
        if self.n_rows or self._synced or self.degraded:
            raise ValueError("load_codes requires a fresh, unsynced store")
        count = self.history.distinct_count
        if len(codes) != count:
            raise ValueError(
                f"expected {count} encoded rows, got {len(codes)}"
            )
        sizes = self.codec.domain_sizes
        for (instance, outcome), row in zip(
            self.history.distinct_since(0), codes
        ):
            row_codes = tuple(row)
            if len(row_codes) != self.codec.n_params or any(
                not 0 <= code < sizes[i] for i, code in enumerate(row_codes)
            ):
                raise ValueError(f"malformed encoded row {row_codes!r}")
            self._append_row(instance, row_codes, outcome is Outcome.FAIL)
        self._synced = count

    # -- Conjunction evaluation ----------------------------------------------
    def rows_matching(self, compiled: list[tuple[int, int]], within: int) -> int:
        """Bitset of rows in ``within`` satisfying a compiled conjunction."""
        rows = within
        for index, allowed in compiled:
            if not rows:
                break
            matched = 0
            for code in iter_bits(allowed):
                matched |= self.column(index, code)
            rows &= matched
        return rows

    def shard_match(self, shard: Shard, index: int, allowed: int) -> int:
        """One shard's match table for a compiled literal (LRU-cached)."""
        return shard.match_rows(
            index, allowed, self.row_codes, self.match_table_limit
        )

    def match_rows(self, index: int, allowed: int) -> int:
        """Bitset of rows whose ``index`` code lies in ``allowed`` (cached).

        This is the batch layer's shared *match table*: many compiled
        conjunctions reference the same ``(parameter, allowed-mask)``
        literal.  Tables live on the shards; a stale tail-shard entry
        is extended in place with just the rows appended since it was
        built (a lookup that found its entry still counts as a hit,
        ``match_extensions`` counts the repairs, and LRU eviction keeps
        each shard at ``match_table_limit`` entries).  Multi-shard
        stores additionally memoize the composed global bitset here.
        """
        shards = self.shards
        if len(shards) == 1:
            return self.shard_match(shards[0], index, allowed)
        key = (index, allowed)
        composed = self._composed_match
        entry = composed.get(key)
        if entry is not None and entry[1] == self.n_rows:
            composed.move_to_end(key)
            return entry[0]
        mask = 0
        for shard in shards:
            local = self.shard_match(shard, index, allowed)
            if local:
                mask |= local << shard.start
        if entry is None:
            composed[key] = [mask, self.n_rows]
            if len(composed) > self.match_table_limit:
                composed.popitem(last=False)
                self._composed_evictions += 1
        else:
            entry[0] = mask
            entry[1] = self.n_rows
            composed.move_to_end(key)
        return mask

    def any_match(self, compiled: list[tuple[int, int]], within_fail: bool) -> bool:
        """Does any row of the outcome class satisfy the conjunction?

        The existence form of :meth:`rows_matching` the screening
        queries (``refutes``/``supports``) actually need: shards are
        scanned in row order through their local match tables and the
        scan stops at the first shard holding a witness, so a
        refutation near the head of a long history never composes --
        or even touches -- the remaining shards.
        """
        for shard in self.shards:
            rows = shard.fail_mask if within_fail else shard.succeed_mask
            for index, allowed in compiled:
                if not rows:
                    break
                rows &= self.shard_match(shard, index, allowed)
            if rows:
                return True
        return False

    def any_match_many(
        self,
        compiled_batch: Sequence[list[tuple[int, int]]],
        within_fail: bool,
    ) -> list[bool]:
        """``[any_match(c, within_fail) for c in compiled_batch]``.

        With a multi-worker plan and a batch worth fanning, evaluates
        one task per shard on the executor (each task owns its shard's
        match tables, so shard-local state stays single-writer) and ORs
        the per-shard verdicts; otherwise falls through to the serial
        short-circuiting scan.
        """
        shards = self.shards
        if (
            self.plan.max_workers > 1
            and len(shards) > 1
            and len(compiled_batch) >= self.plan.fan_min_batch
        ):
            def screen_shard(shard: Shard) -> list[bool]:
                base = shard.fail_mask if within_fail else shard.succeed_mask
                out: list[bool] = []
                for compiled in compiled_batch:
                    rows = base
                    for index, allowed in compiled:
                        if not rows:
                            break
                        rows &= self.shard_match(shard, index, allowed)
                    out.append(bool(rows))
                return out
            per_shard = self.executor.map(screen_shard, shards)
            return [any(column) for column in zip(*per_shard)]
        return [
            self.any_match(compiled, within_fail)
            for compiled in compiled_batch
        ]

    def rows_matching_many(
        self,
        compiled_batch: Sequence[list[tuple[int, int]] | None],
        within: int,
    ) -> list[int | None]:
        """Per-conjunction hit bitsets for a compiled batch, in one pass.

        Equivalent to ``[rows_matching(c, within) for c in batch]`` with
        None propagated for uncompilable entries, but every distinct
        ``(parameter, allowed-mask)`` literal touches the columns once
        via the shared :meth:`match_rows` tables.  Multi-worker plans
        fan one task per shard and compose the shard-local hit bitsets,
        which is bit-identical because every mask is partitioned by row
        range.
        """
        shards = self.shards
        if (
            self.plan.max_workers > 1
            and len(shards) > 1
            and sum(1 for c in compiled_batch if c is not None)
            >= self.plan.fan_min_batch
        ):
            def match_shard(shard: Shard) -> list[int | None]:
                local_within = (within >> shard.start) & shard.full_mask
                out: list[int | None] = []
                for compiled in compiled_batch:
                    if compiled is None:
                        out.append(None)
                        continue
                    rows = local_within
                    for index, allowed in compiled:
                        if not rows:
                            break
                        rows &= self.shard_match(shard, index, allowed)
                    out.append(rows)
                return out
            per_shard = self.executor.map(match_shard, shards)
            results: list[int | None] = []
            for position, compiled in enumerate(compiled_batch):
                if compiled is None:
                    results.append(None)
                    continue
                rows = 0
                for shard, local_rows in zip(shards, per_shard):
                    if local_rows[position]:
                        rows |= local_rows[position] << shard.start
                results.append(rows)
            return results
        results = []
        for compiled in compiled_batch:
            if compiled is None:
                results.append(None)
                continue
            rows = within
            for index, allowed in compiled:
                if not rows:
                    break
                rows &= self.match_rows(index, allowed)
            results.append(rows)
        return results

    def materialize(self, rows_mask: int) -> list[Instance]:
        """The instances of the rows in ``rows_mask``, in row order."""
        rows = self.rows
        return [rows[index] for index in iter_bits(rows_mask)]

    # -- Distance / disjointness primitives ----------------------------------
    def share_mask(self, codes: Sequence[int | None]) -> int:
        """Bitset of rows sharing at least one coded value with ``codes``.

        ``codes`` is a leniently-encoded instance (one entry per space
        parameter); a None entry is an out-of-domain value, which shares
        with no row.  The complement of the result (within ``all_mask``)
        is exactly the rows *disjoint* from the instance under
        Definition 6, because every store row assigns every parameter.
        """
        shared = 0
        for index, code in enumerate(codes):
            if code is not None:
                shared |= self.column(index, code)
        return shared

    def min_shared_row(
        self, codes: Sequence[int | None], within: int
    ) -> int | None:
        """The earliest row in ``within`` sharing the *fewest* parameter
        values with ``codes`` -- i.e. the maximal-Hamming-distance row,
        with ties broken toward the lowest row index (first-execution
        order), mirroring the reference scan's strictly-greater update.

        Returns None when ``within`` is empty.  Cost is
        O(n_params * log(n_params)) big-int operations: per-row shared
        counts are accumulated in bit-sliced binary counters, then the
        minimum is selected plane-by-plane from the high bit down.
        """
        if not within:
            return None
        planes: list[int] = []  # planes[i]: rows whose count has bit i set
        for index, code in enumerate(codes):
            if code is None:
                continue
            carry = self.column(index, code) & within
            level = 0
            while carry:
                if level == len(planes):
                    planes.append(carry)
                    break
                carry, planes[level] = (
                    planes[level] & carry,
                    planes[level] ^ carry,
                )
                level += 1
        candidates = within
        for plane in reversed(planes):
            zeros = candidates & ~plane
            if zeros:
                candidates = zeros
        return lowest_bit(candidates)

    # -- Instrumentation ------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Shard layout, match-table footprint, and cache traffic."""
        entries = 0
        estimated = 0
        for shard in self.shards:
            shard_entries, shard_bytes = shard.match_table_footprint()
            entries += shard_entries
            estimated += shard_bytes
        for entry in self._composed_match.values():
            entries += 1
            estimated += 28 + 4 * ((entry[0].bit_length() + 29) // 30)
        return {
            "n_rows": self.n_rows,
            "shards": len(self.shards),
            "shard_rows": self.plan.shard_rows,
            "match_hits": self.match_hits,
            "match_misses": self.match_misses,
            "match_extensions": self.match_extensions,
            "match_evictions": self.match_evictions,
            "match_entries": entries,
            "match_bytes": estimated,
            "parallel_queries": self.executor.parallel_queries,
        }

    def builder(self, max_depth: int | None) -> "IncrementalTreeBuilder":
        """The (cached) incremental tree builder for this depth cap."""
        builder = self._builders.get(max_depth)
        if builder is None:
            builder = IncrementalTreeBuilder(self, max_depth)
            self._builders[max_depth] = builder
        return builder


class _Shadow:
    """A tree node plus the row bitset it was induced from."""

    __slots__ = ("node", "mask", "true_shadow", "false_shadow")

    def __init__(
        self,
        node: TreeNode,
        mask: int,
        true_shadow: "_Shadow | None" = None,
        false_shadow: "_Shadow | None" = None,
    ):
        self.node = node
        self.mask = mask
        self.true_shadow = true_shadow
        self.false_shadow = false_shadow


class IncrementalTreeBuilder:
    """Columnar decision-tree induction with append-only repair.

    Produces a :class:`~repro.core.tree.TreeNode` structure identical to
    :func:`~repro.core.tree.build_tree` over the store's rows.  After an
    append, :meth:`tree` walks only the root-to-leaf paths the new rows
    fall into; sibling subtrees whose row sets are untouched are reused
    as-is.  Returned nodes are updated in place across rounds -- callers
    must treat a previous round's tree as expired after the next call.
    """

    def __init__(self, store: ColumnarStore, max_depth: int | None):
        self.store = store
        self.max_depth = max_depth
        self._root: _Shadow | None = None
        self._built_rows = 0
        self._rank_cache: dict[tuple[int, Comparator, int], int] = {}

    def tree(self) -> TreeNode:
        """The tree over the store's current rows (store must be synced)."""
        n = self.store.n_rows
        if n == 0:
            return TreeNode(leaf_kind=LeafKind.MIXED, depth=0)
        if self._root is None:
            self._root = self._build(self.store.all_mask, 0)
        elif self._built_rows < n:
            new_bits = self.store.all_mask ^ ((1 << self._built_rows) - 1)
            self._root = self._update(self._root, new_bits, 0)
        self._built_rows = n
        return self._root.node

    # -- Induction ---------------------------------------------------------
    def _leaf(self, mask: int, depth: int) -> _Shadow:
        n_fail = popcount(mask & self.store.fail_mask)
        n_succeed = popcount(mask) - n_fail
        if n_fail and not n_succeed:
            kind = LeafKind.FAIL
        elif n_succeed and not n_fail:
            kind = LeafKind.SUCCEED
        else:
            kind = LeafKind.MIXED
        node = TreeNode(
            leaf_kind=kind, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )
        return _Shadow(node, mask)

    def _rank(self, index: int, comparator: Comparator, code: int) -> int:
        key = (index, comparator, code)
        rank = self._rank_cache.get(key)
        if rank is None:
            parameter = self.store.codec.parameters[index]
            rank = _predicate_rank(
                Predicate(parameter.name, comparator, parameter.domain[code])
            )
            self._rank_cache[key] = rank
        return rank

    def _best_split(self, mask: int) -> tuple[Predicate, int] | None:
        """Best (predicate, true-row bitset), mirroring the reference.

        Candidate enumeration order, the Gini gain arithmetic, and the
        ``(gain, -rank)`` tie-break replicate ``_candidate_splits`` /
        ``_split_gain`` bit for bit, so the chosen split -- and hence
        the whole tree -- is identical to the dict path's.  Multi-shard
        stores route through :meth:`_best_split_sharded`, which scans
        shard-local bitsets and sums per-shard popcounts (identical
        integers, hence identical Gini floats) instead of composing
        global columns.
        """
        if len(self.store.shards) > 1:
            return self._best_split_sharded(mask)
        store = self.store
        codec = store.codec
        fail = store.fail_mask
        total = popcount(mask)
        n_fail_total = popcount(mask & fail)
        n_succeed_total = total - n_fail_total
        parent = _gini(n_fail_total, n_succeed_total)

        best_gain: float | None = None
        best_rank = 0
        best: tuple[Predicate, int] | None = None

        def consider(
            index: int, comparator: Comparator, code: int, true_mask: int
        ) -> None:
            nonlocal best_gain, best_rank, best
            n_true = popcount(true_mask)
            n_false = total - n_true
            if n_true == 0 or n_false == 0:
                return
            true_fail = popcount(true_mask & fail)
            true_succeed = n_true - true_fail
            false_fail = n_fail_total - true_fail
            false_succeed = n_succeed_total - true_succeed
            child = (n_true / total) * _gini(true_fail, true_succeed) + (
                n_false / total
            ) * _gini(false_fail, false_succeed)
            gain = parent - child
            if best_gain is not None and gain < best_gain:
                return
            rank = self._rank(index, comparator, code)
            if best_gain is None or gain > best_gain or -rank > -best_rank:
                parameter = codec.parameters[index]
                best_gain = gain
                best_rank = rank
                best = (
                    Predicate(parameter.name, comparator, parameter.domain[code]),
                    true_mask,
                )

        for index, parameter in enumerate(codec.parameters):
            size = codec.domain_sizes[index]
            column = [store.column(index, code) for code in range(size)]
            observed = [c for c in range(size) if column[c] & mask]
            if len(observed) < 2:
                continue
            if parameter.is_ordinal:
                accumulated = 0
                for code in observed[:-1]:
                    accumulated |= column[code]
                    consider(index, Comparator.LE, code, accumulated & mask)
            else:
                observed_set = set(observed)
                for code in codec.repr_orders[index]:
                    if code in observed_set:
                        consider(index, Comparator.EQ, code, column[code] & mask)
        return best

    def _best_split_sharded(self, mask: int) -> tuple[Predicate, int] | None:
        """Sharded candidate scan: identical selection, shard-local work.

        Three waves over the shards (fanned on the store's executor when
        the plan allows): (1) which codes each parameter takes inside
        ``mask``, (2) per-candidate (n_true, true_fail) counts from
        shard-local bitsets, (3) the winning candidate's composed
        true-row bitset.  Candidate order and the Gini/tie-break
        arithmetic are the serial scan's exactly -- counts are sums of
        per-shard popcounts of disjoint row ranges, so every integer
        (and therefore every float) matches bit for bit.
        """
        store = self.store
        codec = store.codec
        shards = store.shards
        executor = store.executor
        local_masks = [
            (mask >> shard.start) & shard.full_mask for shard in shards
        ]
        n_params = codec.n_params

        def observe(pack: tuple[Shard, int]) -> list[int]:
            shard, local_mask = pack
            observed = [0] * n_params
            if not local_mask:
                return observed
            for index in range(n_params):
                column = shard.value_rows[index]
                bits = 0
                for code, rows in enumerate(column):
                    if rows & local_mask:
                        bits |= 1 << code
                observed[index] = bits
            return observed

        per_shard_observed = executor.map(
            observe, list(zip(shards, local_masks))
        )
        observed_bits = [0] * n_params
        for shard_observed in per_shard_observed:
            for index in range(n_params):
                observed_bits[index] |= shard_observed[index]

        # Candidate plan in the serial scan's exact order: per parameter
        # (space order), LE at every observed code but the last for
        # ordinals (ascending), EQ at every observed code for
        # categoricals (repr order).
        plans: list[tuple[int, bool, list[int]]] = []
        candidates: list[tuple[int, Comparator, int]] = []
        for index, parameter in enumerate(codec.parameters):
            bits = observed_bits[index]
            observed = list(iter_bits(bits))
            if len(observed) < 2:
                continue
            if parameter.is_ordinal:
                plans.append((index, True, observed))
                for code in observed[:-1]:
                    candidates.append((index, Comparator.LE, code))
            else:
                ordered = [
                    code for code in codec.repr_orders[index]
                    if (bits >> code) & 1
                ]
                plans.append((index, False, ordered))
                for code in ordered:
                    candidates.append((index, Comparator.EQ, code))
        if not candidates:
            return None

        def count(pack: tuple[Shard, int]) -> list[tuple[int, int]]:
            shard, local_mask = pack
            counts: list[tuple[int, int]] = []
            if not local_mask:
                return [(0, 0)] * len(candidates)
            local_fail = shard.fail_mask
            for index, is_ordinal, codes in plans:
                column = shard.value_rows[index]
                if is_ordinal:
                    accumulated = 0
                    for code in codes[:-1]:
                        accumulated |= column[code] & local_mask
                        counts.append(
                            (
                                popcount(accumulated),
                                popcount(accumulated & local_fail),
                            )
                        )
                else:
                    for code in codes:
                        true_rows = column[code] & local_mask
                        counts.append(
                            (
                                popcount(true_rows),
                                popcount(true_rows & local_fail),
                            )
                        )
            return counts

        per_shard_counts = executor.map(count, list(zip(shards, local_masks)))

        total = popcount(mask)
        n_fail_total = popcount(mask & store.fail_mask)
        n_succeed_total = total - n_fail_total
        parent = _gini(n_fail_total, n_succeed_total)

        best_gain: float | None = None
        best_rank = 0
        best_at: int | None = None
        for position, (index, comparator, code) in enumerate(candidates):
            n_true = 0
            true_fail = 0
            for shard_counts in per_shard_counts:
                shard_true, shard_fail = shard_counts[position]
                n_true += shard_true
                true_fail += shard_fail
            n_false = total - n_true
            if n_true == 0 or n_false == 0:
                continue
            true_succeed = n_true - true_fail
            false_fail = n_fail_total - true_fail
            false_succeed = n_succeed_total - true_succeed
            child = (n_true / total) * _gini(true_fail, true_succeed) + (
                n_false / total
            ) * _gini(false_fail, false_succeed)
            gain = parent - child
            if best_gain is not None and gain < best_gain:
                continue
            rank = self._rank(index, comparator, code)
            if best_gain is None or gain > best_gain or -rank > -best_rank:
                best_gain = gain
                best_rank = rank
                best_at = position
        if best_at is None:
            return None

        index, comparator, code = candidates[best_at]

        def materialize(pack: tuple[Shard, int]) -> int:
            shard, local_mask = pack
            if not local_mask:
                return 0
            column = shard.value_rows[index]
            if comparator is Comparator.LE:
                # OR over all codes <= the split code: codes unobserved
                # inside the mask contribute nothing after the AND, so
                # this equals the serial observed-code accumulation.
                true_rows = 0
                for low_code in range(code + 1):
                    true_rows |= column[low_code]
                return true_rows & local_mask
            return column[code] & local_mask

        true_mask = 0
        for shard, local_rows in zip(
            shards, executor.map(materialize, list(zip(shards, local_masks)))
        ):
            if local_rows:
                true_mask |= local_rows << shard.start
        parameter = codec.parameters[index]
        return (
            Predicate(parameter.name, comparator, parameter.domain[code]),
            true_mask,
        )

    def _build(self, mask: int, depth: int) -> _Shadow:
        n_fail = popcount(mask & self.store.fail_mask)
        n_succeed = popcount(mask) - n_fail
        if n_fail == 0 or n_succeed == 0:
            return self._leaf(mask, depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return self._leaf(mask, depth)
        best = self._best_split(mask)
        if best is None:
            return self._leaf(mask, depth)
        predicate, true_mask = best
        node = TreeNode(
            predicate=predicate, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )
        true_shadow = self._build(true_mask, depth + 1)
        false_shadow = self._build(mask & ~true_mask, depth + 1)
        node.true_branch = true_shadow.node
        node.false_branch = false_shadow.node
        return _Shadow(node, mask, true_shadow, false_shadow)

    def _update(self, shadow: _Shadow, new_bits: int, depth: int) -> _Shadow:
        """Repair a subtree after ``new_bits`` rows joined its row set.

        Equivalent to ``_build(shadow.mask | new_bits, depth)`` -- see
        the module docstring for the invariant argument -- but reuses
        every descendant whose row set is unchanged.
        """
        mask = shadow.mask | new_bits
        n_fail = popcount(mask & self.store.fail_mask)
        n_succeed = popcount(mask) - n_fail
        if n_fail == 0 or n_succeed == 0:
            return self._leaf(mask, depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return self._leaf(mask, depth)
        best = self._best_split(mask)
        if best is None:
            return self._leaf(mask, depth)
        predicate, true_mask = best
        node = shadow.node
        if node.predicate is None or node.predicate != predicate:
            return self._build(mask, depth)
        new_true = new_bits & true_mask
        new_false = new_bits & ~true_mask
        if new_true:
            shadow.true_shadow = self._update(
                shadow.true_shadow, new_true, depth + 1  # type: ignore[arg-type]
            )
        if new_false:
            shadow.false_shadow = self._update(
                shadow.false_shadow, new_false, depth + 1  # type: ignore[arg-type]
            )
        node.true_branch = shadow.true_shadow.node  # type: ignore[union-attr]
        node.false_branch = shadow.false_shadow.node  # type: ignore[union-attr]
        node.n_fail = n_fail
        node.n_succeed = n_succeed
        shadow.mask = mask
        return shadow


class ColumnarEngine:
    """Facade the algorithms drive: compiled queries over one session.

    Wraps a (space, history) pair -- or a
    :class:`~repro.core.session.DebugSession`, whose lock then guards
    store syncs -- and memoizes compiled conjunctions and canonical
    code masks, which the DDT loop queries repeatedly for the same
    suspects.  Every method degrades gracefully to the dict-based
    reference implementation when a query cannot be compiled, so
    results are always identical to the reference path; every such
    degradation increments the visible :attr:`fallbacks` counter so
    tests can assert the fast path actually served a run.

    Args:
        use_match_cache: route single-conjunction queries through the
            store's shared :meth:`ColumnarStore.match_rows` tables (the
            batch layer).  Off reproduces the uncached per-call
            OR-accumulation of the pre-batch engine exactly, which the
            batch benchmark uses as its baseline.
    """

    def __init__(
        self,
        space: ParameterSpace,
        history,
        session=None,
        use_match_cache: bool = True,
        plan: ShardPlan | None = None,
    ):
        self.space = space
        self.history = history
        self._session = session
        self._plan = plan
        self._codec = SpaceCodec(space)
        self._use_match_cache = use_match_cache
        self._compiled: dict[Conjunction, list[tuple[int, int]] | None] = {}
        self._predicate_masks: dict[Predicate, object] = {}
        self._canonical: dict[Conjunction, dict[int, int]] = {}
        # Pairwise subsumption memo for the batch entry points.
        # Subsumption is a pure function of the two conjunctions and the
        # space (never of the history), and the DDT round filter asks
        # about mostly the same confirmed x suspect grid every round --
        # so verdicts are cached for the engine's lifetime.  Conjunctions
        # are interned to small integer ids first: the per-pair memo key
        # is then an int pair, so a cache hit never re-runs the
        # predicate-set equality a conjunction-keyed lookup would pay.
        self._conjunction_ids: dict[Conjunction, int] = {}
        self._subsume_cache: dict[tuple[int, int], bool] = {}
        # Per-candidate screening progress: candidate id -> the id
        # prefix of a generals sequence already known not to subsume it.
        # The DDT round filter re-screens every surviving suspect
        # against an append-only confirmed list each round; the prefix
        # check turns those re-screens into one tuple compare.
        self._unsubsumed_prefix: dict[int, tuple[int, ...]] = {}
        # Visible instrumentation: reference-path degradations and
        # compiled-conjunction memo traffic.  ``fallbacks`` counts every
        # query answered by a dict-based reference implementation;
        # a clean columnar run must end with it at zero (tests and the
        # batch benchmark assert this), so silent degradations fail CI.
        self.fallbacks = 0
        self.compile_hits = 0
        self.compile_misses = 0

    @classmethod
    def for_session(
        cls,
        session,
        use_match_cache: bool = True,
        plan: ShardPlan | None = None,
    ) -> "ColumnarEngine":
        return cls(
            session.space,
            session.history,
            session=session,
            use_match_cache=use_match_cache,
            plan=plan,
        )

    def _store(self) -> ColumnarStore:
        if self._session is not None:
            return self._session.columnar_store(plan=self._plan)
        return self.history.columnar_store(self.space, plan=self._plan)

    def stats(self) -> dict[str, int | str]:
        """Instrumentation snapshot: fallbacks, cache traffic, and the
        store's shard layout / match-table footprint / kernel path."""
        store = self._store()
        store_stats = store.stats()
        return {
            "fallbacks": self.fallbacks,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "match_hits": store_stats["match_hits"],
            "match_misses": store_stats["match_misses"],
            "match_extensions": store_stats["match_extensions"],
            "match_evictions": store_stats["match_evictions"],
            "match_entries": store_stats["match_entries"],
            "match_bytes": store_stats["match_bytes"],
            "shards": store_stats["shards"],
            "shard_rows": store_stats["shard_rows"],
            "parallel_queries": store_stats["parallel_queries"],
            "kernel_path": kernel_path(),
        }

    def _compiled_for(self, conjunction: Conjunction):
        """The conjunction's compiled mask list, memoized.

        Compiled masks are a pure function of the conjunction and the
        space's code tables (never of the history), so entries stay
        valid for the engine's lifetime; the shared per-predicate
        literal table makes a first compile of a conjunction whose
        literals were already seen O(#predicates) dict lookups.
        """
        try:
            compiled = self._compiled[conjunction]
        except KeyError:
            self.compile_misses += 1
            compiled = compile_conjunction(
                conjunction, self._codec, self._predicate_masks
            )
            self._compiled[conjunction] = compiled
            return compiled
        self.compile_hits += 1
        return compiled

    def _screen_one(
        self, store: ColumnarStore, compiled: list[tuple[int, int]], within_fail: bool
    ) -> bool:
        """One conjunction's existence verdict against an outcome class.

        With the match cache on, this is the shard-short-circuiting
        :meth:`ColumnarStore.any_match`; off, the pre-batch engine's
        uncached OR-accumulation over the composed columns (the batch
        benchmark's baseline) exactly.
        """
        if self._use_match_cache:
            return store.any_match(compiled, within_fail)
        within = store.fail_mask if within_fail else store.succeed_mask
        return store.rows_matching(compiled, within) != 0

    # -- History queries ----------------------------------------------------
    def refutes(self, conjunction: Conjunction) -> bool:
        """Identical to :meth:`ExecutionHistory.refutes`, bitset-fast."""
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return self.history.refutes(conjunction)
        compiled = self._compiled_for(conjunction)
        if compiled is None:
            self.fallbacks += 1
            return self.history.refutes(conjunction)
        return self._screen_one(store, compiled, within_fail=False)

    def supports(self, conjunction: Conjunction) -> bool:
        """Identical to :meth:`ExecutionHistory.supports`, bitset-fast."""
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return self.history.supports(conjunction)
        compiled = self._compiled_for(conjunction)
        if compiled is None:
            self.fallbacks += 1
            return self.history.supports(conjunction)
        return self._screen_one(store, compiled, within_fail=True)

    def is_hypothetical_root_cause(self, conjunction: Conjunction) -> bool:
        return self.supports(conjunction) and not self.refutes(conjunction)

    # -- Batch history queries ------------------------------------------------
    def _screen_many(
        self, conjunctions: Sequence[Conjunction], against: str
    ) -> list[bool]:
        """Shared refutes_many/supports_many body; ``against`` picks the
        outcome bitset the compiled batch is intersected with."""
        store = self._store()
        reference = (
            self.history.refutes if against == "succeed" else self.history.supports
        )
        if store.degraded:
            self.fallbacks += len(conjunctions)
            return [reference(c) for c in conjunctions]
        within_fail = against == "fail"
        compiled_batch = [self._compiled_for(c) for c in conjunctions]
        if (
            self._use_match_cache
            and len(store.shards) > 1
            and None not in compiled_batch
        ):
            # Fully-compilable batch on a multi-shard store: one pass
            # that the executor may fan shard-per-task (serial plans
            # fall through to the same per-item short-circuit scan).
            return store.any_match_many(compiled_batch, within_fail)
        results: list[bool] = []
        for conjunction, compiled in zip(conjunctions, compiled_batch):
            if compiled is None:
                # Per-item degradation: the rest of the batch stays on
                # the compiled path (reference answers are identical).
                self.fallbacks += 1
                results.append(reference(conjunction))
            else:
                results.append(
                    self._screen_one(store, compiled, within_fail)
                )
        return results

    def refutes_many(self, conjunctions: Sequence[Conjunction]) -> list[bool]:
        """``[refutes(c) for c in conjunctions]`` in one store pass.

        Conjunctions sharing literals share one match-table entry; the
        per-conjunction work is then a couple of ANDs.  Order and
        per-item fallback semantics (including exceptions the reference
        path would raise) match the scalar calls exactly.
        """
        return self._screen_many(list(conjunctions), "succeed")

    def supports_many(self, conjunctions: Sequence[Conjunction]) -> list[bool]:
        """``[supports(c) for c in conjunctions]`` in one store pass."""
        return self._screen_many(list(conjunctions), "fail")

    def any_satisfied_by(
        self, conjunctions: Sequence[Conjunction], instance: Instance
    ) -> bool:
        """``any(c.satisfied_by(instance) for c in conjunctions)``.

        The transpose of :meth:`ColumnarStore.rows_matching_many`: one
        strictly-encoded instance is tested against many memoized
        compiled conjunctions, each test a handful of mask bit probes.
        The strict encode matters: a compiled conjunction drops
        full-domain entries as "no constraint", which is only faithful
        when every instance value is in-domain -- anything else (and any
        uncompilable conjunction) falls back to the reference
        ``satisfied_by`` per item.  Evaluation order and short-circuit
        behavior (including any exception the reference path would
        raise) match the scalar ``any`` exactly.
        """
        codes = self._codec.encode(instance)
        for conjunction in conjunctions:
            if codes is None:
                self.fallbacks += 1
                if conjunction.satisfied_by(instance):
                    return True
                continue
            compiled = self._compiled_for(conjunction)
            if compiled is None:
                self.fallbacks += 1
                if conjunction.satisfied_by(instance):
                    return True
                continue
            satisfied = True
            for index, allowed in compiled:
                if not (allowed >> codes[index]) & 1:
                    satisfied = False
                    break
            if satisfied:
                return True
        return False

    # -- Canonical forms and subsumption -------------------------------------
    def canonical_masks(self, conjunction: Conjunction) -> dict[int, int]:
        """Per-parameter-index allowed-code masks; the compiled analogue
        of :meth:`Conjunction.canonical` (full-domain entries dropped),
        with the same error behavior for unknown parameters and
        kind-incompatible comparators.
        """
        cached = self._canonical.get(conjunction)
        if cached is not None:
            return cached
        codec = self._codec
        masks: dict[int, int] = {}
        for predicate in conjunction.predicates:
            index = codec.index_of_name.get(predicate.parameter)
            if index is None:
                raise ValueError(
                    f"predicate on unknown parameter {predicate.parameter!r}"
                )
            parameter = codec.parameters[index]
            if predicate.comparator.is_ordinal_only and not parameter.is_ordinal:
                raise ValueError(
                    f"comparator {predicate.comparator.value!r} requires ordinal "
                    f"parameter, but {predicate.parameter!r} is categorical"
                )
            mask = predicate.satisfying_code_mask(parameter)
            previous = masks.get(index)
            masks[index] = mask if previous is None else previous & mask
        result = {
            index: mask
            for index, mask in masks.items()
            if mask != codec.full_masks[index]
        }
        self._canonical[conjunction] = result
        return result

    def _canonical_or_none(self, conjunction: Conjunction):
        """Canonical masks, or None when only the reference path can
        answer (ValueError -- the reference's own error -- propagates)."""
        try:
            return self.canonical_masks(conjunction)
        except ValueError:
            raise
        except Exception:
            return None

    def _masks_subsume(self, mine: dict[int, int], theirs: dict[int, int]) -> bool:
        """Subsumption on canonical masks (the compiled Definition)."""
        if any(mask == 0 for mask in theirs.values()):
            return True
        full = self._codec.full_masks
        for index, my_mask in mine.items():
            their_mask = theirs.get(index, full[index])
            if their_mask & ~my_mask:
                return False
        return True

    def subsumes(self, general: Conjunction, specific: Conjunction) -> bool:
        """Identical to :meth:`Conjunction.subsumes` over this space."""
        mine = self._canonical_or_none(general)
        theirs = self._canonical_or_none(specific)
        if mine is None or theirs is None:
            self.fallbacks += 1
            return general.subsumes(specific, self.space)
        return self._masks_subsume(mine, theirs)

    def subsumes_matrix(
        self,
        generals: Sequence[Conjunction],
        specifics: Sequence[Conjunction],
    ) -> list[list[bool]]:
        """``matrix[i][j] = subsumes(generals[i], specifics[j])``.

        Canonical masks are computed once per distinct conjunction for
        the whole matrix (they are memoized on the engine anyway, so
        repeated matrices across rounds reuse them); each cell is then
        a handful of mask comparisons.  Per-cell fallback semantics
        match the scalar call.  A fully-compilable matrix worth the
        fan-out evaluates general-rows in parallel on the store's
        executor: workers only *read* the shared verdict memo (and the
        immutable masks) and return their row's fresh verdicts, which
        are folded into the memo after the join, so the result and the
        memo contents are exactly the serial path's.
        """
        general_masks = [self._canonical_or_none(g) for g in generals]
        specific_masks = [self._canonical_or_none(s) for s in specifics]
        general_ids = [self._conjunction_id(g) for g in generals]
        specific_ids = [self._conjunction_id(s) for s in specifics]
        cache = self._subsume_cache
        if (
            len(generals) > 1
            and len(generals) * len(specifics) >= 16
            and all(m is not None for m in general_masks)
            and all(m is not None for m in specific_masks)
        ):
            store = self._store()
            if store.plan.max_workers > 1:
                def matrix_row(
                    pack: tuple[dict[int, int], int],
                ) -> tuple[list[bool], list[tuple[tuple[int, int], bool]]]:
                    mine, gid = pack
                    row: list[bool] = []
                    fresh: list[tuple[tuple[int, int], bool]] = []
                    for theirs, sid in zip(specific_masks, specific_ids):
                        key = (gid, sid)
                        verdict = cache.get(key)
                        if verdict is None:
                            verdict = self._masks_subsume(mine, theirs)
                            fresh.append((key, verdict))
                        row.append(verdict)
                    return row, fresh
                rows = store.executor.map(
                    matrix_row, list(zip(general_masks, general_ids))
                )
                matrix: list[list[bool]] = []
                for row, fresh in rows:
                    for key, verdict in fresh:
                        cache[key] = verdict
                    matrix.append(row)
                return matrix
        matrix = []
        for general, mine, gid in zip(generals, general_masks, general_ids):
            row: list[bool] = []
            for specific, theirs, sid in zip(
                specifics, specific_masks, specific_ids
            ):
                key = (gid, sid)
                verdict = cache.get(key)
                if verdict is None:
                    if mine is None or theirs is None:
                        self.fallbacks += 1
                        verdict = general.subsumes(specific, self.space)
                    else:
                        verdict = self._masks_subsume(mine, theirs)
                    cache[key] = verdict
                row.append(verdict)
            matrix.append(row)
        return matrix

    def _conjunction_id(self, conjunction: Conjunction) -> int:
        """Small interned id for a conjunction (by value equality)."""
        ids = self._conjunction_ids
        interned = ids.get(conjunction)
        if interned is None:
            interned = len(ids)
            ids[conjunction] = interned
        return interned

    def subsumed_by_any(
        self,
        generals: Sequence[Conjunction],
        candidates: Sequence[Conjunction],
    ) -> list[bool]:
        """``[any(subsumes(g, c) for g in generals) for c in candidates]``.

        The DDT round filter: canonical masks are resolved once per
        distinct conjunction for the whole grid, and each candidate's
        scan short-circuits on the first subsuming general, exactly like
        the scalar ``any``.
        """
        unresolved = _UNCOMPILABLE  # reuse the module sentinel
        general_ids = tuple(self._conjunction_id(g) for g in generals)
        general_masks: list = [unresolved] * len(generals)
        cache = self._subsume_cache
        progress = self._unsubsumed_prefix
        results: list[bool] = []
        for candidate in candidates:
            cid = self._conjunction_id(candidate)
            start = 0
            prior = progress.get(cid)
            if prior is not None and general_ids[: len(prior)] == prior:
                # Every general in the prior prefix is already known not
                # to subsume this candidate; resume after it.
                start = len(prior)
            theirs = unresolved
            covered = False
            position = len(generals)
            for position in range(start, len(generals)):
                key = (general_ids[position], cid)
                covered = cache.get(key)
                if covered is None:
                    if theirs is unresolved:
                        theirs = self._canonical_or_none(candidate)
                    mine = general_masks[position]
                    if mine is unresolved:
                        mine = general_masks[position] = self._canonical_or_none(
                            generals[position]
                        )
                    if mine is None or theirs is None:
                        self.fallbacks += 1
                        covered = generals[position].subsumes(
                            candidate, self.space
                        )
                    else:
                        covered = self._masks_subsume(mine, theirs)
                    cache[key] = covered
                if covered:
                    break
            if covered:
                # The prefix before the subsuming general stays valid.
                progress[cid] = general_ids[:position]
                results.append(True)
            else:
                progress[cid] = general_ids
                results.append(False)
        return results

    def satisfying_value_lists(
        self, conjunction: Conjunction
    ) -> tuple[bool, list[tuple[str, list]] | None] | None:
        """Compiled analogue of the suspect-sampling canonical scan.

        Returns ``(satisfiable, per_parameter)`` where ``per_parameter``
        lists every space parameter with its repr-sorted satisfying
        values -- exactly what the DDT variation sampler derives from
        :meth:`Conjunction.canonical` -- or ``(False, None)`` for an
        unsatisfiable conjunction.  Returns None (caller must use the
        reference scan) when a constrained parameter's domain has
        duplicate value reprs, because then the reference's
        ``sorted(frozenset, key=repr)`` tie order cannot be reproduced
        from codes.  ValueError propagates exactly like the reference.
        """
        masks = self._canonical_or_none(conjunction)
        if masks is None:
            self.fallbacks += 1
            return None
        codec = self._codec
        per_parameter: list[tuple[str, list]] = []
        for index, name in enumerate(codec.names):
            parameter = codec.parameters[index]
            mask = masks.get(index)
            if mask is None:
                per_parameter.append((name, list(parameter.domain)))
                continue
            if mask == 0:
                return (False, None)
            if not codec.unique_reprs[index]:
                self.fallbacks += 1
                return None
            per_parameter.append(
                (
                    name,
                    [
                        parameter.domain[code]
                        for code in codec.repr_orders[index]
                        if mask >> code & 1
                    ],
                )
            )
        return (True, per_parameter)

    # -- History scans (Shortcut / Stacked Shortcut support) ------------------
    def _scannable_codes(self, failing: Instance):
        """(store, lenient codes) when the bitset path can serve a scan
        anchored on ``failing``; (store, None) demands reference fallback.
        """
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return store, None
        codes = store.codec.encode_lenient(failing)
        if codes is None:
            self.fallbacks += 1
        return store, codes

    def disjoint_successes(self, failing: Instance) -> list[Instance]:
        """Identical to :meth:`ExecutionHistory.disjoint_successes`.

        One OR per parameter builds the rows-sharing-a-value mask; the
        disjoint successes are its complement within the success bitset.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.disjoint_successes(failing)
        return store.materialize(store.succeed_mask & ~store.share_mask(codes))

    def most_different_success(self, failing: Instance) -> Instance | None:
        """Identical to :meth:`ExecutionHistory.most_different_success`:
        the earliest success at maximal Hamming distance from ``failing``.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.most_different_success(failing)
        row = store.min_shared_row(codes, store.succeed_mask)
        return None if row is None else store.rows[row]

    def mutually_disjoint_successes(
        self, failing: Instance, limit: int | None = None
    ) -> list[Instance]:
        """Identical to :meth:`ExecutionHistory.mutually_disjoint_successes`
        (greedy first-fit in log order), with each accepted instance
        eliminating everything it shares a value with in one mask AND.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.mutually_disjoint_successes(failing, limit)
        candidates = store.succeed_mask & ~store.share_mask(codes)
        selected: list[Instance] = []
        while candidates:
            row = lowest_bit(candidates)
            selected.append(store.rows[row])
            if limit is not None and len(selected) >= limit:
                break
            # A row shares every value with itself, so this also clears it.
            candidates &= ~store.share_mask(store.row_codes[row])
        return selected

    def success_superset_of(self, assignment: Mapping[str, object]) -> bool:
        """Identical to :meth:`ExecutionHistory.success_superset_of`:
        True when some success contains the (partial) assignment.

        This is the Shortcut sanity check (Theorem 4's truncation
        test), compiled to one AND per asserted parameter-value pair.
        """
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return self.history.success_superset_of(assignment)
        codec = store.codec
        use_cache = self._use_match_cache
        rows = store.succeed_mask
        for name, value in assignment.items():
            index = codec.index_of_name.get(name)
            if index is None:
                # A name outside the space: the reference loop may raise
                # KeyError (order-dependent); replay it exactly.
                self.fallbacks += 1
                return self.history.success_superset_of(assignment)
            code = codec.parameters[index].code_of(value)
            if code is None:
                return False  # out-of-domain value matches no store row
            if use_cache:
                # Ride the batch layer's shared match tables: the same
                # (parameter, value) literal queried by any compiled
                # conjunction reuses this row bitset and vice versa.
                rows &= store.match_rows(index, 1 << code)
            else:
                rows &= store.column(index, code)
            if not rows:
                return False
        return rows != 0

    # -- Tree induction ------------------------------------------------------
    def tree(self, max_depth: int | None = None) -> DebuggingTree | None:
        """The debugging tree over the current history, incrementally
        maintained; None when the store is degraded (caller should fall
        back to :class:`~repro.core.tree.DebuggingTree`).
        """
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return None
        root = store.builder(max_depth).tree()
        return DebuggingTree.from_root(self.space, root, store.n_rows)
