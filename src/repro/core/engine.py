"""Columnar evaluation engine: the bitset fast path of the debugger.

The reference implementations in :mod:`repro.core.history` and
:mod:`repro.core.tree` evaluate hypotheses by walking Python dicts: a
``refutes`` call applies every predicate to every successful instance,
and every Debugging-Decision-Trees round re-partitions instance dicts at
every tree node.  On large parameter sweeps the debugger's own CPU time
then dominates (the paper's Figure 5 regime), exactly the situation
SMBO-style tools handle by compiling the search's inner loop to array
operations.

This module provides that compiled path:

* :class:`SpaceCodec` interns every domain value of a
  :class:`~repro.core.types.ParameterSpace` to a small integer code
  (its domain position, so ordinal code order equals value order).
* :class:`ColumnarStore` maintains, per parameter and per value code,
  a bitset of history rows holding that code, plus fail/succeed row
  bitsets.  It appends incrementally as the history grows.
* Conjunctions compile to per-parameter *allowed-code masks*; testing
  one against the whole history is a handful of big-int ANDs
  (:meth:`ColumnarEngine.refutes` / :meth:`ColumnarEngine.supports`).
* Whole *batches* of conjunctions evaluate in one pass
  (:func:`compile_many`, :meth:`ColumnarStore.rows_matching_many`,
  :meth:`ColumnarEngine.refutes_many` / :meth:`~ColumnarEngine.supports_many`
  / :meth:`~ColumnarEngine.subsumes_matrix`): conjunctions sharing
  literals share one per-``(parameter, allowed-mask)`` *match table*
  (:meth:`ColumnarStore.match_rows`), memoized on the store and
  invalidated by row-count generation whenever the history grows.
* :class:`IncrementalTreeBuilder` induces the debugging decision tree
  over index bitsets, and *repairs* the previous round's tree on append
  instead of rebuilding it: only nodes whose row set changed are
  re-scored, and a subtree is rebuilt only when its best split changed.

Correctness contract: every public operation returns **exactly** what
the dict-based reference path returns.  The encoders therefore refuse
anything they cannot mirror faithfully -- a history row whose parameter
set differs from the space, an out-of-domain value, a predicate whose
comparator raises -- and the engine transparently falls back to the
reference implementation for that query (or entirely, when the store is
degraded).  The equivalence is property-tested in
``tests/test_engine.py``.

The incremental-tree invariant: after ``sync``, the shadow tree equals
the tree a full rebuild over the current rows would produce.  This
holds because tree induction is a pure function of a node's row bitset
(and depth): repaired nodes re-run the full candidate scan, children
that received no new rows keep bit-identical row sets, and a node whose
best split changed is rebuilt from scratch.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .predicates import Comparator, Conjunction, Predicate
from .tree import DebuggingTree, LeafKind, TreeNode, _gini, _predicate_rank
from .types import Instance, Outcome, ParameterSpace

__all__ = [
    "SpaceCodec",
    "ColumnarStore",
    "ColumnarEngine",
    "IncrementalTreeBuilder",
    "compile_conjunction",
    "compile_many",
]


def _iter_bits(mask: int):
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class SpaceCodec:
    """Value-interning tables for one parameter space.

    Codes are domain positions: ``codec`` work is a handful of dict
    lookups per instance, done once, after which every engine operation
    is integer arithmetic.
    """

    __slots__ = (
        "space",
        "names",
        "parameters",
        "n_params",
        "index_of_name",
        "domain_sizes",
        "full_masks",
        "repr_orders",
        "unique_reprs",
    )

    def __init__(self, space: ParameterSpace):
        self.space = space
        self.names = space.names
        self.parameters = space.parameters
        self.n_params = len(self.names)
        self.index_of_name = {name: i for i, name in enumerate(self.names)}
        self.domain_sizes = tuple(len(p.domain) for p in self.parameters)
        self.full_masks = tuple((1 << size) - 1 for size in self.domain_sizes)
        # Candidate order for categorical splits: codes sorted by value
        # repr, mirroring ``sorted(observed, key=repr)`` in the
        # reference ``_candidate_splits``.
        self.repr_orders = tuple(
            tuple(sorted(range(len(p.domain)), key=lambda c, p=p: repr(p.domain[c])))
            for p in self.parameters
        )
        # Whether the domain's value reprs are pairwise distinct: only
        # then is ``sorted(values, key=repr)`` a total order, letting
        # mask->value decoding reproduce the reference's repr-sorted
        # value lists exactly (ties in the reference depend on set
        # iteration order, which codes cannot mirror).
        self.unique_reprs = tuple(
            len({repr(v) for v in p.domain}) == len(p.domain)
            for p in self.parameters
        )

    def encode(self, instance: Mapping[str, object]) -> tuple[int, ...] | None:
        """Instance -> per-parameter value codes, or None when the
        instance is not exactly one in-domain value per space parameter.
        """
        codes = self.encode_lenient(instance)
        if codes is None or None in codes:
            return None
        return codes  # type: ignore[return-value]

    def encode_lenient(
        self, instance: Mapping[str, object]
    ) -> tuple[int | None, ...] | None:
        """Like :meth:`encode`, but tolerant of out-of-domain values.

        Out-of-domain values encode to None *per parameter* -- for
        distance/disjointness purposes such a value simply differs from
        every in-domain row value, which keeps Hamming and disjointness
        queries exact without falling back.  Returns None (uncodable)
        only when the instance's parameter-name set is not exactly the
        space's, because then the reference semantics (shared-parameter
        counting, Definition 6's common-parameter-set requirement)
        cannot be mirrored column-wise.
        """
        if len(instance) != self.n_params:
            return None
        codes: list[int | None] = []
        for parameter in self.parameters:
            try:
                value = instance[parameter.name]
            except KeyError:
                return None
            codes.append(parameter.code_of(value))
        return tuple(codes)


# Sentinel for "this predicate cannot be compiled" in shared memos (a
# plain None entry would be indistinguishable from a cache miss).
_UNCOMPILABLE = object()


def compile_conjunction(
    conjunction: Conjunction,
    codec: SpaceCodec,
    predicate_masks: dict[Predicate, object] | None = None,
) -> list[tuple[int, int]] | None:
    """Compile to ``[(parameter_index, allowed_code_mask), ...]``.

    Mirrors :meth:`Conjunction.satisfied_by` exactly over in-domain
    rows: a row satisfies the conjunction iff, for every entry, the
    row's code bit is inside the allowed mask.  Entries whose mask is
    the full domain are kept out (no constraint).  Returns None when
    the conjunction cannot be compiled faithfully (a predicate on a
    parameter outside the space, or a comparator that raises on some
    domain value); callers must fall back to the reference path.

    ``predicate_masks`` is an optional per-predicate memo shared across
    calls (the batch layer's literal table): conjunctions sharing a
    literal then share one :meth:`Predicate.satisfying_code_mask`
    evaluation instead of re-scanning the domain per conjunction.
    """
    masks: dict[int, int] = {}
    for predicate in conjunction.predicates:
        entry = None if predicate_masks is None else predicate_masks.get(predicate)
        if entry is None:
            index = codec.index_of_name.get(predicate.parameter)
            if index is None:
                entry = _UNCOMPILABLE
            else:
                try:
                    entry = (index, predicate.satisfying_code_mask(codec.parameters[index]))
                except Exception:
                    entry = _UNCOMPILABLE
            if predicate_masks is not None:
                predicate_masks[predicate] = entry
        if entry is _UNCOMPILABLE:
            return None
        index, mask = entry  # type: ignore[misc]
        previous = masks.get(index)
        masks[index] = mask if previous is None else previous & mask
    return sorted(
        (index, mask)
        for index, mask in masks.items()
        if mask != codec.full_masks[index]
    )


def compile_many(
    conjunctions: Sequence[Conjunction],
    codec: SpaceCodec,
    predicate_masks: dict[Predicate, object] | None = None,
) -> list[list[tuple[int, int]] | None]:
    """Compile a batch of conjunctions with one shared literal table.

    Equivalent to ``[compile_conjunction(c, codec) for c in
    conjunctions]`` (per-item None for uncompilable entries), but every
    distinct predicate's allowed-code mask is computed once for the
    whole batch.  Pass a ``predicate_masks`` dict to keep the table
    alive across batches.
    """
    if predicate_masks is None:
        predicate_masks = {}
    return [
        compile_conjunction(conjunction, codec, predicate_masks)
        for conjunction in conjunctions
    ]


class ColumnarStore:
    """Integer-coded columns + outcome bitsets over one history.

    Row ``i`` is the ``i``-th *distinct* instance of the history (the
    exact sample set the DDT induction consumes).  ``value_rows[p][c]``
    is the bitset of rows whose parameter ``p`` has code ``c``;
    ``fail_mask`` / ``succeed_mask`` partition ``all_mask`` by outcome.
    :meth:`sync` appends rows for history entries recorded since the
    last call -- nothing is ever recomputed from scratch.

    A row the codec cannot encode marks the store *degraded*: every
    engine operation then falls back to the reference path (answers
    from a partial column store would silently diverge).
    """

    def __init__(self, history, space: ParameterSpace):
        self.history = history
        self.space = space
        self.codec = SpaceCodec(space)
        self.value_rows: list[list[int]] = [
            [0] * size for size in self.codec.domain_sizes
        ]
        self.fail_mask = 0
        self.all_mask = 0
        self.n_rows = 0
        self.rows: list[Instance] = []
        self.row_codes: list[tuple[int, ...]] = []
        self.degraded = False
        self._synced = 0
        self._builders: dict[int | None, IncrementalTreeBuilder] = {}
        # Batch-evaluation match tables: (parameter_index, allowed_mask)
        # -> bitset of rows whose code lies in the mask.  Entries are
        # *extended incrementally* when rows were appended since they
        # were built (append-only histories make the row count the
        # generation counter), so a growing history never invalidates
        # the tables -- it only adds each new row's bit to the entries
        # whose mask contains the row's code.
        self._match_cache: dict[tuple[int, int], int] = {}
        self._match_generation = 0
        self.match_hits = 0
        self.match_misses = 0
        self.match_extensions = 0  # entries incrementally extended

    @property
    def succeed_mask(self) -> int:
        return self.all_mask & ~self.fail_mask

    def sync(self) -> None:
        """Append rows for history entries recorded since the last sync."""
        if self.degraded:
            return
        count = self.history.distinct_count
        if count == self._synced:
            return
        encode = self.codec.encode
        value_rows = self.value_rows
        for instance, outcome in self.history.distinct_since(self._synced):
            codes = encode(instance)
            if codes is None:
                self.degraded = True
                break
            bit = 1 << self.n_rows
            for index, code in enumerate(codes):
                value_rows[index][code] |= bit
            if outcome is Outcome.FAIL:
                self.fail_mask |= bit
            self.all_mask |= bit
            self.rows.append(instance)
            self.row_codes.append(codes)
            self.n_rows += 1
        self._synced = count

    def rows_matching(self, compiled: list[tuple[int, int]], within: int) -> int:
        """Bitset of rows in ``within`` satisfying a compiled conjunction."""
        rows = within
        for index, allowed in compiled:
            if not rows:
                break
            column = self.value_rows[index]
            matched = 0
            remaining = allowed
            while remaining:
                low = remaining & -remaining
                matched |= column[low.bit_length() - 1]
                remaining ^= low
            rows &= matched
        return rows

    def _extend_match_tables(self) -> None:
        """Bring every cached match table up to the current row count.

        Append-only repair instead of invalidation: for each row
        appended since the tables' generation, OR its bit into every
        entry whose allowed mask contains the row's code.  Cost is
        O(new_rows x cached_entries) single-bit tests -- in the DDT
        inner loop (one refuting row per round) that is one test per
        live literal, versus the full per-code column re-accumulation
        the old generation-clearing forced on *every* table.
        """
        start = self._match_generation
        self._match_generation = self.n_rows
        if not self._match_cache or start == self.n_rows:
            return
        row_codes = self.row_codes
        for key, rows in self._match_cache.items():
            index, allowed = key
            extra = 0
            for row in range(start, self.n_rows):
                if (allowed >> row_codes[row][index]) & 1:
                    extra |= 1 << row
            if extra:
                self._match_cache[key] = rows | extra
            self.match_extensions += 1

    def match_rows(self, index: int, allowed: int) -> int:
        """Bitset of rows whose ``index`` code lies in ``allowed`` (cached).

        This is the batch layer's shared *match table*: many compiled
        conjunctions reference the same ``(parameter, allowed-mask)``
        literal, and the OR-accumulation over the per-code columns is
        done once per literal.  When rows were appended since a table
        was built, the table is extended in place with the new rows'
        bits (:meth:`_extend_match_tables`) rather than recomputed --
        a lookup that found its entry still counts as a hit, keeping
        the hit/miss stats aligned with the work actually avoided
        (``match_extensions`` counts the incremental repairs).
        """
        if self._match_generation != self.n_rows:
            self._extend_match_tables()
        key = (index, allowed)
        matched = self._match_cache.get(key)
        if matched is not None:
            self.match_hits += 1
            return matched
        self.match_misses += 1
        column = self.value_rows[index]
        matched = 0
        remaining = allowed
        while remaining:
            low = remaining & -remaining
            matched |= column[low.bit_length() - 1]
            remaining ^= low
        self._match_cache[key] = matched
        return matched

    def rows_matching_many(
        self,
        compiled_batch: Sequence[list[tuple[int, int]] | None],
        within: int,
    ) -> list[int | None]:
        """Per-conjunction hit bitsets for a compiled batch, in one pass.

        Equivalent to ``[rows_matching(c, within) for c in batch]`` with
        None propagated for uncompilable entries, but every distinct
        ``(parameter, allowed-mask)`` literal touches the columns once
        via the shared :meth:`match_rows` table.
        """
        results: list[int | None] = []
        for compiled in compiled_batch:
            if compiled is None:
                results.append(None)
                continue
            rows = within
            for index, allowed in compiled:
                if not rows:
                    break
                rows &= self.match_rows(index, allowed)
            results.append(rows)
        return results

    def load_codes(self, codes: Sequence[Sequence[int]]) -> None:
        """Seed a fresh store from pre-encoded rows (zero encode calls).

        ``codes`` must hold one in-range code tuple per *distinct*
        history instance, in first-execution order -- exactly what
        :meth:`sync` would have produced by encoding.  Persistence uses
        this to hydrate a store straight from schema-v3 encoded-row
        tables.  Raises ValueError for a non-fresh store or malformed
        codes (callers fall back to the encoding path).
        """
        if self.n_rows or self._synced or self.degraded:
            raise ValueError("load_codes requires a fresh, unsynced store")
        count = self.history.distinct_count
        if len(codes) != count:
            raise ValueError(
                f"expected {count} encoded rows, got {len(codes)}"
            )
        sizes = self.codec.domain_sizes
        value_rows = self.value_rows
        for (instance, outcome), row in zip(
            self.history.distinct_since(0), codes
        ):
            row_codes = tuple(row)
            if len(row_codes) != self.codec.n_params or any(
                not 0 <= code < sizes[i] for i, code in enumerate(row_codes)
            ):
                raise ValueError(f"malformed encoded row {row_codes!r}")
            bit = 1 << self.n_rows
            for index, code in enumerate(row_codes):
                value_rows[index][code] |= bit
            if outcome is Outcome.FAIL:
                self.fail_mask |= bit
            self.all_mask |= bit
            self.rows.append(instance)
            self.row_codes.append(row_codes)
            self.n_rows += 1
        self._synced = count

    def materialize(self, rows_mask: int) -> list[Instance]:
        """The instances of the rows in ``rows_mask``, in row order."""
        rows = self.rows
        return [rows[index] for index in _iter_bits(rows_mask)]

    # -- Distance / disjointness primitives ----------------------------------
    def share_mask(self, codes: Sequence[int | None]) -> int:
        """Bitset of rows sharing at least one coded value with ``codes``.

        ``codes`` is a leniently-encoded instance (one entry per space
        parameter); a None entry is an out-of-domain value, which shares
        with no row.  The complement of the result (within ``all_mask``)
        is exactly the rows *disjoint* from the instance under
        Definition 6, because every store row assigns every parameter.
        """
        shared = 0
        value_rows = self.value_rows
        for index, code in enumerate(codes):
            if code is not None:
                shared |= value_rows[index][code]
        return shared

    def min_shared_row(
        self, codes: Sequence[int | None], within: int
    ) -> int | None:
        """The earliest row in ``within`` sharing the *fewest* parameter
        values with ``codes`` -- i.e. the maximal-Hamming-distance row,
        with ties broken toward the lowest row index (first-execution
        order), mirroring the reference scan's strictly-greater update.

        Returns None when ``within`` is empty.  Cost is
        O(n_params * log(n_params)) big-int operations: per-row shared
        counts are accumulated in bit-sliced binary counters, then the
        minimum is selected plane-by-plane from the high bit down.
        """
        if not within:
            return None
        planes: list[int] = []  # planes[i]: rows whose count has bit i set
        value_rows = self.value_rows
        for index, code in enumerate(codes):
            if code is None:
                continue
            carry = value_rows[index][code] & within
            level = 0
            while carry:
                if level == len(planes):
                    planes.append(carry)
                    break
                carry, planes[level] = (
                    planes[level] & carry,
                    planes[level] ^ carry,
                )
                level += 1
        candidates = within
        for plane in reversed(planes):
            zeros = candidates & ~plane
            if zeros:
                candidates = zeros
        low = candidates & -candidates
        return low.bit_length() - 1

    def builder(self, max_depth: int | None) -> "IncrementalTreeBuilder":
        """The (cached) incremental tree builder for this depth cap."""
        builder = self._builders.get(max_depth)
        if builder is None:
            builder = IncrementalTreeBuilder(self, max_depth)
            self._builders[max_depth] = builder
        return builder


class _Shadow:
    """A tree node plus the row bitset it was induced from."""

    __slots__ = ("node", "mask", "true_shadow", "false_shadow")

    def __init__(
        self,
        node: TreeNode,
        mask: int,
        true_shadow: "_Shadow | None" = None,
        false_shadow: "_Shadow | None" = None,
    ):
        self.node = node
        self.mask = mask
        self.true_shadow = true_shadow
        self.false_shadow = false_shadow


class IncrementalTreeBuilder:
    """Columnar decision-tree induction with append-only repair.

    Produces a :class:`~repro.core.tree.TreeNode` structure identical to
    :func:`~repro.core.tree.build_tree` over the store's rows.  After an
    append, :meth:`tree` walks only the root-to-leaf paths the new rows
    fall into; sibling subtrees whose row sets are untouched are reused
    as-is.  Returned nodes are updated in place across rounds -- callers
    must treat a previous round's tree as expired after the next call.
    """

    def __init__(self, store: ColumnarStore, max_depth: int | None):
        self.store = store
        self.max_depth = max_depth
        self._root: _Shadow | None = None
        self._built_rows = 0
        self._rank_cache: dict[tuple[int, Comparator, int], int] = {}

    def tree(self) -> TreeNode:
        """The tree over the store's current rows (store must be synced)."""
        n = self.store.n_rows
        if n == 0:
            return TreeNode(leaf_kind=LeafKind.MIXED, depth=0)
        if self._root is None:
            self._root = self._build(self.store.all_mask, 0)
        elif self._built_rows < n:
            new_bits = self.store.all_mask ^ ((1 << self._built_rows) - 1)
            self._root = self._update(self._root, new_bits, 0)
        self._built_rows = n
        return self._root.node

    # -- Induction ---------------------------------------------------------
    def _leaf(self, mask: int, depth: int) -> _Shadow:
        n_fail = (mask & self.store.fail_mask).bit_count()
        n_succeed = mask.bit_count() - n_fail
        if n_fail and not n_succeed:
            kind = LeafKind.FAIL
        elif n_succeed and not n_fail:
            kind = LeafKind.SUCCEED
        else:
            kind = LeafKind.MIXED
        node = TreeNode(
            leaf_kind=kind, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )
        return _Shadow(node, mask)

    def _rank(self, index: int, comparator: Comparator, code: int) -> int:
        key = (index, comparator, code)
        rank = self._rank_cache.get(key)
        if rank is None:
            parameter = self.store.codec.parameters[index]
            rank = _predicate_rank(
                Predicate(parameter.name, comparator, parameter.domain[code])
            )
            self._rank_cache[key] = rank
        return rank

    def _best_split(self, mask: int) -> tuple[Predicate, int] | None:
        """Best (predicate, true-row bitset), mirroring the reference.

        Candidate enumeration order, the Gini gain arithmetic, and the
        ``(gain, -rank)`` tie-break replicate ``_candidate_splits`` /
        ``_split_gain`` bit for bit, so the chosen split -- and hence
        the whole tree -- is identical to the dict path's.
        """
        store = self.store
        codec = store.codec
        fail = store.fail_mask
        total = mask.bit_count()
        n_fail_total = (mask & fail).bit_count()
        n_succeed_total = total - n_fail_total
        parent = _gini(n_fail_total, n_succeed_total)

        best_gain: float | None = None
        best_rank = 0
        best: tuple[Predicate, int] | None = None

        def consider(
            index: int, comparator: Comparator, code: int, true_mask: int
        ) -> None:
            nonlocal best_gain, best_rank, best
            n_true = true_mask.bit_count()
            n_false = total - n_true
            if n_true == 0 or n_false == 0:
                return
            true_fail = (true_mask & fail).bit_count()
            true_succeed = n_true - true_fail
            false_fail = n_fail_total - true_fail
            false_succeed = n_succeed_total - true_succeed
            child = (n_true / total) * _gini(true_fail, true_succeed) + (
                n_false / total
            ) * _gini(false_fail, false_succeed)
            gain = parent - child
            if best_gain is not None and gain < best_gain:
                return
            rank = self._rank(index, comparator, code)
            if best_gain is None or gain > best_gain or -rank > -best_rank:
                parameter = codec.parameters[index]
                best_gain = gain
                best_rank = rank
                best = (
                    Predicate(parameter.name, comparator, parameter.domain[code]),
                    true_mask,
                )

        for index, parameter in enumerate(codec.parameters):
            column = store.value_rows[index]
            observed = [c for c in range(len(column)) if column[c] & mask]
            if len(observed) < 2:
                continue
            if parameter.is_ordinal:
                accumulated = 0
                for code in observed[:-1]:
                    accumulated |= column[code]
                    consider(index, Comparator.LE, code, accumulated & mask)
            else:
                observed_set = set(observed)
                for code in codec.repr_orders[index]:
                    if code in observed_set:
                        consider(index, Comparator.EQ, code, column[code] & mask)
        return best

    def _build(self, mask: int, depth: int) -> _Shadow:
        n_fail = (mask & self.store.fail_mask).bit_count()
        n_succeed = mask.bit_count() - n_fail
        if n_fail == 0 or n_succeed == 0:
            return self._leaf(mask, depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return self._leaf(mask, depth)
        best = self._best_split(mask)
        if best is None:
            return self._leaf(mask, depth)
        predicate, true_mask = best
        node = TreeNode(
            predicate=predicate, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )
        true_shadow = self._build(true_mask, depth + 1)
        false_shadow = self._build(mask & ~true_mask, depth + 1)
        node.true_branch = true_shadow.node
        node.false_branch = false_shadow.node
        return _Shadow(node, mask, true_shadow, false_shadow)

    def _update(self, shadow: _Shadow, new_bits: int, depth: int) -> _Shadow:
        """Repair a subtree after ``new_bits`` rows joined its row set.

        Equivalent to ``_build(shadow.mask | new_bits, depth)`` -- see
        the module docstring for the invariant argument -- but reuses
        every descendant whose row set is unchanged.
        """
        mask = shadow.mask | new_bits
        n_fail = (mask & self.store.fail_mask).bit_count()
        n_succeed = mask.bit_count() - n_fail
        if n_fail == 0 or n_succeed == 0:
            return self._leaf(mask, depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return self._leaf(mask, depth)
        best = self._best_split(mask)
        if best is None:
            return self._leaf(mask, depth)
        predicate, true_mask = best
        node = shadow.node
        if node.predicate is None or node.predicate != predicate:
            return self._build(mask, depth)
        new_true = new_bits & true_mask
        new_false = new_bits & ~true_mask
        if new_true:
            shadow.true_shadow = self._update(
                shadow.true_shadow, new_true, depth + 1  # type: ignore[arg-type]
            )
        if new_false:
            shadow.false_shadow = self._update(
                shadow.false_shadow, new_false, depth + 1  # type: ignore[arg-type]
            )
        node.true_branch = shadow.true_shadow.node  # type: ignore[union-attr]
        node.false_branch = shadow.false_shadow.node  # type: ignore[union-attr]
        node.n_fail = n_fail
        node.n_succeed = n_succeed
        shadow.mask = mask
        return shadow


class ColumnarEngine:
    """Facade the algorithms drive: compiled queries over one session.

    Wraps a (space, history) pair -- or a
    :class:`~repro.core.session.DebugSession`, whose lock then guards
    store syncs -- and memoizes compiled conjunctions and canonical
    code masks, which the DDT loop queries repeatedly for the same
    suspects.  Every method degrades gracefully to the dict-based
    reference implementation when a query cannot be compiled, so
    results are always identical to the reference path; every such
    degradation increments the visible :attr:`fallbacks` counter so
    tests can assert the fast path actually served a run.

    Args:
        use_match_cache: route single-conjunction queries through the
            store's shared :meth:`ColumnarStore.match_rows` tables (the
            batch layer).  Off reproduces the uncached per-call
            OR-accumulation of the pre-batch engine exactly, which the
            batch benchmark uses as its baseline.
    """

    def __init__(
        self,
        space: ParameterSpace,
        history,
        session=None,
        use_match_cache: bool = True,
    ):
        self.space = space
        self.history = history
        self._session = session
        self._codec = SpaceCodec(space)
        self._use_match_cache = use_match_cache
        self._compiled: dict[Conjunction, list[tuple[int, int]] | None] = {}
        self._predicate_masks: dict[Predicate, object] = {}
        self._canonical: dict[Conjunction, dict[int, int]] = {}
        # Pairwise subsumption memo for the batch entry points.
        # Subsumption is a pure function of the two conjunctions and the
        # space (never of the history), and the DDT round filter asks
        # about mostly the same confirmed x suspect grid every round --
        # so verdicts are cached for the engine's lifetime.  Conjunctions
        # are interned to small integer ids first: the per-pair memo key
        # is then an int pair, so a cache hit never re-runs the
        # predicate-set equality a conjunction-keyed lookup would pay.
        self._conjunction_ids: dict[Conjunction, int] = {}
        self._subsume_cache: dict[tuple[int, int], bool] = {}
        # Per-candidate screening progress: candidate id -> the id
        # prefix of a generals sequence already known not to subsume it.
        # The DDT round filter re-screens every surviving suspect
        # against an append-only confirmed list each round; the prefix
        # check turns those re-screens into one tuple compare.
        self._unsubsumed_prefix: dict[int, tuple[int, ...]] = {}
        # Visible instrumentation: reference-path degradations and
        # compiled-conjunction memo traffic.  ``fallbacks`` counts every
        # query answered by a dict-based reference implementation;
        # a clean columnar run must end with it at zero (tests and the
        # batch benchmark assert this), so silent degradations fail CI.
        self.fallbacks = 0
        self.compile_hits = 0
        self.compile_misses = 0

    @classmethod
    def for_session(cls, session, use_match_cache: bool = True) -> "ColumnarEngine":
        return cls(
            session.space,
            session.history,
            session=session,
            use_match_cache=use_match_cache,
        )

    def _store(self) -> ColumnarStore:
        if self._session is not None:
            return self._session.columnar_store()
        return self.history.columnar_store(self.space)

    def stats(self) -> dict[str, int]:
        """Instrumentation snapshot: fallbacks and cache traffic."""
        store = self._store()
        return {
            "fallbacks": self.fallbacks,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "match_hits": store.match_hits,
            "match_misses": store.match_misses,
            "match_extensions": store.match_extensions,
        }

    def _compiled_for(self, conjunction: Conjunction):
        """The conjunction's compiled mask list, memoized.

        Compiled masks are a pure function of the conjunction and the
        space's code tables (never of the history), so entries stay
        valid for the engine's lifetime; the shared per-predicate
        literal table makes a first compile of a conjunction whose
        literals were already seen O(#predicates) dict lookups.
        """
        try:
            compiled = self._compiled[conjunction]
        except KeyError:
            self.compile_misses += 1
            compiled = compile_conjunction(
                conjunction, self._codec, self._predicate_masks
            )
            self._compiled[conjunction] = compiled
            return compiled
        self.compile_hits += 1
        return compiled

    def _rows_matching(
        self, store: ColumnarStore, compiled: list[tuple[int, int]], within: int
    ) -> int:
        """One conjunction's hit bitset, through the match tables when on."""
        if not self._use_match_cache:
            return store.rows_matching(compiled, within)
        rows = within
        for index, allowed in compiled:
            if not rows:
                break
            rows &= store.match_rows(index, allowed)
        return rows

    # -- History queries ----------------------------------------------------
    def refutes(self, conjunction: Conjunction) -> bool:
        """Identical to :meth:`ExecutionHistory.refutes`, bitset-fast."""
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return self.history.refutes(conjunction)
        compiled = self._compiled_for(conjunction)
        if compiled is None:
            self.fallbacks += 1
            return self.history.refutes(conjunction)
        return self._rows_matching(store, compiled, store.succeed_mask) != 0

    def supports(self, conjunction: Conjunction) -> bool:
        """Identical to :meth:`ExecutionHistory.supports`, bitset-fast."""
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return self.history.supports(conjunction)
        compiled = self._compiled_for(conjunction)
        if compiled is None:
            self.fallbacks += 1
            return self.history.supports(conjunction)
        return self._rows_matching(store, compiled, store.fail_mask) != 0

    def is_hypothetical_root_cause(self, conjunction: Conjunction) -> bool:
        return self.supports(conjunction) and not self.refutes(conjunction)

    # -- Batch history queries ------------------------------------------------
    def _screen_many(
        self, conjunctions: Sequence[Conjunction], against: str
    ) -> list[bool]:
        """Shared refutes_many/supports_many body; ``against`` picks the
        outcome bitset the compiled batch is intersected with."""
        store = self._store()
        reference = (
            self.history.refutes if against == "succeed" else self.history.supports
        )
        if store.degraded:
            self.fallbacks += len(conjunctions)
            return [reference(c) for c in conjunctions]
        within = store.succeed_mask if against == "succeed" else store.fail_mask
        results: list[bool] = []
        for conjunction in conjunctions:
            compiled = self._compiled_for(conjunction)
            if compiled is None:
                # Per-item degradation: the rest of the batch stays on
                # the compiled path (reference answers are identical).
                self.fallbacks += 1
                results.append(reference(conjunction))
            else:
                results.append(
                    self._rows_matching(store, compiled, within) != 0
                )
        return results

    def refutes_many(self, conjunctions: Sequence[Conjunction]) -> list[bool]:
        """``[refutes(c) for c in conjunctions]`` in one store pass.

        Conjunctions sharing literals share one match-table entry; the
        per-conjunction work is then a couple of ANDs.  Order and
        per-item fallback semantics (including exceptions the reference
        path would raise) match the scalar calls exactly.
        """
        return self._screen_many(list(conjunctions), "succeed")

    def supports_many(self, conjunctions: Sequence[Conjunction]) -> list[bool]:
        """``[supports(c) for c in conjunctions]`` in one store pass."""
        return self._screen_many(list(conjunctions), "fail")

    def any_satisfied_by(
        self, conjunctions: Sequence[Conjunction], instance: Instance
    ) -> bool:
        """``any(c.satisfied_by(instance) for c in conjunctions)``.

        The transpose of :meth:`ColumnarStore.rows_matching_many`: one
        strictly-encoded instance is tested against many memoized
        compiled conjunctions, each test a handful of mask bit probes.
        The strict encode matters: a compiled conjunction drops
        full-domain entries as "no constraint", which is only faithful
        when every instance value is in-domain -- anything else (and any
        uncompilable conjunction) falls back to the reference
        ``satisfied_by`` per item.  Evaluation order and short-circuit
        behavior (including any exception the reference path would
        raise) match the scalar ``any`` exactly.
        """
        codes = self._codec.encode(instance)
        for conjunction in conjunctions:
            if codes is None:
                self.fallbacks += 1
                if conjunction.satisfied_by(instance):
                    return True
                continue
            compiled = self._compiled_for(conjunction)
            if compiled is None:
                self.fallbacks += 1
                if conjunction.satisfied_by(instance):
                    return True
                continue
            satisfied = True
            for index, allowed in compiled:
                if not (allowed >> codes[index]) & 1:
                    satisfied = False
                    break
            if satisfied:
                return True
        return False

    # -- Canonical forms and subsumption -------------------------------------
    def canonical_masks(self, conjunction: Conjunction) -> dict[int, int]:
        """Per-parameter-index allowed-code masks; the compiled analogue
        of :meth:`Conjunction.canonical` (full-domain entries dropped),
        with the same error behavior for unknown parameters and
        kind-incompatible comparators.
        """
        cached = self._canonical.get(conjunction)
        if cached is not None:
            return cached
        codec = self._codec
        masks: dict[int, int] = {}
        for predicate in conjunction.predicates:
            index = codec.index_of_name.get(predicate.parameter)
            if index is None:
                raise ValueError(
                    f"predicate on unknown parameter {predicate.parameter!r}"
                )
            parameter = codec.parameters[index]
            if predicate.comparator.is_ordinal_only and not parameter.is_ordinal:
                raise ValueError(
                    f"comparator {predicate.comparator.value!r} requires ordinal "
                    f"parameter, but {predicate.parameter!r} is categorical"
                )
            mask = predicate.satisfying_code_mask(parameter)
            previous = masks.get(index)
            masks[index] = mask if previous is None else previous & mask
        result = {
            index: mask
            for index, mask in masks.items()
            if mask != codec.full_masks[index]
        }
        self._canonical[conjunction] = result
        return result

    def _canonical_or_none(self, conjunction: Conjunction):
        """Canonical masks, or None when only the reference path can
        answer (ValueError -- the reference's own error -- propagates)."""
        try:
            return self.canonical_masks(conjunction)
        except ValueError:
            raise
        except Exception:
            return None

    def _masks_subsume(self, mine: dict[int, int], theirs: dict[int, int]) -> bool:
        """Subsumption on canonical masks (the compiled Definition)."""
        if any(mask == 0 for mask in theirs.values()):
            return True
        full = self._codec.full_masks
        for index, my_mask in mine.items():
            their_mask = theirs.get(index, full[index])
            if their_mask & ~my_mask:
                return False
        return True

    def subsumes(self, general: Conjunction, specific: Conjunction) -> bool:
        """Identical to :meth:`Conjunction.subsumes` over this space."""
        mine = self._canonical_or_none(general)
        theirs = self._canonical_or_none(specific)
        if mine is None or theirs is None:
            self.fallbacks += 1
            return general.subsumes(specific, self.space)
        return self._masks_subsume(mine, theirs)

    def subsumes_matrix(
        self,
        generals: Sequence[Conjunction],
        specifics: Sequence[Conjunction],
    ) -> list[list[bool]]:
        """``matrix[i][j] = subsumes(generals[i], specifics[j])``.

        Canonical masks are computed once per distinct conjunction for
        the whole matrix (they are memoized on the engine anyway, so
        repeated matrices across rounds reuse them); each cell is then
        a handful of mask comparisons.  Per-cell fallback semantics
        match the scalar call.
        """
        general_masks = [self._canonical_or_none(g) for g in generals]
        specific_masks = [self._canonical_or_none(s) for s in specifics]
        general_ids = [self._conjunction_id(g) for g in generals]
        specific_ids = [self._conjunction_id(s) for s in specifics]
        cache = self._subsume_cache
        matrix: list[list[bool]] = []
        for general, mine, gid in zip(generals, general_masks, general_ids):
            row: list[bool] = []
            for specific, theirs, sid in zip(
                specifics, specific_masks, specific_ids
            ):
                key = (gid, sid)
                verdict = cache.get(key)
                if verdict is None:
                    if mine is None or theirs is None:
                        self.fallbacks += 1
                        verdict = general.subsumes(specific, self.space)
                    else:
                        verdict = self._masks_subsume(mine, theirs)
                    cache[key] = verdict
                row.append(verdict)
            matrix.append(row)
        return matrix

    def _conjunction_id(self, conjunction: Conjunction) -> int:
        """Small interned id for a conjunction (by value equality)."""
        ids = self._conjunction_ids
        interned = ids.get(conjunction)
        if interned is None:
            interned = len(ids)
            ids[conjunction] = interned
        return interned

    def subsumed_by_any(
        self,
        generals: Sequence[Conjunction],
        candidates: Sequence[Conjunction],
    ) -> list[bool]:
        """``[any(subsumes(g, c) for g in generals) for c in candidates]``.

        The DDT round filter: canonical masks are resolved once per
        distinct conjunction for the whole grid, and each candidate's
        scan short-circuits on the first subsuming general, exactly like
        the scalar ``any``.
        """
        unresolved = _UNCOMPILABLE  # reuse the module sentinel
        general_ids = tuple(self._conjunction_id(g) for g in generals)
        general_masks: list = [unresolved] * len(generals)
        cache = self._subsume_cache
        progress = self._unsubsumed_prefix
        results: list[bool] = []
        for candidate in candidates:
            cid = self._conjunction_id(candidate)
            start = 0
            prior = progress.get(cid)
            if prior is not None and general_ids[: len(prior)] == prior:
                # Every general in the prior prefix is already known not
                # to subsume this candidate; resume after it.
                start = len(prior)
            theirs = unresolved
            covered = False
            position = len(generals)
            for position in range(start, len(generals)):
                key = (general_ids[position], cid)
                covered = cache.get(key)
                if covered is None:
                    if theirs is unresolved:
                        theirs = self._canonical_or_none(candidate)
                    mine = general_masks[position]
                    if mine is unresolved:
                        mine = general_masks[position] = self._canonical_or_none(
                            generals[position]
                        )
                    if mine is None or theirs is None:
                        self.fallbacks += 1
                        covered = generals[position].subsumes(
                            candidate, self.space
                        )
                    else:
                        covered = self._masks_subsume(mine, theirs)
                    cache[key] = covered
                if covered:
                    break
            if covered:
                # The prefix before the subsuming general stays valid.
                progress[cid] = general_ids[:position]
                results.append(True)
            else:
                progress[cid] = general_ids
                results.append(False)
        return results

    def satisfying_value_lists(
        self, conjunction: Conjunction
    ) -> tuple[bool, list[tuple[str, list]] | None] | None:
        """Compiled analogue of the suspect-sampling canonical scan.

        Returns ``(satisfiable, per_parameter)`` where ``per_parameter``
        lists every space parameter with its repr-sorted satisfying
        values -- exactly what the DDT variation sampler derives from
        :meth:`Conjunction.canonical` -- or ``(False, None)`` for an
        unsatisfiable conjunction.  Returns None (caller must use the
        reference scan) when a constrained parameter's domain has
        duplicate value reprs, because then the reference's
        ``sorted(frozenset, key=repr)`` tie order cannot be reproduced
        from codes.  ValueError propagates exactly like the reference.
        """
        masks = self._canonical_or_none(conjunction)
        if masks is None:
            self.fallbacks += 1
            return None
        codec = self._codec
        per_parameter: list[tuple[str, list]] = []
        for index, name in enumerate(codec.names):
            parameter = codec.parameters[index]
            mask = masks.get(index)
            if mask is None:
                per_parameter.append((name, list(parameter.domain)))
                continue
            if mask == 0:
                return (False, None)
            if not codec.unique_reprs[index]:
                self.fallbacks += 1
                return None
            per_parameter.append(
                (
                    name,
                    [
                        parameter.domain[code]
                        for code in codec.repr_orders[index]
                        if mask >> code & 1
                    ],
                )
            )
        return (True, per_parameter)

    # -- History scans (Shortcut / Stacked Shortcut support) ------------------
    def _scannable_codes(self, failing: Instance):
        """(store, lenient codes) when the bitset path can serve a scan
        anchored on ``failing``; (store, None) demands reference fallback.
        """
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return store, None
        codes = store.codec.encode_lenient(failing)
        if codes is None:
            self.fallbacks += 1
        return store, codes

    def disjoint_successes(self, failing: Instance) -> list[Instance]:
        """Identical to :meth:`ExecutionHistory.disjoint_successes`.

        One OR per parameter builds the rows-sharing-a-value mask; the
        disjoint successes are its complement within the success bitset.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.disjoint_successes(failing)
        return store.materialize(store.succeed_mask & ~store.share_mask(codes))

    def most_different_success(self, failing: Instance) -> Instance | None:
        """Identical to :meth:`ExecutionHistory.most_different_success`:
        the earliest success at maximal Hamming distance from ``failing``.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.most_different_success(failing)
        row = store.min_shared_row(codes, store.succeed_mask)
        return None if row is None else store.rows[row]

    def mutually_disjoint_successes(
        self, failing: Instance, limit: int | None = None
    ) -> list[Instance]:
        """Identical to :meth:`ExecutionHistory.mutually_disjoint_successes`
        (greedy first-fit in log order), with each accepted instance
        eliminating everything it shares a value with in one mask AND.
        """
        store, codes = self._scannable_codes(failing)
        if codes is None:
            return self.history.mutually_disjoint_successes(failing, limit)
        candidates = store.succeed_mask & ~store.share_mask(codes)
        selected: list[Instance] = []
        while candidates:
            row = (candidates & -candidates).bit_length() - 1
            selected.append(store.rows[row])
            if limit is not None and len(selected) >= limit:
                break
            # A row shares every value with itself, so this also clears it.
            candidates &= ~store.share_mask(store.row_codes[row])
        return selected

    def success_superset_of(self, assignment: Mapping[str, object]) -> bool:
        """Identical to :meth:`ExecutionHistory.success_superset_of`:
        True when some success contains the (partial) assignment.

        This is the Shortcut sanity check (Theorem 4's truncation
        test), compiled to one AND per asserted parameter-value pair.
        """
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return self.history.success_superset_of(assignment)
        codec = store.codec
        use_cache = self._use_match_cache
        rows = store.succeed_mask
        for name, value in assignment.items():
            index = codec.index_of_name.get(name)
            if index is None:
                # A name outside the space: the reference loop may raise
                # KeyError (order-dependent); replay it exactly.
                self.fallbacks += 1
                return self.history.success_superset_of(assignment)
            code = codec.parameters[index].code_of(value)
            if code is None:
                return False  # out-of-domain value matches no store row
            if use_cache:
                # Ride the batch layer's shared match tables: the same
                # (parameter, value) literal queried by any compiled
                # conjunction reuses this row bitset and vice versa.
                rows &= store.match_rows(index, 1 << code)
            else:
                rows &= store.value_rows[index][code]
            if not rows:
                return False
        return rows != 0

    # -- Tree induction ------------------------------------------------------
    def tree(self, max_depth: int | None = None) -> DebuggingTree | None:
        """The debugging tree over the current history, incrementally
        maintained; None when the store is degraded (caller should fall
        back to :class:`~repro.core.tree.DebuggingTree`).
        """
        store = self._store()
        if store.degraded:
            self.fallbacks += 1
            return None
        root = store.builder(max_depth).tree()
        return DebuggingTree.from_root(self.space, root, store.n_rows)
