"""The Stacked Shortcut algorithm (Algorithm 2, Section 4.1).

Runs Shortcut for one failing instance ``CPf`` against multiple
successful instances that are disjoint from ``CPf`` and, when possible,
mutually disjoint; the asserted root cause is the *union* of the
parameter-value pairs asserted by the individual runs.  Theorem 5: with
``k`` mutually disjoint successes and at most ``k`` distinct minimal
definitive root causes, the stacked assertion is never truncated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import StrategyContext
from .predicates import Conjunction, conjunction_from_assignment
from .session import DebugSession
from .shortcut import ShortcutResult, shortcut
from .types import Instance

__all__ = ["StackedShortcutResult", "stacked_shortcut"]

DEFAULT_STACK_WIDTH = 4
"""Number of good instances stacked by default (the paper's experiments
use "Stacked Shortcut with four shortcuts", Section 5.1)."""


@dataclass(frozen=True)
class StackedShortcutResult:
    """Outcome of a Stacked Shortcut run.

    Attributes:
        cause: the unioned conjunction ``D`` (all-equalities over a
            subset of ``CPf``'s assignment); empty when every inner run
            was rejected or nothing survived.
        runs: per-good-instance inner results, in execution order.
        failing: the ``CPf`` the stack was anchored on.
        good_instances: the ``CPg`` set actually used.
        instances_executed: total new executions across inner runs.
    """

    cause: Conjunction
    runs: tuple[ShortcutResult, ...] = ()
    failing: Instance | None = None
    good_instances: tuple[Instance, ...] = ()
    instances_executed: int = 0

    @property
    def asserted(self) -> bool:
        return len(self.cause) > 0


def stacked_shortcut(
    session: DebugSession,
    failing: Instance | None = None,
    stack_width: int = DEFAULT_STACK_WIDTH,
    sanity_check: bool = True,
    context: StrategyContext | None = None,
) -> StackedShortcutResult:
    """Run Algorithm 2.

    Args:
        session: execution context.  The history must contain at least
            one failure (or ``failing`` must be given) and at least one
            success.
        failing: the anchor ``CPf``; defaults to the first failing
            instance in the history.
        stack_width: ``k``, the number of good instances to stack.  The
            history is asked for ``k`` mutually disjoint successes; when
            fewer exist, maximally-different successes fill the gap
            (each additional run can only grow the cause, shrinking the
            chance of truncation -- Section 4.1).
        sanity_check: forwarded to each inner Shortcut run.
        context: the engine-selection/budget seam, shared with the inner
            Shortcut runs; a default columnar
            :class:`~repro.core.context.StrategyContext` over ``session``
            is built when omitted.  Results are engine-independent.

    Returns:
        The union-of-assertions result.  Inner runs rejected by the
        sanity check contribute nothing to the union (their assertion
        was provably a strict subset of a real cause located outside
        ``CPf``; Algorithm 1 returns the empty set in that case).

    Raises:
        ValueError: when no failing or no successful instance exists.
    """
    if stack_width < 1:
        raise ValueError("stack_width must be at least 1")
    if context is None:
        context = StrategyContext.for_session(session)
    history = session.history
    if failing is None:
        if not history.failures:
            raise ValueError("history contains no failing instance to anchor on")
        failing = history.failures[0]
    goods = context.mutually_disjoint_successes(failing, limit=stack_width)
    if not goods:
        # Heuristic regime (Section 4.1): no fully disjoint success
        # exists, so stack degenerates to one Shortcut run against the
        # most-different successful instance.
        fallback = context.most_different_success(failing)
        if fallback is None:
            raise ValueError("history contains no successful instance to compare with")
        goods = [fallback]

    executed_before = context.new_executions
    runs: list[ShortcutResult] = []
    union: dict[str, object] = {}
    for good in goods:
        result = shortcut(
            session, failing, good, sanity_check=sanity_check, context=context
        )
        runs.append(result)
        if result.asserted:
            union.update(result.surviving_assignment)

    cause = conjunction_from_assignment(union) if union else Conjunction()
    return StackedShortcutResult(
        cause=cause,
        runs=tuple(runs),
        failing=failing,
        good_instances=tuple(goods),
        instances_executed=context.new_executions - executed_before,
    )
