"""StrategyContext: the one seam between search strategies and the engine.

BugDoc runs three cooperating strategies -- Shortcut, Stacked Shortcut,
and Debugging Decision Trees -- and each needs the same three services:

* **engine selection**: whether history queries (refutes/supports,
  subsumption, disjointness scans, tree induction) run on the columnar
  bitset engine of :mod:`repro.core.engine` or on the dict-based
  reference implementations;
* **budget charging**: every new execution goes through the session's
  ``evaluate``/``evaluate_many`` so the paper's cost accounting stays
  the single source of truth;
* **history access**: the scans that pick good instances
  (``disjoint_successes``, Hamming-distance ranking, mutual
  disjointness) and the sanity checks over successes.

Before this module each strategy resolved those ad hoc -- DDT built its
own :class:`~repro.core.engine.ColumnarEngine` while Shortcut and
Stacked scanned instance dicts directly, so mixed-strategy runs paid
the quadratic scan cost the engine was built to remove.  A
:class:`StrategyContext` wraps one :class:`~repro.core.session.DebugSession`
plus one engine choice and serves all strategies; every accelerated
query degrades transparently to the reference path (byte-identical
results, automatic fallback for uncompilable histories), exactly like
the engine itself.

The batch extension (PR 4): strategies that hold *many* hypotheses --
the DDT confirmation loop screening every pending suspect, suspect
minimization testing all single-predicate drops, Quine-McCluskey cover
checks -- call the ``*_many`` methods here, which route to the engine's
one-pass batch evaluation (shared per-literal match tables) on the
columnar engine and degrade to exact one-at-a-time loops otherwise.
``StrategyContext(batch=False)`` reproduces the pre-batch scalar code
paths bit for bit, which the batch benchmark uses as its baseline.
"""

from __future__ import annotations

import contextlib
import time
from collections.abc import Mapping, Sequence

from .engine import ColumnarEngine
from .predicates import Conjunction
from .rootcause import prune_to_minimal
from .types import Instance, Outcome, Value

__all__ = ["StrategyContext", "validate_engine"]

ENGINES = ("columnar", "reference")


def validate_engine(engine: str) -> str:
    """Validate an engine name, returning it (shared error message)."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}: expected 'columnar' or 'reference'"
        )
    return engine


class StrategyContext:
    """Execution context + engine selection shared by all strategies.

    Args:
        session: the :class:`~repro.core.session.DebugSession` owning
            history, budget, and executor.
        engine: ``"columnar"`` (default) routes history queries through
            the bitset engine; ``"reference"`` keeps the original dict
            implementations.  Both produce identical results.
        batch: enable the batch evaluation layer (default).  The
            ``*_many`` methods then run whole hypothesis sets in one
            store pass with shared per-literal match tables, and
            satisfying-value lists are memoized per conjunction.
            ``batch=False`` reproduces the pre-batch one-at-a-time code
            paths exactly (same answers, no shared tables) -- the batch
            benchmark's baseline.  Results are identical either way.
    """

    __slots__ = ("session", "engine_name", "batch", "_engine", "_value_lists")

    def __init__(
        self,
        session,
        engine: str = "columnar",
        batch: bool = True,
        shard_plan=None,
    ):
        self.session = session
        self.engine_name = validate_engine(engine)
        self.batch = bool(batch)
        self._engine = (
            ColumnarEngine.for_session(
                session, use_match_cache=self.batch, plan=shard_plan
            )
            if engine == "columnar"
            else None
        )
        self._value_lists: dict | None = {} if self.batch else None

    @classmethod
    def for_session(
        cls,
        session,
        engine: str = "columnar",
        batch: bool = True,
        shard_plan=None,
    ) -> "StrategyContext":
        return cls(session, engine=engine, batch=batch, shard_plan=shard_plan)

    @property
    def columnar(self) -> bool:
        """True when the columnar engine serves (compilable) queries."""
        return self._engine is not None

    @property
    def fallback_count(self) -> int:
        """Reference-path degradations served by the columnar engine so
        far (0 for the reference engine, where everything is reference
        by construction).  Tests assert this stays 0 on clean runs."""
        return 0 if self._engine is None else self._engine.fallbacks

    def engine_stats(self) -> dict[str, int | str] | None:
        """The columnar engine's counter snapshot (fallbacks, compile
        cache hits/misses, match-table reuse/footprint, shard layout,
        parallel-query count, kernel path), or None on the reference
        engine.  This is the per-job view the service reports:
        ``ColumnarEngine.for_session`` builds a fresh engine per
        context, so these counters cover exactly this job's queries.
        """
        return None if self._engine is None else self._engine.stats()

    # -- Session passthrough (the budget-charging seam) -----------------------
    @property
    def space(self):
        return self.session.space

    @property
    def history(self):
        return self.session.history

    @property
    def budget(self):
        return self.session.budget

    @property
    def parallel(self) -> bool:
        return self.session.parallel

    @property
    def candidate_source(self):
        return self.session.candidate_source

    @property
    def new_executions(self) -> int:
        return self.session.new_executions

    def evaluate(self, instance: Instance) -> Outcome:
        return self.session.evaluate(instance)

    def evaluate_many(self, instances: Sequence[Instance]):
        return self.session.evaluate_many(instances)

    def emit(self, kind: str, **payload) -> None:
        """Publish one progress event through the session's neutral hook.

        A no-op without a ``session.progress`` subscriber, so strategies
        emit unconditionally.  The hook's contract (see
        :class:`~repro.core.session.DebugSession`) is that a raising
        subscriber is the subscriber's bug; the session swallows its own
        ``budget_spent`` failures, and we mirror that here.
        """
        progress = getattr(self.session, "progress", None)
        if progress is not None:
            try:
                progress(kind, payload)
            except Exception:
                pass

    @contextlib.contextmanager
    def span(self, name: str):
        """Emit a ``span`` event timing the enclosed block.

        The event's payload is ``{"name": name, "seconds": elapsed}``
        -- the same shape the session uses for ``execution`` spans --
        so the durable log can answer per-job wall-time breakdowns
        (solver vs execution vs persistence) without sampling.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit("span", name=name, seconds=time.perf_counter() - started)

    # -- Engine-selected history queries --------------------------------------
    def refutes(self, conjunction: Conjunction) -> bool:
        if self._engine is not None:
            return self._engine.refutes(conjunction)
        return self.session.history.refutes(conjunction)

    def supports(self, conjunction: Conjunction) -> bool:
        if self._engine is not None:
            return self._engine.supports(conjunction)
        return self.session.history.supports(conjunction)

    def is_hypothetical_root_cause(self, conjunction: Conjunction) -> bool:
        return self.supports(conjunction) and not self.refutes(conjunction)

    def subsumes(self, general: Conjunction, specific: Conjunction) -> bool:
        if self._engine is not None:
            return self._engine.subsumes(general, specific)
        return general.subsumes(specific, self.session.space)

    def tree(self, max_depth: int | None = None):
        """The engine-maintained debugging tree, or None when the caller
        must build a reference :class:`~repro.core.tree.DebuggingTree`
        (reference engine, or degraded columnar store)."""
        if self._engine is not None:
            return self._engine.tree(max_depth=max_depth)
        return None

    # -- Batch history queries -------------------------------------------------
    def refutes_many(self, conjunctions: Sequence[Conjunction]) -> list[bool]:
        """``[refutes(c) for c in conjunctions]``; one store pass when
        the batch layer is on, exact scalar loop otherwise."""
        conjunctions = list(conjunctions)
        if self._engine is not None and self.batch:
            return self._engine.refutes_many(conjunctions)
        return [self.refutes(c) for c in conjunctions]

    def supports_many(self, conjunctions: Sequence[Conjunction]) -> list[bool]:
        """``[supports(c) for c in conjunctions]``, batched when on."""
        conjunctions = list(conjunctions)
        if self._engine is not None and self.batch:
            return self._engine.supports_many(conjunctions)
        return [self.supports(c) for c in conjunctions]

    def subsumes_matrix(
        self,
        generals: Sequence[Conjunction],
        specifics: Sequence[Conjunction],
    ) -> list[list[bool]]:
        """``matrix[i][j] = subsumes(generals[i], specifics[j])``."""
        generals, specifics = list(generals), list(specifics)
        if self._engine is not None and self.batch:
            return self._engine.subsumes_matrix(generals, specifics)
        return [[self.subsumes(g, s) for s in specifics] for g in generals]

    def filter_unsubsumed(
        self,
        generals: Sequence[Conjunction],
        candidates: Sequence[Conjunction],
    ) -> list[Conjunction]:
        """The candidates no general conjunction subsumes, in order.

        This is the DDT round filter (skip suspects an already-confirmed
        cause covers); the batch path answers the whole
        ``generals x candidates`` grid from per-conjunction canonical
        masks computed once.
        """
        generals, candidates = list(generals), list(candidates)
        if not generals or not candidates:
            return candidates
        if self._engine is not None and self.batch:
            covered = self._engine.subsumed_by_any(generals, candidates)
            return [
                candidate
                for candidate, is_covered in zip(candidates, covered)
                if not is_covered
            ]
        return [
            candidate
            for candidate in candidates
            if not any(self.subsumes(g, candidate) for g in generals)
        ]

    def any_satisfied(
        self, conjunctions: Sequence[Conjunction], instance: Instance
    ) -> bool:
        """``any(c.satisfied_by(instance) for c in conjunctions)``.

        The transpose of the row-matching batch: one instance screened
        against many conjunctions.  The DDT FindAll convergence probe
        (:func:`~repro.core.ddt._explore_complement`) asks this for
        every sampled candidate against the whole confirmed-cause list;
        the batch path answers from the engine's memoized compiled masks
        (one integer test per constrained parameter) instead of
        re-running every predicate per candidate.  Order of evaluation
        and short-circuit semantics match the scalar expression exactly.
        """
        conjunctions = list(conjunctions)
        if self._engine is not None and self.batch:
            return self._engine.any_satisfied_by(conjunctions, instance)
        return any(c.satisfied_by(instance) for c in conjunctions)

    def prune_to_minimal(
        self, conjunctions: Sequence[Conjunction]
    ) -> list[Conjunction]:
        """:func:`repro.core.rootcause.prune_to_minimal` over this space,
        answered from one batched subsumption matrix when the batch
        layer is on (identical kept-list either way)."""
        if self._engine is not None and self.batch:
            unique = list(dict.fromkeys(conjunctions))
            if len(unique) <= 1:
                return unique
            matrix = self._engine.subsumes_matrix(unique, unique)
            size = len(unique)
            return [
                candidate
                for j, candidate in enumerate(unique)
                if not any(
                    matrix[i][j] and not matrix[j][i]
                    for i in range(size)
                    if i != j
                )
            ]
        return prune_to_minimal(conjunctions, self.session.space)

    def satisfying_value_lists(
        self, conjunction: Conjunction
    ) -> list[tuple[str, list[Value]]] | None:
        """Per-parameter ``(name, repr-sorted satisfying values)`` lists
        for every space parameter, or None when the conjunction is
        unsatisfiable -- exactly the scan the DDT variation sampler
        performs on :meth:`Conjunction.canonical`, memoized per
        conjunction when the batch layer is on (suspects are re-sampled
        many times across minimization rounds).  ValueError propagates
        for predicates the reference scan rejects.
        """
        cache = self._value_lists
        if cache is not None:
            try:
                return cache[conjunction]
            except KeyError:
                pass
        result = self._compute_value_lists(conjunction)
        if cache is not None:
            cache[conjunction] = result
        return result

    def _compute_value_lists(self, conjunction: Conjunction):
        if self._engine is not None and self.batch:
            compiled = self._engine.satisfying_value_lists(conjunction)
            if compiled is not None:
                satisfiable, per_parameter = compiled
                return per_parameter if satisfiable else None
        space = self.session.space
        sets = conjunction.canonical(space)
        per_parameter: list[tuple[str, list[Value]]] = []
        for name in space.names:
            allowed = sets.get(name)
            if allowed is None:
                per_parameter.append((name, list(space.domain(name))))
            else:
                if not allowed:
                    return None
                per_parameter.append((name, sorted(allowed, key=repr)))
        return per_parameter

    # -- Engine-selected history scans ----------------------------------------
    def disjoint_successes(self, failing: Instance) -> list[Instance]:
        if self._engine is not None:
            return self._engine.disjoint_successes(failing)
        return self.session.history.disjoint_successes(failing)

    def most_different_success(self, failing: Instance) -> Instance | None:
        if self._engine is not None:
            return self._engine.most_different_success(failing)
        return self.session.history.most_different_success(failing)

    def mutually_disjoint_successes(
        self, failing: Instance, limit: int | None = None
    ) -> list[Instance]:
        if self._engine is not None:
            return self._engine.mutually_disjoint_successes(failing, limit)
        return self.session.history.mutually_disjoint_successes(failing, limit)

    def success_superset_of(self, assignment: Mapping[str, object]) -> bool:
        if self._engine is not None:
            return self._engine.success_superset_of(assignment)
        return self.session.history.success_superset_of(assignment)
