"""StrategyContext: the one seam between search strategies and the engine.

BugDoc runs three cooperating strategies -- Shortcut, Stacked Shortcut,
and Debugging Decision Trees -- and each needs the same three services:

* **engine selection**: whether history queries (refutes/supports,
  subsumption, disjointness scans, tree induction) run on the columnar
  bitset engine of :mod:`repro.core.engine` or on the dict-based
  reference implementations;
* **budget charging**: every new execution goes through the session's
  ``evaluate``/``evaluate_many`` so the paper's cost accounting stays
  the single source of truth;
* **history access**: the scans that pick good instances
  (``disjoint_successes``, Hamming-distance ranking, mutual
  disjointness) and the sanity checks over successes.

Before this module each strategy resolved those ad hoc -- DDT built its
own :class:`~repro.core.engine.ColumnarEngine` while Shortcut and
Stacked scanned instance dicts directly, so mixed-strategy runs paid
the quadratic scan cost the engine was built to remove.  A
:class:`StrategyContext` wraps one :class:`~repro.core.session.DebugSession`
plus one engine choice and serves all strategies; every accelerated
query degrades transparently to the reference path (byte-identical
results, automatic fallback for uncompilable histories), exactly like
the engine itself.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .engine import ColumnarEngine
from .predicates import Conjunction
from .types import Instance, Outcome

__all__ = ["StrategyContext", "validate_engine"]

ENGINES = ("columnar", "reference")


def validate_engine(engine: str) -> str:
    """Validate an engine name, returning it (shared error message)."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}: expected 'columnar' or 'reference'"
        )
    return engine


class StrategyContext:
    """Execution context + engine selection shared by all strategies.

    Args:
        session: the :class:`~repro.core.session.DebugSession` owning
            history, budget, and executor.
        engine: ``"columnar"`` (default) routes history queries through
            the bitset engine; ``"reference"`` keeps the original dict
            implementations.  Both produce identical results.
    """

    __slots__ = ("session", "engine_name", "_engine")

    def __init__(self, session, engine: str = "columnar"):
        self.session = session
        self.engine_name = validate_engine(engine)
        self._engine = (
            ColumnarEngine.for_session(session) if engine == "columnar" else None
        )

    @classmethod
    def for_session(cls, session, engine: str = "columnar") -> "StrategyContext":
        return cls(session, engine=engine)

    @property
    def columnar(self) -> bool:
        """True when the columnar engine serves (compilable) queries."""
        return self._engine is not None

    # -- Session passthrough (the budget-charging seam) -----------------------
    @property
    def space(self):
        return self.session.space

    @property
    def history(self):
        return self.session.history

    @property
    def budget(self):
        return self.session.budget

    @property
    def parallel(self) -> bool:
        return self.session.parallel

    @property
    def candidate_source(self):
        return self.session.candidate_source

    @property
    def new_executions(self) -> int:
        return self.session.new_executions

    def evaluate(self, instance: Instance) -> Outcome:
        return self.session.evaluate(instance)

    def evaluate_many(self, instances: Sequence[Instance]):
        return self.session.evaluate_many(instances)

    # -- Engine-selected history queries --------------------------------------
    def refutes(self, conjunction: Conjunction) -> bool:
        if self._engine is not None:
            return self._engine.refutes(conjunction)
        return self.session.history.refutes(conjunction)

    def supports(self, conjunction: Conjunction) -> bool:
        if self._engine is not None:
            return self._engine.supports(conjunction)
        return self.session.history.supports(conjunction)

    def is_hypothetical_root_cause(self, conjunction: Conjunction) -> bool:
        return self.supports(conjunction) and not self.refutes(conjunction)

    def subsumes(self, general: Conjunction, specific: Conjunction) -> bool:
        if self._engine is not None:
            return self._engine.subsumes(general, specific)
        return general.subsumes(specific, self.session.space)

    def tree(self, max_depth: int | None = None):
        """The engine-maintained debugging tree, or None when the caller
        must build a reference :class:`~repro.core.tree.DebuggingTree`
        (reference engine, or degraded columnar store)."""
        if self._engine is not None:
            return self._engine.tree(max_depth=max_depth)
        return None

    # -- Engine-selected history scans ----------------------------------------
    def disjoint_successes(self, failing: Instance) -> list[Instance]:
        if self._engine is not None:
            return self._engine.disjoint_successes(failing)
        return self.session.history.disjoint_successes(failing)

    def most_different_success(self, failing: Instance) -> Instance | None:
        if self._engine is not None:
            return self._engine.most_different_success(failing)
        return self.session.history.most_different_success(failing)

    def mutually_disjoint_successes(
        self, failing: Instance, limit: int | None = None
    ) -> list[Instance]:
        if self._engine is not None:
            return self._engine.mutually_disjoint_successes(failing, limit)
        return self.session.history.mutually_disjoint_successes(failing, limit)

    def success_superset_of(self, assignment: Mapping[str, object]) -> bool:
        if self._engine is not None:
            return self._engine.success_superset_of(assignment)
        return self.session.history.success_superset_of(assignment)
