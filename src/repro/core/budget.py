"""Instance-budget accounting.

The paper's cost measure (Section 3) is the number of *new* pipeline
instances executed beyond the given history.  :class:`InstanceBudget`
enforces an optional cap on that count and records how much was spent,
which the evaluation harness uses to grant every baseline the same
budget BugDoc consumed (Section 5, "the same instance budget").
"""

from __future__ import annotations

__all__ = ["BudgetExhausted", "InstanceBudget"]


class BudgetExhausted(RuntimeError):
    """Raised when an algorithm asks to execute beyond its instance budget."""

    def __init__(self, limit: int):
        super().__init__(f"instance budget of {limit} executions exhausted")
        self.limit = limit


class InstanceBudget:
    """Counts executed instances against an optional limit.

    A ``limit`` of None means unlimited (spending is still tracked).
    The budget is deliberately not thread-safe by itself; the parallel
    runner serializes spending through a lock it owns.
    """

    def __init__(self, limit: int | None = None):
        if limit is not None and limit < 0:
            raise ValueError("budget limit must be non-negative")
        self._limit = limit
        self._spent = 0

    @property
    def limit(self) -> int | None:
        return self._limit

    @property
    def spent(self) -> int:
        """Number of new instance executions charged so far."""
        return self._spent

    @property
    def remaining(self) -> int | None:
        """Executions left, or None when unlimited."""
        if self._limit is None:
            return None
        return max(0, self._limit - self._spent)

    def exhausted(self) -> bool:
        """True when no further execution may be charged."""
        return self._limit is not None and self._spent >= self._limit

    def charge(self, count: int = 1) -> None:
        """Charge ``count`` executions.

        Raises:
            BudgetExhausted: when the charge would exceed the limit.  The
                budget is left unchanged in that case.
        """
        if count < 0:
            raise ValueError("cannot charge a negative count")
        if self._limit is not None and self._spent + count > self._limit:
            raise BudgetExhausted(self._limit)
        self._spent += count

    def sub_budget(self, fraction: float) -> "InstanceBudget":
        """A fresh budget holding ``fraction`` of the remaining allowance."""
        if self._limit is None:
            return InstanceBudget(None)
        remaining = self.remaining or 0
        return InstanceBudget(int(remaining * fraction))

    def __repr__(self) -> str:
        cap = "unlimited" if self._limit is None else str(self._limit)
        return f"InstanceBudget(spent={self._spent}, limit={cap})"
