"""Predicates, conjunctions, and disjunctions: the language of root causes.

A root cause (Definition 3) is a Boolean conjunction of
``(parameter, comparator, value)`` triples, e.g. ``A > 5 and B = "x"``.
The Debugging Decision Trees algorithm additionally produces
*disjunctions* of such conjunctions, which are simplified with
Quine-McCluskey (see :mod:`repro.core.quine_mccluskey`).

Semantics are defined over finite parameter domains.  Every conjunction
can be *canonicalized* into a mapping ``parameter -> set of satisfying
domain values``, which makes semantic equality, subsumption, and
satisfying-set counting exact and cheap (the satisfying set of a
conjunction is a Cartesian product of per-parameter value subsets).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from .types import Instance, Parameter, ParameterSpace, Value

__all__ = [
    "Comparator",
    "Predicate",
    "Conjunction",
    "Disjunction",
    "conjunction_from_assignment",
    "canonical_value_sets",
]


class Comparator(enum.Enum):
    """The comparator set ``C = {=, <=, >, !=}`` of Section 5.1."""

    EQ = "="
    NEQ = "!="
    LE = "<="
    GT = ">"

    @property
    def is_ordinal_only(self) -> bool:
        """``<=`` and ``>`` are meaningful only for ordinal parameters."""
        return self in (Comparator.LE, Comparator.GT)

    def evaluate(self, observed: Value, reference: Value) -> bool:
        """Apply the comparator: ``observed <cmp> reference``."""
        if self is Comparator.EQ:
            return observed == reference
        if self is Comparator.NEQ:
            return observed != reference
        if self is Comparator.LE:
            return observed <= reference  # type: ignore[operator]
        return observed > reference  # type: ignore[operator]

    def negate(self) -> "Comparator":
        """The comparator denoting the complement set."""
        if self is Comparator.EQ:
            return Comparator.NEQ
        if self is Comparator.NEQ:
            return Comparator.EQ
        if self is Comparator.LE:
            return Comparator.GT
        return Comparator.LE


@dataclass(frozen=True)
class Predicate:
    """A ``(parameter, comparator, value)`` triple, e.g. ``A > 5``."""

    parameter: str
    comparator: Comparator
    value: Value

    def satisfied_by(self, instance: Mapping[str, Value]) -> bool:
        """True when the instance's value for this parameter matches.

        Raises:
            KeyError: if the instance does not assign this parameter.
        """
        return self.comparator.evaluate(instance[self.parameter], self.value)

    def satisfying_values(self, parameter: Parameter) -> frozenset[Value]:
        """Subset of the parameter's domain that satisfies this predicate."""
        if parameter.name != self.parameter:
            raise ValueError(
                f"predicate on {self.parameter!r} evaluated against parameter "
                f"{parameter.name!r}"
            )
        return frozenset(
            v for v in parameter.domain if self.comparator.evaluate(v, self.value)
        )

    def satisfying_code_mask(self, parameter: Parameter) -> int:
        """The satisfying subset as a bitmask over domain positions.

        Bit ``i`` is set when ``parameter.domain[i]`` satisfies the
        predicate.  This is the compiled form the columnar engine
        (:mod:`repro.core.engine`) evaluates: a predicate becomes one
        int, a conjunction an AND of per-parameter masks.
        """
        if parameter.name != self.parameter:
            raise ValueError(
                f"predicate on {self.parameter!r} evaluated against parameter "
                f"{parameter.name!r}"
            )
        mask = 0
        for code, value in enumerate(parameter.domain):
            if self.comparator.evaluate(value, self.value):
                mask |= 1 << code
        return mask

    def negated(self) -> "Predicate":
        """The predicate denoting the complement of this one."""
        return Predicate(self.parameter, self.comparator.negate(), self.value)

    def __str__(self) -> str:
        return f"{self.parameter} {self.comparator.value} {self.value!r}"


class Conjunction:
    """An AND of predicates: one (hypothetical) root cause.

    Stored as a frozenset of :class:`Predicate`; iteration order for
    display is (parameter, comparator, value) sorted.  An empty
    conjunction is the constant *true* (satisfied by every instance);
    algorithms treat it as "no cause found".
    """

    __slots__ = ("_predicates", "_hash")

    def __init__(self, predicates: Iterable[Predicate] = ()):
        self._predicates: frozenset[Predicate] = frozenset(predicates)
        self._hash: int | None = None

    # -- Container protocol -----------------------------------------------
    def __iter__(self) -> Iterator[Predicate]:
        return iter(
            sorted(
                self._predicates,
                key=lambda p: (p.parameter, p.comparator.value, repr(p.value)),
            )
        )

    def __len__(self) -> int:
        return len(self._predicates)

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._predicates

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._predicates)
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Conjunction):
            return self._predicates == other._predicates
        return NotImplemented

    def __repr__(self) -> str:
        return f"Conjunction({str(self)})"

    def __str__(self) -> str:
        if not self._predicates:
            return "TRUE"
        return " and ".join(str(p) for p in self)

    # -- Semantics ----------------------------------------------------------
    @property
    def predicates(self) -> frozenset[Predicate]:
        return self._predicates

    @property
    def parameters(self) -> frozenset[str]:
        """The set of parameter names this conjunction constrains."""
        return frozenset(p.parameter for p in self._predicates)

    def satisfied_by(self, instance: Mapping[str, Value]) -> bool:
        """True when the instance satisfies every predicate."""
        return all(p.satisfied_by(instance) for p in self._predicates)

    def is_trivial(self) -> bool:
        """True for the empty (constant-true) conjunction."""
        return not self._predicates

    def with_predicate(self, predicate: Predicate) -> "Conjunction":
        """This conjunction extended with one more predicate."""
        return Conjunction(self._predicates | {predicate})

    def union(self, other: "Conjunction") -> "Conjunction":
        """Predicate-set union (logical AND of the two conjunctions)."""
        return Conjunction(self._predicates | other.predicates)

    def restricted_to(self, parameters: Iterable[str]) -> "Conjunction":
        """Keep only the predicates on the given parameters."""
        wanted = set(parameters)
        return Conjunction(p for p in self._predicates if p.parameter in wanted)

    def canonical(self, space: ParameterSpace) -> dict[str, frozenset[Value]]:
        """Per-parameter satisfying value sets over a finite space.

        The result maps each *constrained* parameter to the subset of its
        domain that satisfies all predicates on it; parameters whose
        subset equals the full domain are dropped (they impose no
        constraint).  Two conjunctions are semantically equal over
        ``space`` iff their canonical forms are equal.
        """
        return canonical_value_sets(self._predicates, space)

    def is_satisfiable(self, space: ParameterSpace) -> bool:
        """True when at least one instance of the space satisfies it."""
        sets = self.canonical(space)
        # canonical() drops unconstrained parameters, so emptiness of any
        # retained set is the only way to be unsatisfiable -- unless a
        # predicate references a parameter absent from the space.
        for predicate in self._predicates:
            if predicate.parameter not in space:
                raise ValueError(
                    f"predicate on unknown parameter {predicate.parameter!r}"
                )
        return all(values for values in sets.values())

    def satisfying_count(self, space: ParameterSpace) -> int:
        """Number of instances in the full space that satisfy it."""
        count = 1
        sets = self.canonical(space)
        for name in space.names:
            domain = space.domain(name)
            count *= len(sets.get(name, frozenset(domain)))
        return count

    def semantically_equals(self, other: "Conjunction", space: ParameterSpace) -> bool:
        """Exact semantic equality over the finite space."""
        return self.canonical(space) == other.canonical(space)

    def subsumes(self, other: "Conjunction", space: ParameterSpace) -> bool:
        """True when ``other``'s satisfying set is contained in this one's.

        A *weaker* (more general) cause subsumes a stricter one; a
        conjunction subsumes itself.  An unsatisfiable ``other`` (empty
        satisfying set) is vacuously subsumed by anything.
        """
        mine = self.canonical(space)
        theirs = other.canonical(space)
        if any(not values for values in theirs.values()):
            return True
        for name, my_values in mine.items():
            their_values = theirs.get(name, frozenset(space.domain(name)))
            if not their_values <= my_values:
                return False
        return True

    def sample_satisfying(self, space: ParameterSpace, rng) -> Instance | None:
        """Sample one instance satisfying the conjunction, or None.

        Unconstrained parameters are drawn uniformly from their domain.
        """
        sets = self.canonical(space)
        assignment: dict[str, Value] = {}
        for name in space.names:
            candidates = sets.get(name)
            if candidates is None:
                assignment[name] = rng.choice(space.domain(name))
            elif candidates:
                assignment[name] = rng.choice(sorted(candidates, key=repr))
            else:
                return None
        return Instance(assignment)


class Disjunction:
    """An OR of conjunctions: the full output language of BugDoc.

    Represents a *set* of asserted root causes; an instance satisfies a
    disjunction when it satisfies at least one member conjunction.  The
    empty disjunction is the constant *false*.
    """

    __slots__ = ("_conjunctions",)

    def __init__(self, conjunctions: Iterable[Conjunction] = ()):
        self._conjunctions: tuple[Conjunction, ...] = tuple(
            dict.fromkeys(conjunctions)
        )

    def __iter__(self) -> Iterator[Conjunction]:
        return iter(self._conjunctions)

    def __len__(self) -> int:
        return len(self._conjunctions)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Disjunction):
            return set(self._conjunctions) == set(other._conjunctions)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._conjunctions))

    def __repr__(self) -> str:
        return f"Disjunction({str(self)})"

    def __str__(self) -> str:
        if not self._conjunctions:
            return "FALSE"
        return " or ".join(f"({c})" for c in self._conjunctions)

    @property
    def conjunctions(self) -> tuple[Conjunction, ...]:
        return self._conjunctions

    def satisfied_by(self, instance: Mapping[str, Value]) -> bool:
        return any(c.satisfied_by(instance) for c in self._conjunctions)

    def semantically_equals(self, other: "Disjunction", space: ParameterSpace) -> bool:
        """Exact semantic equality over the finite space.

        Compares the full satisfying sets by enumerating only when the
        cheap pairwise-subsumption check is inconclusive; for the space
        sizes used in debugging (products of per-parameter subsets) the
        enumeration-free check below is exact because both sides are
        unions of boxes over the same grid -- we fall back to instance
        enumeration only for small spaces.
        """
        if set(self._conjunctions) == set(other.conjunctions):
            return True
        limit = 200_000
        if space.size() <= limit:
            return all(
                self.satisfied_by(inst) == other.satisfied_by(inst)
                for inst in space.instances()
            )
        # Conservative: mutual subsumption of every member.
        return self._covered_by(other, space) and other._covered_by(self, space)

    def _covered_by(self, other: "Disjunction", space: ParameterSpace) -> bool:
        """True if every member conjunction is subsumed by some member of other."""
        return all(
            any(theirs.subsumes(mine, space) for theirs in other.conjunctions)
            for mine in self._conjunctions
        )


def conjunction_from_assignment(
    assignment: Mapping[str, Value], parameters: Iterable[str] | None = None
) -> Conjunction:
    """Build an all-equalities conjunction from a (partial) assignment.

    This is how the Shortcut algorithm's asserted cause ``D`` (a subset
    of a failing instance's parameter-value pairs) becomes a root cause.

    Args:
        assignment: parameter -> value mapping.
        parameters: optional subset of parameters to keep.
    """
    names = set(parameters) if parameters is not None else set(assignment)
    return Conjunction(
        Predicate(name, Comparator.EQ, value)
        for name, value in assignment.items()
        if name in names
    )


def canonical_value_sets(
    predicates: Iterable[Predicate], space: ParameterSpace
) -> dict[str, frozenset[Value]]:
    """Canonicalize predicates into per-parameter satisfying value sets.

    Parameters left completely unconstrained (subset == full domain) are
    omitted from the result, so the canonical form of logically
    equivalent conjunctions is identical.
    """
    by_parameter: dict[str, frozenset[Value]] = {}
    for predicate in predicates:
        name = predicate.parameter
        if name not in space:
            raise ValueError(f"predicate on unknown parameter {name!r}")
        parameter = space[name]
        if predicate.comparator.is_ordinal_only and not parameter.is_ordinal:
            raise ValueError(
                f"comparator {predicate.comparator.value!r} requires ordinal "
                f"parameter, but {name!r} is categorical"
            )
        satisfied = predicate.satisfying_values(parameter)
        if name in by_parameter:
            by_parameter[name] &= satisfied
        else:
            by_parameter[name] = satisfied
    return {
        name: values
        for name, values in by_parameter.items()
        if values != frozenset(space.domain(name))
    }
