"""The paper's primary contribution: BugDoc's debugging algorithms.

Public surface:

* Model types: :class:`Parameter`, :class:`ParameterSpace`,
  :class:`Instance`, :class:`Outcome`, :class:`Evaluation`.
* Root-cause language: :class:`Comparator`, :class:`Predicate`,
  :class:`Conjunction`, :class:`Disjunction`.
* Execution context: :class:`ExecutionHistory`, :class:`DebugSession`,
  :class:`InstanceBudget`.
* Algorithms: :func:`shortcut`, :func:`stacked_shortcut`,
  :func:`debugging_decision_trees`, and the :class:`BugDoc` facade.
"""

from .budget import BudgetExhausted, InstanceBudget
from .bugdoc import Algorithm, BugDoc, BugDocReport
from .context import StrategyContext
from .ddt import DDTConfig, DDTResult, debugging_decision_trees
from .engine import ColumnarEngine, ColumnarStore, SpaceCodec
from .history import ExecutionHistory
from .predicates import (
    Comparator,
    Conjunction,
    Disjunction,
    Predicate,
    conjunction_from_assignment,
)
from .quine_mccluskey import minimize_boolean, simplify_disjunction
from .rootcause import (
    is_definitive_root_cause,
    is_hypothetical_root_cause,
    is_minimal_definitive_root_cause,
    minimal_definitive_causes_of_oracle,
    prune_to_minimal,
)
from .session import DebugSession, ExecutionBackend, InstanceUnavailable
from .shortcut import ShortcutResult, select_good_instance, shortcut
from .stacked import DEFAULT_STACK_WIDTH, StackedShortcutResult, stacked_shortcut
from .tree import DebuggingTree, LeafKind, TreeNode, build_tree
from .types import (
    Evaluation,
    Executor,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
)

__all__ = [
    "Algorithm",
    "BudgetExhausted",
    "BugDoc",
    "BugDocReport",
    "ColumnarEngine",
    "ColumnarStore",
    "Comparator",
    "Conjunction",
    "DDTConfig",
    "DDTResult",
    "DebugSession",
    "DebuggingTree",
    "DEFAULT_STACK_WIDTH",
    "Disjunction",
    "Evaluation",
    "ExecutionBackend",
    "ExecutionHistory",
    "Executor",
    "Instance",
    "InstanceBudget",
    "InstanceUnavailable",
    "LeafKind",
    "Outcome",
    "Parameter",
    "ParameterKind",
    "ParameterSpace",
    "Predicate",
    "ShortcutResult",
    "SpaceCodec",
    "StackedShortcutResult",
    "StrategyContext",
    "TreeNode",
    "build_tree",
    "conjunction_from_assignment",
    "debugging_decision_trees",
    "is_definitive_root_cause",
    "is_hypothetical_root_cause",
    "is_minimal_definitive_root_cause",
    "minimal_definitive_causes_of_oracle",
    "minimize_boolean",
    "prune_to_minimal",
    "select_good_instance",
    "shortcut",
    "simplify_disjunction",
    "stacked_shortcut",
]
