"""The Debugging Decision Trees algorithm (Section 4.2).

The search loop:

1. Build a complete (unpruned) decision tree over all executed
   instances, with outcomes as the target.
2. Every root-to-pure-``fail``-leaf path is a *suspect* conjunction
   (possibly containing inequalities).
3. Each suspect is tested by fixing a satisfying *prototype* value for
   every constrained parameter and sampling new instances from the
   Cartesian product of the remaining parameters' values.  If every
   sampled instance fails, the suspect is asserted as a definitive root
   cause; if any succeeds, the refuting instance joins the history, the
   tree is rebuilt, and the search restarts with fresh suspects.

The final explanation is the disjunction of asserted suspects,
simplified with Quine-McCluskey (:mod:`repro.core.quine_mccluskey`).

Worst-case cost is exponential in the number of parameters, but the
algorithm "does well heuristically even with a small budget" -- budgets
are enforced through the session, and partial results are returned on
exhaustion.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from .budget import BudgetExhausted
from .context import StrategyContext, validate_engine
from .predicates import Conjunction, Disjunction
from .quine_mccluskey import simplify_disjunction
from .session import DebugSession, InstanceUnavailable
from .tree import DebuggingTree
from .types import Instance, Outcome

__all__ = ["DDTConfig", "DDTResult", "debugging_decision_trees"]


@dataclass(frozen=True)
class DDTConfig:
    """Tuning knobs for the Debugging Decision Trees search.

    Attributes:
        tests_per_suspect: how many variations of the non-suspect
            parameters are sampled to try to refute each suspect.  The
            full Cartesian product is used instead whenever it is
            smaller.
        max_rounds: cap on tree rebuilds (each refutation triggers one);
            guarantees termination alongside the instance budget.
        find_all: assert every surviving suspect (FindAll) instead of
            stopping at the first confirmation (FindOne).
        simplify: run Quine-McCluskey simplification on the final
            disjunction (ablatable).
        shortest_first: test short suspects before long ones
            (ablatable; False preserves tree order).
        minimize_confirmed: after confirming a suspect, greedily drop
            predicates while the generalization still survives
            refutation (Definition 5 asks for *minimal* causes; tree
            paths often carry redundant conjuncts).  Ablatable.
        exploration_per_round: in FindAll mode, when a round ends with
            every suspect confirmed (nothing refuted), sample up to this
            many instances *outside* all confirmed causes.  A surprise
            failure there reveals a bug the current evidence cannot see
            and reopens the search; all-success confirms convergence.
            Set to 0 to disable (ablatable).
        seed: RNG seed for prototype and variation sampling.
        max_tree_depth: optional cap forwarded to tree induction.
        engine: evaluation engine for the search's own hot loops.
            ``"columnar"`` (default) runs history queries, subsumption
            checks, and tree induction on the integer-coded bitset
            engine of :mod:`repro.core.engine`; ``"reference"`` keeps
            the original per-instance dict implementations.  Both
            produce identical reports; the columnar engine transparently
            falls back to the reference path for anything it cannot
            compile faithfully.
        batch_suspects: screen suspect sets, minimization candidates,
            and the final confirmed-cause filters through the context's
            batch evaluation layer (one store pass per set, shared
            per-literal match tables) instead of one history query per
            conjunction.  Default on; ``False`` reproduces the
            one-at-a-time code paths exactly.  Reports are identical
            either way (the batch layer is a pure evaluation strategy).
    """

    tests_per_suspect: int = 12
    max_rounds: int = 60
    find_all: bool = True
    simplify: bool = True
    shortest_first: bool = True
    minimize_confirmed: bool = True
    exploration_per_round: int = 8
    seed: int = 0
    max_tree_depth: int | None = None
    engine: str = "columnar"
    batch_suspects: bool = True

    def __post_init__(self) -> None:
        validate_engine(self.engine)


@dataclass
class DDTResult:
    """Outcome of a Debugging Decision Trees run.

    Attributes:
        causes: asserted root-cause conjunctions (post-simplification
            components when ``simplify`` is on).
        explanation: the full disjunction-of-conjunctions explanation.
        rounds: number of tree builds performed.
        instances_executed: new executions charged to the session.
        budget_exhausted: True when the search stopped on budget.
        trees_sizes: size of each built tree (diagnostics).
    """

    causes: list[Conjunction] = field(default_factory=list)
    explanation: Disjunction = field(default_factory=Disjunction)
    rounds: int = 0
    instances_executed: int = 0
    budget_exhausted: bool = False
    tree_sizes: list[int] = field(default_factory=list)

    @property
    def asserted(self) -> bool:
        return bool(self.causes)


def _variation_instances(
    suspect: Conjunction,
    context: StrategyContext,
    count: int,
    rng: random.Random,
) -> list[Instance] | None:
    """Sample instances from the suspect's satisfying set (Step 3).

    Equality-constrained parameters are pinned to their value.  For
    inequality-constrained parameters, values are drawn across the full
    satisfying range -- testing only one prototype value would let an
    over-general inequality (e.g. ``a > 0`` when the true cause is
    ``a > 2``) survive unrefuted.  Unconstrained parameters vary over
    their whole domain ("all other parameters will be varied").

    The full Cartesian product of satisfying sets x free domains is
    enumerated when it fits in ``count``; otherwise sampled without
    replacement (best effort).  Returns None when the suspect is
    unsatisfiable.
    """
    if context.candidate_source is not None:
        # Historical mode: test instances come from unread provenance.
        candidates = context.candidate_source(suspect, count)
        fresh = [c for c in candidates if c not in context.history]
        return fresh if fresh else []
    # The per-parameter satisfying-value scan is served by the context
    # (memoized per suspect on the batch layer; the same lists as the
    # direct ``suspect.canonical(space)`` scan either way).
    per_parameter = context.satisfying_value_lists(suspect)
    if per_parameter is None:
        return None

    product_size = 1
    for __, values in per_parameter:
        product_size *= len(values)
        if product_size > count:
            break

    if product_size <= count:
        names = [name for name, __ in per_parameter]
        return [
            Instance(dict(zip(names, combo)))
            for combo in itertools.product(
                *(values for __, values in per_parameter)
            )
        ]

    seen: set[Instance] = set()
    ordered: list[Instance] = []
    attempts = 0
    while len(ordered) < count and attempts < count * 5:
        attempts += 1
        candidate = Instance(
            {name: rng.choice(values) for name, values in per_parameter}
        )
        if candidate not in seen:
            seen.add(candidate)
            ordered.append(candidate)
    return ordered


def debugging_decision_trees(
    session: DebugSession,
    config: DDTConfig | None = None,
    context: StrategyContext | None = None,
) -> DDTResult:
    """Run the Debugging Decision Trees search loop.

    The session's history must contain at least one failing and one
    succeeding instance for the tree to produce informative suspects;
    with a degenerate history the result is empty (all-fail histories
    yield the trivial always-fail explanation only if the caller opts to
    interpret it, which this function does not assert).

    Args:
        session: execution context (history, budget, executor).
        config: tuning knobs; defaults to :class:`DDTConfig`.
        context: the engine-selection/budget seam.  When omitted, one is
            built over ``session`` with ``config.engine``; an explicitly
            passed context takes precedence over ``config.engine``.

    Returns:
        A :class:`DDTResult`; partial results are returned when the
        instance budget runs out mid-search.
    """
    config = config or DDTConfig()
    rng = random.Random(config.seed)
    result = DDTResult()
    confirmed: list[Conjunction] = []
    refuted: set[Conjunction] = set()
    if context is None:
        context = StrategyContext.for_session(
            session, engine=config.engine, batch=config.batch_suspects
        )
    executed_before = context.new_executions

    try:
        for _round in range(config.max_rounds):
            # The solver span covers the pure-reasoning part of a round
            # (tree induction + suspect derivation + subsumption filter);
            # execution time is accounted by the session's per-execution
            # spans, so the two are separable in the event log.
            with context.span("solver"):
                tree = context.tree(max_depth=config.max_tree_depth)
                if tree is None:  # reference engine, or degraded store
                    samples = [
                        (instance, outcome)
                        for instance in context.history.instances
                        if (outcome := context.history.outcome_of(instance))
                        is not None
                    ]
                    tree = DebuggingTree(
                        context.space, samples, max_depth=config.max_tree_depth
                    )
                result.rounds += 1
                result.tree_sizes.append(tree.size)

                suspects = [
                    s
                    for s in tree.fail_paths()
                    if s not in refuted and not s.is_trivial()
                ]
                if not config.shortest_first:
                    rng.shuffle(suspects)
                # Skip suspects already covered by a confirmed cause --
                # one batched confirmed x suspects subsumption grid per
                # round (screening the suspects against the history
                # itself would be vacuous: a pure-fail tree path cannot
                # be refuted by the evidence it was induced from; the
                # batch screens run where refutation is possible --
                # minimization candidates and the final confirmed-cause
                # filter).
                suspects = context.filter_unsubsumed(confirmed, suspects)
            context.emit(
                "round_started",
                round=result.rounds,
                tree_size=tree.size,
                history=context.history.distinct_count,
                suspects=len(suspects),
                confirmed=len(confirmed),
            )
            if not suspects:
                if config.find_all and _explore_complement(
                    context, confirmed, config, rng
                ):
                    continue  # a surprise failure reopened the search
                break

            any_refuted = False
            for suspect in suspects:
                verdict = _test_suspect(suspect, context, config, rng)
                if verdict is _Verdict.CONFIRMED:
                    if config.minimize_confirmed:
                        suspect = _minimize_suspect(
                            suspect, context, config, rng
                        )
                    confirmed.append(suspect)
                    context.emit("suspect_confirmed", suspect=str(suspect))
                    context.emit(
                        "partial_causes",
                        causes=[str(c) for c in confirmed],
                    )
                    if not config.find_all:
                        raise _StopSearch
                elif verdict is _Verdict.REFUTED:
                    refuted.add(suspect)
                    context.emit("suspect_refuted", suspect=str(suspect))
                    any_refuted = True
                    break  # rebuild the tree with the refuting evidence
                else:  # UNDECIDED (historical mode could not test)
                    refuted.add(suspect)
            if not any_refuted:
                if config.find_all and _explore_complement(
                    context, confirmed, config, rng
                ):
                    continue
                break
    except _StopSearch:
        pass
    except BudgetExhausted:
        result.budget_exhausted = True

    result.instances_executed = context.new_executions - executed_before
    # Evidence gathered for later suspects can retroactively refute an
    # earlier confirmation; the final explanation must be a hypothetical
    # root cause w.r.t. everything executed (Definition 3).  Both passes
    # are batched: one refutation screen, one subsumption matrix.
    screened = context.refutes_many(confirmed)
    confirmed = [
        c for c, already in zip(confirmed, screened) if not already
    ]
    confirmed = context.prune_to_minimal(confirmed)
    if config.simplify and confirmed:
        explanation = simplify_disjunction(Disjunction(confirmed), context.space)
    else:
        explanation = Disjunction(confirmed)
    result.causes = list(explanation)
    result.explanation = explanation
    return result


def _explore_complement(
    context: StrategyContext,
    confirmed: list[Conjunction],
    config: DDTConfig,
    rng: random.Random,
) -> bool:
    """FindAll convergence check: probe outside the confirmed causes.

    Samples instances that satisfy no confirmed cause (rejection
    sampling) and executes them.  Returns True when a new *failure* was
    found -- evidence of an undiscovered cause -- so the caller rebuilds
    the tree; False means the probe saw only successes (or could not
    run), which is the best available evidence of convergence.

    The per-candidate "covered by a confirmed cause?" rejection test is
    served by the context's :meth:`~repro.core.context.StrategyContext.any_satisfied`
    batch seam -- the transpose of ``rows_matching_many``: one encoded
    candidate probed against the whole confirmed list's memoized
    compiled masks.  ``batch=False`` reproduces the original
    per-predicate scan exactly (same answers either way).
    """
    if config.exploration_per_round <= 0:
        return False
    if context.candidate_source is not None:
        # Historical mode: nothing outside the log can be probed.
        return False
    space = context.space
    found_failure = False
    probes = 0
    attempts = 0
    while (
        probes < config.exploration_per_round
        and attempts < config.exploration_per_round * 10
    ):
        attempts += 1
        candidate = space.random_instance(rng)
        if candidate in context.history:
            continue
        if context.any_satisfied(confirmed, candidate):
            continue
        try:
            outcome = context.evaluate(candidate)
        except InstanceUnavailable:
            continue
        probes += 1
        if outcome is Outcome.FAIL:
            found_failure = True
            break
    context.emit(
        "exploration", probes=probes, found_failure=found_failure
    )
    return found_failure


def _minimize_suspect(
    suspect: Conjunction,
    context: StrategyContext,
    config: DDTConfig,
    rng: random.Random,
) -> Conjunction:
    """Greedy Definition-5 minimization of a confirmed suspect.

    Repeatedly drops one predicate if the generalized conjunction also
    survives refutation sampling, until no single drop survives.  All
    single-drop candidates of a pass are screened against the history
    in one batched ``refutes_many`` call (free checks) before any
    executions are spent; because a refutation test can append new
    evidence, the remaining screens are recomputed whenever the history
    grew, so every candidate sees exactly the history state the
    one-at-a-time scan would have consulted.
    """
    current = suspect
    improved = True
    while improved and len(current) > 1:
        improved = False
        if not context.batch:
            # Pre-batch loop, preserved as the benchmark baseline: one
            # lazy history check right before each candidate's test.
            for predicate in current:
                candidate = Conjunction(
                    p for p in current.predicates if p != predicate
                )
                if context.refutes(candidate):
                    continue
                if (
                    _test_suspect(candidate, context, config, rng)
                    is _Verdict.CONFIRMED
                ):
                    current = candidate
                    improved = True
                    break
            continue
        candidates = [
            Conjunction(p for p in current.predicates if p != predicate)
            for predicate in current
        ]
        screened = context.refutes_many(candidates)
        watermark = context.history.distinct_count
        for position, candidate in enumerate(candidates):
            if context.history.distinct_count != watermark:
                # A refutation test recorded new evidence; the pending
                # screens are stale, so re-batch the remainder.
                screened[position:] = context.refutes_many(
                    candidates[position:]
                )
                watermark = context.history.distinct_count
            if screened[position]:
                continue
            if _test_suspect(candidate, context, config, rng) is _Verdict.CONFIRMED:
                current = candidate
                improved = True
                break
    return current


class _StopSearch(Exception):
    """Internal: FindOne confirmed its first cause."""


class _Verdict(enum.Enum):
    CONFIRMED = "confirmed"
    REFUTED = "refuted"
    UNDECIDED = "undecided"


def _test_suspect(
    suspect: Conjunction,
    context: StrategyContext,
    config: DDTConfig,
    rng: random.Random,
) -> "_Verdict":
    """Step 3 of the algorithm: try to refute one suspect.

    Executes sampled variations; CONFIRMED when all fail, REFUTED on the
    first success, UNDECIDED when historical replay could not serve any
    variation.
    """
    variations = _variation_instances(
        suspect, context, config.tests_per_suspect, rng
    )
    if variations is None:
        return _Verdict.REFUTED  # unsatisfiable suspect explains nothing
    if not variations:
        return _Verdict.UNDECIDED

    if context.parallel:
        # Speculative batch execution (Section 4.3): all variations run
        # concurrently even though an early refutation would have let a
        # serial search skip the rest.
        outcomes = context.evaluate_many(variations)
        tested = sum(1 for o in outcomes if o is not None)
        if context.budget.exhausted() and tested == 0:
            raise BudgetExhausted(context.budget.limit or 0)
        if any(o is Outcome.SUCCEED for o in outcomes):
            return _Verdict.REFUTED
        if tested == 0:
            return _Verdict.UNDECIDED
        return _Verdict.CONFIRMED

    tested = 0
    for instance in variations:
        try:
            outcome = context.evaluate(instance)
        except InstanceUnavailable:
            continue
        tested += 1
        if outcome is Outcome.SUCCEED:
            return _Verdict.REFUTED
    if tested == 0:
        return _Verdict.UNDECIDED
    return _Verdict.CONFIRMED
