"""Unpruned decision-tree induction for debugging (Section 4.2).

BugDoc "uses decision trees in an unusual way": the tree is *not* a
predictor -- it is a device for discovering short paths, possibly
characterized by inequalities, that lead to ``fail``.  Accordingly the
tree is built **complete, with no pruning**: recursion stops only when a
node is pure or inseparable.

Inner nodes are ``(parameter, comparator, value)`` triples: for ordinal
parameters candidate splits are ``p <= v`` thresholds, for categorical
parameters ``p = v`` one-vs-rest tests.  A root-to-leaf path therefore
reads directly as a conjunction of predicates (false branches contribute
the negated predicate), which is exactly the paper's hypothesis
language.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from .predicates import Comparator, Conjunction, Predicate
from .types import Instance, Outcome, ParameterSpace

__all__ = ["TreeNode", "LeafKind", "DebuggingTree", "build_tree"]


class LeafKind(enum.Enum):
    """Purity of a leaf: all-fail, all-succeed, or mixed (inseparable)."""

    FAIL = "fail"
    SUCCEED = "succeed"
    MIXED = "mixed"


@dataclass
class TreeNode:
    """One tree node; a leaf when ``predicate`` is None.

    Attributes:
        predicate: the split test; instances satisfying it go to
            ``true_branch``, others to ``false_branch``.
        true_branch / false_branch: children (None for leaves).
        leaf_kind: purity label for leaves, None for inner nodes.
        n_fail / n_succeed: sample counts reaching this node.
        depth: root is depth 0.
    """

    predicate: Predicate | None = None
    true_branch: "TreeNode | None" = None
    false_branch: "TreeNode | None" = None
    leaf_kind: LeafKind | None = None
    n_fail: int = 0
    n_succeed: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.predicate is None

    @property
    def size(self) -> int:
        """Total number of nodes in the subtree rooted here."""
        if self.is_leaf:
            return 1
        assert self.true_branch is not None and self.false_branch is not None
        return 1 + self.true_branch.size + self.false_branch.size


def _gini(n_fail: int, n_succeed: int) -> float:
    total = n_fail + n_succeed
    if total == 0:
        return 0.0
    p = n_fail / total
    return 2.0 * p * (1.0 - p)


def _candidate_splits(
    space: ParameterSpace, samples: Sequence[tuple[Instance, Outcome]]
) -> Iterator[Predicate]:
    """Enumerate candidate split predicates for the given samples.

    Only values actually observed at this node are offered (splitting on
    an unobserved value cannot separate anything).  Thresholds for
    ordinal parameters exclude the maximum observed value (a ``<= max``
    split would send everything one way).
    """
    for name in space.names:
        parameter = space[name]
        observed = {sample[name] for sample, _ in samples}
        if len(observed) < 2:
            continue
        if parameter.is_ordinal:
            ordered = [v for v in parameter.domain if v in observed]
            for value in ordered[:-1]:
                yield Predicate(name, Comparator.LE, value)
        else:
            for value in sorted(observed, key=repr):
                yield Predicate(name, Comparator.EQ, value)


def _split_gain(
    samples: Sequence[tuple[Instance, Outcome]], predicate: Predicate
) -> tuple[float, int, int] | None:
    """Gini impurity decrease for a split, or None if degenerate.

    Returns (gain, n_true, n_false); degenerate splits send every
    sample one way.
    """
    true_fail = true_succeed = false_fail = false_succeed = 0
    for instance, outcome in samples:
        if predicate.satisfied_by(instance):
            if outcome is Outcome.FAIL:
                true_fail += 1
            else:
                true_succeed += 1
        else:
            if outcome is Outcome.FAIL:
                false_fail += 1
            else:
                false_succeed += 1
    n_true = true_fail + true_succeed
    n_false = false_fail + false_succeed
    if n_true == 0 or n_false == 0:
        return None
    total = n_true + n_false
    parent = _gini(true_fail + false_fail, true_succeed + false_succeed)
    child = (n_true / total) * _gini(true_fail, true_succeed) + (
        n_false / total
    ) * _gini(false_fail, false_succeed)
    return parent - child, n_true, n_false


def build_tree(
    space: ParameterSpace,
    samples: Sequence[tuple[Instance, Outcome]],
    max_depth: int | None = None,
) -> TreeNode:
    """Induce a complete (unpruned) debugging decision tree.

    Args:
        space: parameter space defining feature kinds and domains.
        samples: (instance, outcome) pairs; duplicates allowed.
        max_depth: optional safety cap; None reproduces the paper's
            fully-grown tree.

    Returns:
        The root node.  With a deterministic evaluation function and
        deduplicated samples every leaf is pure; MIXED leaves appear only
        when samples are contradictory or the depth cap bites.
    """
    def make_leaf(node_samples: Sequence[tuple[Instance, Outcome]], depth: int) -> TreeNode:
        n_fail = sum(1 for _, o in node_samples if o is Outcome.FAIL)
        n_succeed = len(node_samples) - n_fail
        if n_fail and not n_succeed:
            kind = LeafKind.FAIL
        elif n_succeed and not n_fail:
            kind = LeafKind.SUCCEED
        else:
            kind = LeafKind.MIXED
        return TreeNode(
            leaf_kind=kind, n_fail=n_fail, n_succeed=n_succeed, depth=depth
        )

    def recurse(
        node_samples: Sequence[tuple[Instance, Outcome]], depth: int
    ) -> TreeNode:
        n_fail = sum(1 for _, o in node_samples if o is Outcome.FAIL)
        n_succeed = len(node_samples) - n_fail
        if n_fail == 0 or n_succeed == 0:
            return make_leaf(node_samples, depth)
        if max_depth is not None and depth >= max_depth:
            return make_leaf(node_samples, depth)

        best: tuple[float, Predicate] | None = None
        for predicate in _candidate_splits(space, node_samples):
            scored = _split_gain(node_samples, predicate)
            if scored is None:
                continue
            gain, __, __ = scored
            key = (gain, -_predicate_rank(predicate))
            if best is None or key > (best[0], -_predicate_rank(best[1])):
                best = (gain, predicate)
        if best is None:
            return make_leaf(node_samples, depth)

        predicate = best[1]
        true_samples = [s for s in node_samples if predicate.satisfied_by(s[0])]
        false_samples = [s for s in node_samples if not predicate.satisfied_by(s[0])]
        node = TreeNode(
            predicate=predicate,
            n_fail=n_fail,
            n_succeed=n_succeed,
            depth=depth,
        )
        node.true_branch = recurse(true_samples, depth + 1)
        node.false_branch = recurse(false_samples, depth + 1)
        return node

    if not samples:
        return TreeNode(leaf_kind=LeafKind.MIXED, depth=0)
    return recurse(list(samples), 0)


def _predicate_rank(predicate: Predicate) -> int:
    """Deterministic tie-break order for equal-gain splits.

    Uses a stable digest (not ``hash``, which is randomized per process)
    so tree construction -- and therefore every downstream search -- is
    reproducible across runs.
    """
    key = f"{predicate.parameter}|{predicate.comparator.value}|{predicate.value!r}"
    return zlib.crc32(key.encode("utf-8")) & 0xFFFF


class DebuggingTree:
    """A built tree plus the path extraction the DDT search needs."""

    def __init__(
        self,
        space: ParameterSpace,
        samples: Sequence[tuple[Instance, Outcome]],
        max_depth: int | None = None,
    ):
        self.space = space
        self.root = build_tree(space, samples, max_depth=max_depth)
        self.n_samples = len(samples)

    @classmethod
    def from_root(
        cls, space: ParameterSpace, root: TreeNode, n_samples: int
    ) -> "DebuggingTree":
        """Wrap an externally-built root (columnar engine) in a tree.

        The columnar induction path of :mod:`repro.core.engine` builds
        the same :class:`TreeNode` structure from integer-coded columns;
        this constructor gives it the path-extraction API without
        re-inducing from instance dicts.
        """
        tree = cls.__new__(cls)
        tree.space = space
        tree.root = root
        tree.n_samples = n_samples
        return tree

    def classify(self, instance: Instance) -> LeafKind:
        """Route an instance to its leaf and report the leaf's purity."""
        node = self.root
        while not node.is_leaf:
            assert node.predicate is not None
            if node.predicate.satisfied_by(instance):
                node = node.true_branch  # type: ignore[assignment]
            else:
                node = node.false_branch  # type: ignore[assignment]
            assert node is not None
        assert node.leaf_kind is not None
        return node.leaf_kind

    def paths(self, kind: LeafKind) -> list[Conjunction]:
        """Root-to-leaf conjunctions for all leaves of the given purity.

        False branches contribute the negated split predicate, so each
        returned conjunction is satisfied by exactly the instances that
        reach the leaf.  Paths are returned shortest-first: the DDT
        search tests concise suspects before verbose ones (ablatable
        design choice, see DESIGN.md).
        """
        found: list[Conjunction] = []

        def walk(node: TreeNode, predicates: list[Predicate]) -> None:
            if node.is_leaf:
                if node.leaf_kind is kind:
                    found.append(Conjunction(predicates))
                return
            assert node.predicate is not None
            assert node.true_branch is not None and node.false_branch is not None
            walk(node.true_branch, predicates + [node.predicate])
            walk(node.false_branch, predicates + [node.predicate.negated()])

        walk(self.root, [])
        found.sort(key=lambda c: (len(c), str(c)))
        return found

    def fail_paths(self) -> list[Conjunction]:
        """Suspect conjunctions: paths to pure-``fail`` leaves."""
        return self.paths(LeafKind.FAIL)

    @property
    def size(self) -> int:
        return self.root.size
