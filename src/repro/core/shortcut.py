"""The Shortcut algorithm (Algorithm 1, Section 4.1).

Starting from a failing instance ``CPf`` and a succeeding instance
``CPg`` disjoint from it, Shortcut walks the parameters in order,
tentatively replacing each of ``CPf``'s values with ``CPg``'s and
keeping the replacement whenever the modified instance still fails.
The parameter-value pairs of ``CPf`` that survive constitute the
asserted minimal definitive root cause ``D``; a final sanity check
rejects ``D`` when some already-known *successful* instance is a
superset of it (a truncated assertion, Theorem 4).

The cost is linear in the number of parameters: at most ``|P|`` new
instance executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from .budget import BudgetExhausted
from .context import StrategyContext
from .predicates import Conjunction, conjunction_from_assignment
from .session import DebugSession, InstanceUnavailable
from .types import Instance, Outcome

__all__ = ["ShortcutResult", "shortcut", "select_good_instance"]


@dataclass(frozen=True)
class ShortcutResult:
    """Outcome of one Shortcut run.

    Attributes:
        cause: the asserted root cause ``D`` as an all-equalities
            conjunction; empty when the sanity check rejected the
            assertion (the algorithm found only a proper subset of a
            real cause) or when nothing survived.
        surviving_assignment: the raw parameter-value pairs of ``CPf``
            that remained in the final current instance (before the
            sanity check); useful to Stacked Shortcut, which unions them.
        rejected_by_sanity_check: True when ``D`` was non-empty but some
            known successful instance contained it.
        complete: False when the walk was cut short (budget exhausted or
            historical replay could not serve a needed instance).
        instances_executed: new executions charged by this run.
        final_instance: the last ``CPcurrent``.
    """

    cause: Conjunction
    surviving_assignment: dict[str, object] = field(default_factory=dict)
    rejected_by_sanity_check: bool = False
    complete: bool = True
    instances_executed: int = 0
    final_instance: Instance | None = None

    @property
    def asserted(self) -> bool:
        """True when a non-empty cause was asserted."""
        return len(self.cause) > 0


def select_good_instance(
    session: DebugSession,
    failing: Instance,
    context: StrategyContext | None = None,
) -> Instance | None:
    """Choose ``CPg`` for a Shortcut run against ``failing``.

    Prefers a fully disjoint successful instance (the Disjointness
    Condition, required by Theorems 1-3).  When none exists, falls back
    to the paper's heuristic: the successful instance differing from
    ``CPf`` in as many parameter-values as possible.

    Both scans run on the engine selected by ``context`` (one shared
    :class:`~repro.core.context.StrategyContext` is built on the
    default columnar engine when none is passed).
    """
    if context is None:
        context = StrategyContext.for_session(session)
    disjoint = context.disjoint_successes(failing)
    if disjoint:
        return disjoint[0]
    return context.most_different_success(failing)


def shortcut(
    session: DebugSession,
    failing: Instance,
    good: Instance,
    parameter_order: Sequence[str] | None = None,
    sanity_check: bool = True,
    context: StrategyContext | None = None,
) -> ShortcutResult:
    """Run Algorithm 1.

    Args:
        session: execution context (history, budget, executor).
        failing: ``CPf``, an instance known (or assumed) to fail.
        good: ``CPg``, a successful instance, ideally disjoint from
            ``CPf``.
        parameter_order: the order in which parameters are visited;
            defaults to the session space's declaration order.  The
            asserted cause can depend on this order when multiple causes
            overlap (Example 2), which the ablation benchmarks exercise.
        sanity_check: apply the final rejected-if-superset-succeeded
            test from Algorithm 1 (on by default, ablatable).
        context: the engine-selection/budget seam; a default columnar
            :class:`~repro.core.context.StrategyContext` over ``session``
            is built when omitted.  Results are engine-independent.

    Returns:
        A :class:`ShortcutResult`; ``result.cause`` is empty when the
        sanity check rejected the assertion.
    """
    if context is None:
        context = StrategyContext.for_session(session)
    order = tuple(parameter_order) if parameter_order is not None else session.space.names
    missing = set(order) - set(failing.keys())
    if missing:
        raise ValueError(f"failing instance lacks parameters: {sorted(missing)}")

    executed_before = context.new_executions
    current = failing
    complete = True

    for name in order:
        replacement = good[name]
        if current[name] == replacement:
            continue
        candidate = current.with_value(name, replacement)
        try:
            outcome = context.evaluate(candidate)
        except InstanceUnavailable:
            # Historical mode: no evidence for this hypothesis; keep the
            # current value and note the walk is incomplete.
            complete = False
            continue
        except BudgetExhausted:
            complete = False
            break
        if outcome is Outcome.FAIL:
            current = candidate

    surviving = {
        name: value for name, value in failing.items() if current[name] == value
    }
    cause = conjunction_from_assignment(surviving)
    executed = context.new_executions - executed_before

    if sanity_check and surviving and context.success_superset_of(surviving):
        return ShortcutResult(
            cause=Conjunction(),
            surviving_assignment=surviving,
            rejected_by_sanity_check=True,
            complete=complete,
            instances_executed=executed,
            final_instance=current,
        )

    return ShortcutResult(
        cause=cause,
        surviving_assignment=surviving,
        rejected_by_sanity_check=False,
        complete=complete,
        instances_executed=executed,
        final_instance=current,
    )
