"""Core value types for the BugDoc model.

This module defines the vocabulary of Section 3 of the paper:
parameters and their value universes (Definition 1), pipeline instances
(assignments of one value per parameter), and evaluation outcomes
(Definition 2).  Everything here is immutable and hashable so that
instances can be used as dictionary keys, deduplicated in provenance
stores, and shared between threads without locks.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "ParameterKind",
    "Parameter",
    "ParameterSpace",
    "Instance",
    "Outcome",
    "Evaluation",
    "Executor",
    "EvaluationFunction",
    "Value",
]

# A parameter value.  Ordinal parameters use int/float values, categorical
# parameters typically use strings, but any hashable value is accepted.
Value = object


class ParameterKind(enum.Enum):
    """Whether a parameter's domain carries a meaningful order.

    Ordinal parameters (e.g. a temperature or a learning rate) admit the
    inequality comparators ``<=`` and ``>`` in root causes; categorical
    parameters (e.g. a color or an estimator name) admit only equality
    and inequality (``=`` / ``!=``).
    """

    CATEGORICAL = "categorical"
    ORDINAL = "ordinal"


@dataclass(frozen=True)
class Parameter:
    """A manipulable pipeline parameter and its declared value domain.

    The *domain* is the parameter-value universe ``U_p`` of Definition 1:
    the set of values the debugger is allowed to assign.  For ordinal
    parameters the domain must be sorted ascending; this is validated at
    construction time so downstream code may rely on it.

    Attributes:
        name: Unique identifier of the parameter within its space.
        domain: Tuple of allowed values (at least two for debugging to be
            meaningful, but a single value is permitted).
        kind: Whether the domain is ordinal or categorical.
    """

    name: str
    domain: tuple[Value, ...]
    kind: ParameterKind = ParameterKind.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if not isinstance(self.domain, tuple):
            object.__setattr__(self, "domain", tuple(self.domain))
        if len(self.domain) == 0:
            raise ValueError(f"parameter {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise ValueError(f"parameter {self.name!r} has duplicate domain values")
        if self.kind is ParameterKind.ORDINAL:
            values = list(self.domain)
            try:
                is_sorted = all(values[i] <= values[i + 1] for i in range(len(values) - 1))
            except TypeError as exc:
                raise ValueError(
                    f"ordinal parameter {self.name!r} has non-comparable domain values"
                ) from exc
            if not is_sorted:
                raise ValueError(
                    f"ordinal parameter {self.name!r} requires an ascending domain"
                )
        object.__setattr__(
            self, "_positions", {value: i for i, value in enumerate(self.domain)}
        )

    @property
    def is_ordinal(self) -> bool:
        """True when the parameter's values carry a meaningful order."""
        return self.kind is ParameterKind.ORDINAL

    def index_of(self, value: Value) -> int:
        """Return the position of ``value`` in the domain.

        Raises:
            ValueError: if the value is not in the domain.
        """
        code = self.code_of(value)
        if code is None:
            raise ValueError(
                f"value {value!r} not in domain of parameter {self.name!r}"
            )
        return code

    def code_of(self, value: Value) -> int | None:
        """Domain position of ``value``, or None when out of domain.

        The position doubles as the parameter's integer *value code* in
        the columnar engine (:mod:`repro.core.engine`); for ordinal
        parameters code order equals value order because the domain is
        validated ascending.
        """
        try:
            return self._positions.get(value)  # type: ignore[attr-defined]
        except TypeError:  # unhashable probe value
            return None

    def __contains__(self, value: Value) -> bool:
        return self.code_of(value) is not None


class ParameterSpace(Mapping[str, Parameter]):
    """An ordered collection of parameters: the universe ``U`` of Definition 1.

    The space fixes the order in which algorithms iterate over parameters
    (the Shortcut algorithm's "some order among parameters") and provides
    helpers to validate, enumerate, and sample instances.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in space")
        self._parameters: dict[str, Parameter] = {p.name: p for p in parameters}

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{p.name}[{len(p.domain)}{'o' if p.is_ordinal else 'c'}]"
            for p in self._parameters.values()
        )
        return f"ParameterSpace({inner})"

    # -- Convenience -------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names in declaration order."""
        return tuple(self._parameters)

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """Parameter objects in declaration order."""
        return tuple(self._parameters.values())

    def domain(self, name: str) -> tuple[Value, ...]:
        """Domain of the named parameter."""
        return self._parameters[name].domain

    def size(self) -> int:
        """Number of distinct instances in the full Cartesian space."""
        total = 1
        for parameter in self._parameters.values():
            total *= len(parameter.domain)
        return total

    def validate(self, instance: "Instance") -> None:
        """Check that ``instance`` assigns an in-domain value to every parameter.

        Raises:
            ValueError: on a missing parameter, an extra parameter, or an
                out-of-domain value.
        """
        missing = set(self._parameters) - set(instance.keys())
        if missing:
            raise ValueError(f"instance missing parameters: {sorted(missing)}")
        extra = set(instance.keys()) - set(self._parameters)
        if extra:
            raise ValueError(f"instance has unknown parameters: {sorted(extra)}")
        for name, value in instance.items():
            if value not in self._parameters[name].domain:
                raise ValueError(
                    f"value {value!r} out of domain for parameter {name!r}"
                )

    def instances(self) -> Iterator["Instance"]:
        """Enumerate the full Cartesian product of the space.

        The iteration order is deterministic (row-major in declaration
        order).  Use only when ``size()`` is small; callers exploring
        large spaces should sample instead.
        """
        names = self.names
        if not names:
            yield Instance({})
            return

        def recurse(index: int, partial: dict[str, Value]) -> Iterator[Instance]:
            if index == len(names):
                yield Instance(partial)
                return
            name = names[index]
            for value in self._parameters[name].domain:
                partial[name] = value
                yield from recurse(index + 1, partial)
            del partial[name]

        yield from recurse(0, {})

    def random_instance(self, rng) -> "Instance":
        """Sample an instance uniformly at random using ``rng``.

        Args:
            rng: a ``random.Random``-like object exposing ``choice``.
        """
        return Instance(
            {name: rng.choice(parameter.domain) for name, parameter in self._parameters.items()}
        )

    def subspace(self, names: Sequence[str]) -> "ParameterSpace":
        """Project the space onto a subset of parameter names."""
        return ParameterSpace([self._parameters[name] for name in names])


class Instance(Mapping[str, Value]):
    """A pipeline instance ``CPi``: one value assigned to each parameter.

    Instances are immutable and hashable.  They intentionally do not keep
    a reference to their :class:`ParameterSpace`; validation against a
    space is explicit via :meth:`ParameterSpace.validate`.
    """

    __slots__ = ("_values", "_hash", "_canonical", "_persist_key")

    def __init__(self, values: Mapping[str, Value]):
        self._values: dict[str, Value] = dict(values)
        self._hash: int | None = None
        self._canonical: tuple[tuple[str, Value], ...] | None = None
        # Lazily-filled serialization key; owned by repro.provenance.store
        # (kept here so keying work happens at most once per instance).
        self._persist_key: str | None = None

    # -- Mapping protocol --------------------------------------------------
    def __getitem__(self, name: str) -> Value:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def canonical_items(self) -> tuple[tuple[str, Value], ...]:
        """The assignment as a name-sorted tuple, computed once.

        This is the canonical identity of the instance: the hash, the
        provenance ``instance_key``, and the service cache key are all
        derived from it, so the (sort + tuple) work is paid at most once
        per instance instead of once per lookup.
        """
        if self._canonical is None:
            self._canonical = tuple(
                sorted(self._values.items(), key=lambda item: item[0])
            )
        return self._canonical

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.canonical_items)
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"Instance({inner})"

    # -- Derivation helpers --------------------------------------------------
    def with_value(self, name: str, value: Value) -> "Instance":
        """Return a copy of this instance with one parameter reassigned."""
        if name not in self._values:
            raise KeyError(f"unknown parameter {name!r}")
        updated = dict(self._values)
        updated[name] = value
        return Instance(updated)

    def restricted_to(self, names: Sequence[str]) -> "Instance":
        """Project the instance onto a subset of its parameters."""
        return Instance({name: self._values[name] for name in names})

    def hamming_distance(self, other: "Instance") -> int:
        """Number of shared parameters on which the two instances differ."""
        return sum(
            1
            for name, value in self._values.items()
            if name in other and other[name] != value
        )

    def is_disjoint_from(self, other: "Instance") -> bool:
        """Definition 6: true when the instances differ on *every* parameter."""
        if set(self._values) != set(other.keys()):
            raise ValueError("disjointness is defined over a common parameter set")
        return all(other[name] != value for name, value in self._values.items())

    def as_dict(self) -> dict[str, Value]:
        """A plain mutable copy of the assignment."""
        return dict(self._values)


class Outcome(enum.Enum):
    """Result of the evaluation procedure ``E`` (Definition 2)."""

    SUCCEED = "succeed"
    FAIL = "fail"

    @property
    def failed(self) -> bool:
        return self is Outcome.FAIL

    def __invert__(self) -> "Outcome":
        return Outcome.FAIL if self is Outcome.SUCCEED else Outcome.SUCCEED


@dataclass(frozen=True)
class Evaluation:
    """An executed instance together with its evaluation outcome.

    Optionally carries the raw result the pipeline produced (e.g. an
    F-measure score) and the wall-clock cost of the run, which the
    benchmark harness uses for accounting.
    """

    instance: Instance
    outcome: Outcome
    result: object = None
    cost: float = 0.0
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.outcome is Outcome.FAIL

    @property
    def succeeded(self) -> bool:
        return self.outcome is Outcome.SUCCEED


@runtime_checkable
class Executor(Protocol):
    """The black-box contract: run one instance, report succeed/fail.

    BugDoc never looks inside the pipeline; every algorithm in
    :mod:`repro.core` interacts with the system under debugging solely
    through this protocol.  Implementations live in
    :mod:`repro.pipeline.runner` (workflow engine, caching, parallelism,
    replay-only historical mode) and in the workload simulators.
    """

    def __call__(self, instance: Instance) -> Outcome:  # pragma: no cover - protocol
        ...


@runtime_checkable
class EvaluationFunction(Protocol):
    """Maps a pipeline's raw result to an :class:`Outcome` (Definition 2)."""

    def __call__(self, result: object) -> Outcome:  # pragma: no cover - protocol
        ...
