"""Row-range sharding for the columnar store.

A :class:`~repro.core.engine.ColumnarStore` used to keep one monolithic
big-int bitset per (parameter, code): every query was a serial pass
over the whole history, and every append copied every touched
full-length column.  This module supplies the pieces that break the
store into **row-range shards**:

* :class:`ShardPlan` -- the sizing policy: how many rows per shard and
  how many worker threads the parallel executor may use.  Auto-sized
  from the row count and ``os.cpu_count()``, overridable explicitly or
  via ``REPRO_SHARD_ROWS`` / ``REPRO_SHARD_WORKERS``.
* :class:`Shard` -- one contiguous row range ``[start, start+n_rows)``
  with *local* per-(parameter, code) bitsets, a local fail mask, and a
  local LRU-capped match-table cache.  Bit ``i`` of a local mask is
  global row ``start + i``.  Only the tail shard ever grows; a sealed
  shard (and everything cached against it) is immutable, which is what
  makes incremental maintenance cheap: appends touch only the tail.
* :class:`ShardExecutor` -- a lazily-created thread pool that fans
  per-shard work items out when the plan allows more than one worker,
  counting ``parallel_queries``.  Threads are the right tool here:
  the fan-out units are either numpy bytes-kernel calls (which release
  the GIL) or big-int passes over *disjoint* shards whose Python-level
  overhead interleaves; with one worker everything stays serial and
  the executor never spawns a thread.

The store façade in :mod:`repro.core.engine` composes global answers
from shard-local ones and short-circuits existence queries shard by
shard; this module deliberately knows nothing about predicates or
histories.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .bitkernel import accumulate_codes

__all__ = ["ShardPlan", "Shard", "ShardExecutor", "DEFAULT_MATCH_TABLE_LIMIT"]

# Per-shard cap on cached match tables (entries); see ShardPlan notes.
DEFAULT_MATCH_TABLE_LIMIT = 4096

# Smallest shard the auto plan will cut.  Histories below this stay in
# one shard, which reproduces the pre-shard store's behavior (and its
# counter semantics) exactly -- sharding only pays above this scale.
MIN_AUTO_SHARD_ROWS = 16384

# The auto plan targets about two shards per worker so the executor
# always has a full wave of work, capped to keep per-query Python-level
# shard-loop overhead bounded on huge stores.
MAX_AUTO_SHARDS = 32


def _pow2_at_least(value: int) -> int:
    return 1 << max(0, (value - 1).bit_length())


@dataclass(frozen=True)
class ShardPlan:
    """Sizing policy for a sharded columnar store.

    Attributes:
        shard_rows: rows per shard; the tail shard is sealed and a new
            one opened when it reaches this size.
        max_workers: upper bound on executor threads for parallel
            fan-outs.  ``1`` keeps every query serial (no pool is ever
            created) while preserving shard short-circuiting.
        fan_min_batch: smallest batch (conjunctions, matrix rows) worth
            fanning out; below it the serial path is always cheaper.
    """

    shard_rows: int
    max_workers: int = 1
    fan_min_batch: int = 4

    def __post_init__(self) -> None:
        if self.shard_rows < 1:
            raise ValueError(f"shard_rows must be >= 1, got {self.shard_rows}")
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )

    @classmethod
    def auto(
        cls, row_hint: int = 0, cpu_count: int | None = None
    ) -> "ShardPlan":
        """Size a plan from a row-count hint and the machine's cores.

        ``row_hint`` is typically the history's current distinct count;
        stores created before the history grows simply start with one
        tail shard and split as rows arrive.  Environment overrides
        (``REPRO_SHARD_ROWS``, ``REPRO_SHARD_WORKERS``) take precedence
        -- they are the operational escape hatch the benchmarks and
        service deployments use.
        """
        env_rows = os.environ.get("REPRO_SHARD_ROWS")
        env_workers = os.environ.get("REPRO_SHARD_WORKERS")
        workers = (
            int(env_workers)
            if env_workers
            else min(cpu_count or os.cpu_count() or 1, 8)
        )
        if env_rows:
            shard_rows = int(env_rows)
        else:
            target_shards = min(MAX_AUTO_SHARDS, 2 * workers)
            shard_rows = max(
                MIN_AUTO_SHARD_ROWS,
                _pow2_at_least(max(1, row_hint) // max(1, target_shards)),
            )
        return cls(shard_rows=shard_rows, max_workers=max(1, workers))


class Shard:
    """One row range of the store, with local bitsets and match tables.

    ``value_rows[p][c]`` is the *local* bitset of rows in this shard
    whose parameter ``p`` holds code ``c``; ``fail_mask`` / the
    ``succeed_mask`` property partition ``full_mask`` by outcome.  The
    match-table cache maps ``(parameter_index, allowed_mask)`` to the
    local bitset of rows whose code lies in the mask, LRU-capped, with
    per-entry build-watermarks so tail-shard entries extend lazily
    (only the rows appended since the entry was built are scanned).
    """

    __slots__ = (
        "start",
        "n_rows",
        "value_rows",
        "fail_mask",
        "full_mask",
        "sealed",
        "_match",
        "hits",
        "misses",
        "extensions",
        "evictions",
    )

    def __init__(self, start: int, domain_sizes: tuple[int, ...]):
        self.start = start
        self.n_rows = 0
        self.value_rows: list[list[int]] = [
            [0] * size for size in domain_sizes
        ]
        self.fail_mask = 0
        self.full_mask = 0
        self.sealed = False
        # (index, allowed) -> [local_mask, rows_at_build]
        self._match: OrderedDict[tuple[int, int], list[int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.extensions = 0
        self.evictions = 0

    @property
    def succeed_mask(self) -> int:
        return self.full_mask & ~self.fail_mask

    def append(self, codes: tuple[int, ...], is_fail: bool) -> None:
        """Append one row (local position ``n_rows``) to this shard."""
        bit = 1 << self.n_rows
        value_rows = self.value_rows
        for index, code in enumerate(codes):
            value_rows[index][code] |= bit
        if is_fail:
            self.fail_mask |= bit
        self.full_mask |= bit
        self.n_rows += 1

    def match_rows(
        self,
        index: int,
        allowed: int,
        row_codes,
        limit: int,
    ) -> int:
        """Local bitset of rows whose ``index`` code lies in ``allowed``.

        Cached with LRU eviction at ``limit`` entries.  A cached entry
        built before rows were appended (tail shard only -- sealed
        shards never grow) is *extended in place* by testing just the
        new rows' codes against the mask, mirroring the pre-shard
        store's append-only table repair but scoped to one shard and
        done lazily on access.  ``row_codes`` is the store's global
        per-row code-tuple list; this shard reads its own slice.
        """
        key = (index, allowed)
        entry = self._match.get(key)
        if entry is not None:
            mask, built = entry
            if built != self.n_rows:
                extra = 0
                base = self.start
                for local in range(built, self.n_rows):
                    if (allowed >> row_codes[base + local][index]) & 1:
                        extra |= 1 << local
                mask |= extra
                entry[0] = mask
                entry[1] = self.n_rows
                self.extensions += 1
            self.hits += 1
            self._match.move_to_end(key)
            return mask
        self.misses += 1
        mask = accumulate_codes(self.value_rows[index], allowed)
        self._match[key] = [mask, self.n_rows]
        if len(self._match) > limit:
            self._match.popitem(last=False)
            self.evictions += 1
        return mask

    def match_table_footprint(self) -> tuple[int, int]:
        """(entries, estimated bytes) of the cached match tables."""
        entries = len(self._match)
        # CPython int object: ~28 bytes header + 4 bytes per 30-bit
        # digit; close enough for a capacity estimate without paying
        # sys.getsizeof on every entry.
        total = 0
        for mask, __ in self._match.values():
            total += 28 + 4 * ((mask.bit_length() + 29) // 30)
        return entries, total


class ShardExecutor:
    """Lazy thread pool for per-shard fan-outs.

    With ``max_workers == 1`` (or single-item work lists) everything
    runs serially on the calling thread and no pool is ever created;
    otherwise a pool spins up on first use and ``parallel_queries``
    counts every fanned call.  Work functions receive one item and must
    touch only that item's shard-local state (plus read-only store
    state) -- the store enforces this by fanning exactly one task per
    shard.
    """

    __slots__ = ("max_workers", "parallel_queries", "_pool")

    def __init__(self, max_workers: int = 1):
        self.max_workers = max(1, max_workers)
        self.parallel_queries = 0
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn, items) -> list:
        items = list(items)
        if self.max_workers < 2 or len(items) < 2:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-shard",
            )
        self.parallel_queries += 1
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
