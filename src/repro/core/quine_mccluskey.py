"""Boolean and multi-valued minimization of explanations.

The Debugging Decision Trees algorithm emits disjunctions of
conjunctions that often contain redundancies (Section 4: "we simplify
using the Quine-McCluskey algorithm.  The goal is to create concise
explanations").  Two layers are provided:

1. :func:`minimize_boolean` -- the classic Quine-McCluskey procedure on
   binary minterms, with a Petrick-style greedy cover.  Used directly
   for boolean parameter subspaces and kept faithful to the textbook
   algorithm so it can be property-tested against truth tables.

2. :func:`simplify_disjunction` -- a multi-valued generalization over
   finite parameter domains.  Each conjunction canonicalizes to a *box*
   (a per-parameter set of allowed values); boxes are absorbed, merged
   (the multi-valued analogue of combining adjacent implicants), and
   redundant boxes removed, then converted back to the fewest
   predicates that express each per-parameter value set exactly.

Both layers run on **bitmask implicant representations** internally
(part of the columnar evaluation engine work, see
:mod:`repro.core.engine`): a binary implicant is a ``(bits, mask)``
pair of ints, so the combine step is two XOR/AND operations and a
popcount instead of a positional tuple scan; a multi-valued box is a
``parameter -> allowed-code bitmask`` dict over domain positions, so
subsumption and merging are single AND/OR ops per parameter.  The
public API is unchanged: implicants are still returned as
``0/1/None`` tuples and boxes as value frozensets.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from .predicates import Comparator, Conjunction, Disjunction, Predicate
from .types import Parameter, ParameterSpace, Value

__all__ = [
    "Implicant",
    "minimize_boolean",
    "simplify_disjunction",
    "predicates_for_value_set",
    "boxes_from_disjunction",
    "disjunction_from_boxes",
]

# A binary implicant: one entry per variable, 0 / 1 / None (= don't care).
Implicant = tuple[int | None, ...]

# A multi-valued box: parameter name -> allowed value set.  Parameters
# absent from the box are unconstrained.
Box = dict[str, frozenset[Value]]

# Internal bitmask form of a box: parameter name -> allowed-code mask
# over domain positions.  Parameters absent are unconstrained.
_IntBox = dict[str, int]


# ---------------------------------------------------------------------------
# Classic binary Quine-McCluskey (bitmask implicants)
# ---------------------------------------------------------------------------
#
# An implicant over ``n_vars`` variables is a pair of ints ``(bits,
# mask)``: ``mask`` has a 1 for every specified variable position (in
# minterm bit order), ``bits`` holds the required values on those
# positions (and 0 elsewhere).  The implicant covers minterm ``m`` iff
# ``m & mask == bits``.  Two implicants combine iff they share the same
# mask and their bits differ in exactly one position -- one XOR and one
# popcount instead of a positional scan.

def _pair_to_tuple(bits: int, mask: int, n_vars: int) -> Implicant:
    """Bitmask implicant -> the public 0/1/None tuple form."""
    out: list[int | None] = []
    for position in range(n_vars):
        bit = 1 << (n_vars - 1 - position)
        out.append((1 if bits & bit else 0) if mask & bit else None)
    return tuple(out)


def _pair_sort_key(pair: tuple[int, int], n_vars: int) -> tuple[int, ...]:
    """The reference implementation's implicant sort key (None -> -1)."""
    bits, mask = pair
    key: list[int] = []
    for position in range(n_vars):
        bit = 1 << (n_vars - 1 - position)
        key.append((1 if bits & bit else 0) if mask & bit else -1)
    return tuple(key)


def _implicant_covers(implicant: Implicant, minterm: int, n_vars: int) -> bool:
    """True when the implicant (tuple form) covers the given minterm."""
    for position, literal in enumerate(implicant):
        if literal is None:
            continue
        bit = (minterm >> (n_vars - 1 - position)) & 1
        if bit != literal:
            return False
    return True


def minimize_boolean(
    n_vars: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> list[Implicant]:
    """Quine-McCluskey minimization of a boolean function.

    Args:
        n_vars: number of input variables (bit 0 of a minterm index is
            the last variable, matching the conventional truth-table
            layout).
        minterms: input combinations for which the function is 1.
        dont_cares: combinations whose output is unconstrained; they may
            be absorbed into implicants but need not be covered.

    Returns:
        A small (greedy essential-prime cover) list of implicants whose
        disjunction equals the function on all non-don't-care inputs.
        Empty list for the constant-false function; the single
        all-``None`` implicant for constant-true.
    """
    minterm_set = set(minterms)
    dc_set = set(dont_cares) - minterm_set
    if not minterm_set:
        return []
    upper = 1 << n_vars
    for m in minterm_set | dc_set:
        if not 0 <= m < upper:
            raise ValueError(f"minterm {m} out of range for {n_vars} variables")

    # Stage 1: iteratively combine implicants into prime implicants.
    # Implicants sharing a mask are grouped so each one probes its
    # single-bit-flip partners directly instead of scanning all pairs.
    full_mask = upper - 1
    current: set[tuple[int, int]] = {(m, full_mask) for m in minterm_set | dc_set}
    primes: set[tuple[int, int]] = set()
    while current:
        by_mask: dict[int, set[int]] = {}
        for bits, mask in current:
            by_mask.setdefault(mask, set()).add(bits)
        combined: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        for mask, group in by_mask.items():
            probe = mask
            while probe:
                flip = probe & -probe
                probe ^= flip
                reduced_mask = mask ^ flip
                for bits in group:
                    partner = bits ^ flip
                    if partner in group:
                        combined.add((bits & ~flip, reduced_mask))
                        used.add((bits, mask))
                        used.add((partner, mask))
        primes |= current - used
        current = combined

    # Stage 2: essential primes, then greedy cover of the rest.  Primes
    # are kept in the reference tuple order so tie-breaks are stable.
    # The chart is held as *coverage bitmasks* -- one bit per required
    # minterm (ascending order), one mask per prime -- so the essential
    # scan, the greedy count, and redundancy elimination are popcounts
    # and ANDs over the whole batch instead of per-minterm set scans.
    ordered_primes = sorted(primes, key=lambda p: _pair_sort_key(p, n_vars))
    minterm_list = sorted(minterm_set)
    cover: dict[tuple[int, int], int] = {}
    for prime in ordered_primes:
        bits, mask = prime
        coverage = 0
        for position, m in enumerate(minterm_list):
            if (m & mask) == bits:
                coverage |= 1 << position
        cover[prime] = coverage
    full_cover = (1 << len(minterm_list)) - 1

    # Essential primes: minterms covered by exactly one prime, scanned
    # in ascending minterm order (the reference chart order).
    covered_once = 0
    covered_multi = 0
    for prime in ordered_primes:
        coverage = cover[prime]
        covered_multi |= covered_once & coverage
        covered_once |= coverage
    essential_positions = covered_once & ~covered_multi
    chosen: list[tuple[int, int]] = []
    remaining = essential_positions
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        only = next(p for p in ordered_primes if cover[p] & low)
        if only not in chosen:
            chosen.append(only)
    uncovered = full_cover
    for prime in chosen:
        uncovered &= ~cover[prime]
    remaining_primes = [p for p in ordered_primes if p not in chosen]
    while uncovered:
        best = max(
            remaining_primes,
            key=lambda p: (
                (cover[p] & uncovered).bit_count(),
                n_vars - p[1].bit_count(),  # number of don't-care positions
            ),
        )
        covered_now = cover[best] & uncovered
        if not covered_now:  # pragma: no cover - defensive; cannot happen
            raise RuntimeError("prime implicant chart cannot be covered")
        chosen.append(best)
        remaining_primes.remove(best)
        uncovered &= ~covered_now

    # Redundancy elimination: a greedy pick can be made obsolete by
    # later picks; drop any implicant whose minterms the rest still
    # cover (latest picks are reconsidered first).
    for candidate in list(reversed(chosen)):
        rest = [p for p in chosen if p != candidate]
        rest_cover = 0
        for prime in rest:
            rest_cover |= cover[prime]
        if rest_cover & full_cover == full_cover:
            chosen = rest
    return [_pair_to_tuple(bits, mask, n_vars) for bits, mask in chosen]


# ---------------------------------------------------------------------------
# Multi-valued simplification over parameter boxes (bitmask form)
# ---------------------------------------------------------------------------

class _BoxCodec:
    """Name-keyed box encode/decode over the engine's shared codec.

    The value-interning tables live in
    :class:`~repro.core.engine.SpaceCodec` (one source of truth for
    code assignment); this wrapper only adapts them to the box
    algebra's name-keyed dicts.
    """

    def __init__(self, space: ParameterSpace):
        from .engine import SpaceCodec  # here to keep module load light

        self.space = space
        self.names = space.names
        codec = SpaceCodec(space)
        self.full: dict[str, int] = {
            name: codec.full_masks[index]
            for name, index in codec.index_of_name.items()
        }

    def encode(self, box: Box) -> _IntBox:
        encoded: _IntBox = {}
        for name, values in box.items():
            parameter = self.space[name]
            mask = 0
            for value in values:
                mask |= 1 << parameter.index_of(value)
            encoded[name] = mask
        return encoded

    def decode(self, box: _IntBox) -> Box:
        decoded: Box = {}
        for name, mask in box.items():
            domain = self.space.domain(name)
            decoded[name] = frozenset(
                domain[code] for code in range(len(domain)) if mask & (1 << code)
            )
        return decoded


def boxes_from_disjunction(
    disjunction: Disjunction | Iterable[Conjunction], space: ParameterSpace
) -> list[Box]:
    """Canonicalize each conjunction; drop unsatisfiable ones."""
    boxes: list[Box] = []
    for conjunction in disjunction:
        box = conjunction.canonical(space)
        if all(values for values in box.values()):
            boxes.append(box)
    return boxes


def _box_subsumes(general: _IntBox, specific: _IntBox, codec: _BoxCodec) -> bool:
    """True when every instance of ``specific`` lies inside ``general``."""
    for name, general_mask in general.items():
        specific_mask = specific.get(name, codec.full[name])
        if specific_mask & ~general_mask:
            return False
    return True


def _try_merge(a: _IntBox, b: _IntBox, codec: _BoxCodec) -> _IntBox | None:
    """Merge two boxes that agree everywhere except one parameter.

    The multi-valued analogue of combining two implicants differing in
    one bit: the merged box covers exactly the union of the two.
    """
    full = codec.full
    differing = [
        name
        for name in set(a) | set(b)
        if a.get(name, full[name]) != b.get(name, full[name])
    ]
    if len(differing) > 1:
        return None
    if not differing:
        return dict(a)
    name = differing[0]
    merged_mask = a.get(name, full[name]) | b.get(name, full[name])
    merged = {k: v for k, v in a.items() if k != name}
    for k, v in b.items():
        merged.setdefault(k, v)
    if merged_mask != full[name]:
        merged[name] = merged_mask
    else:
        merged.pop(name, None)
    return merged


def _absorb(boxes: list[_IntBox], codec: _BoxCodec) -> list[_IntBox]:
    """Remove boxes subsumed by another box in the list."""
    kept: list[_IntBox] = []
    for i, box in enumerate(boxes):
        subsumed = False
        for j, other in enumerate(boxes):
            if i == j:
                continue
            if _box_subsumes(other, box, codec):
                # Break mutual-subsumption (equal boxes) ties by index.
                if _box_subsumes(box, other, codec) and i < j:
                    continue
                subsumed = True
                break
        if not subsumed:
            kept.append(box)
    return kept


def _box_count(box: _IntBox, codec: _BoxCodec) -> int:
    count = 1
    for name in codec.names:
        count *= box.get(name, codec.full[name]).bit_count()
    return count


def _remove_redundant(boxes: list[_IntBox], codec: _BoxCodec) -> list[_IntBox]:
    """Drop boxes entirely covered by the union of the others.

    Exact when the space is small enough to enumerate a box's instances;
    otherwise only pairwise subsumption (already applied) is used.
    """
    limit = 50_000
    result = list(boxes)
    changed = True
    while changed:
        changed = False
        for i, box in enumerate(result):
            others = result[:i] + result[i + 1 :]
            if not others:
                continue
            if _box_count(box, codec) > limit:
                continue
            if _box_covered_by_union(box, others, codec):
                result.pop(i)
                changed = True
                break
    return result


# Fragment budget for the subtraction-based coverage check: past this
# many residual boxes the instance-enumeration scan (bounded by the
# caller's ``limit``) is cheaper, so we fall back to it.
_FRAGMENT_LIMIT = 2048


def _box_subtract(
    fragment: _IntBox, other: _IntBox, codec: _BoxCodec
) -> list[_IntBox]:
    """Exact set difference ``fragment \\ other`` as disjoint boxes.

    The standard hyper-rectangle split: walk the parameters in space
    order, peeling off the part of ``fragment`` that lies outside
    ``other`` on that axis while narrowing the remainder to the
    overlap.  At most one piece per parameter; pieces are pairwise
    disjoint and their union is exactly the difference.
    """
    full = codec.full
    for name in fragment.keys() | other.keys():
        if fragment.get(name, full[name]) & other.get(name, full[name]) == 0:
            return [fragment]  # disjoint: nothing to remove
    pieces: list[_IntBox] = []
    core = dict(fragment)
    for name in codec.names:
        fragment_mask = core.get(name, full[name])
        other_mask = other.get(name, full[name])
        outside = fragment_mask & ~other_mask
        if outside:
            piece = dict(core)
            if outside == full[name]:  # pragma: no cover - outside < mask <= full
                piece.pop(name, None)
            else:
                piece[name] = outside
            pieces.append(piece)
            core[name] = fragment_mask & other_mask
    return pieces


def _box_covered_by_union(
    box: _IntBox, others: Sequence[_IntBox], codec: _BoxCodec
) -> bool:
    """True when the union of ``others`` contains every instance of ``box``.

    Batched subtraction instead of instance enumeration: ``box`` is
    covered iff subtracting every other box leaves nothing.  Each step
    is a few mask operations per parameter, independent of how many
    instances the boxes span; should the residual fragment set blow up
    (adversarial overlaps), the bounded enumeration scan takes over
    with identical results.
    """
    fragments: list[_IntBox] = [box]
    for other in others:
        next_fragments: list[_IntBox] = []
        for fragment in fragments:
            next_fragments.extend(_box_subtract(fragment, other, codec))
            if len(next_fragments) > _FRAGMENT_LIMIT:
                return _box_covered_by_union_scan(box, others, codec)
        fragments = next_fragments
        if not fragments:
            return True
    return not fragments


def _box_covered_by_union_scan(
    box: _IntBox, others: Sequence[_IntBox], codec: _BoxCodec
) -> bool:
    """Reference coverage check: enumerate the box's instances."""
    names = codec.names
    code_lists = []
    for name in names:
        mask = box.get(name, codec.full[name])
        code_lists.append(
            [code for code in range(mask.bit_length()) if mask & (1 << code)]
        )
    full = codec.full
    for combo in itertools.product(*code_lists):
        if not any(
            all(
                other.get(name, full[name]) & (1 << code)
                for name, code in zip(names, combo)
            )
            for other in others
        ):
            return False
    return True


def _contiguous_range(parameter: Parameter, values: frozenset[Value]) -> tuple[int, int] | None:
    """Indices [lo, hi] when ``values`` is a contiguous ordinal run."""
    indices = sorted(parameter.index_of(v) for v in values)
    if not indices:
        return None
    lo, hi = indices[0], indices[-1]
    if hi - lo + 1 != len(indices):
        return None
    return lo, hi


def predicates_for_value_set(
    parameter: Parameter, values: frozenset[Value]
) -> list[Predicate]:
    """Express a per-parameter value subset with the fewest predicates.

    Exact encodings considered, in order of preference:

    * singleton -> one ``=``;
    * ordinal contiguous prefix -> one ``<=``; suffix -> one ``>``;
      interior run -> ``>`` + ``<=``;
    * otherwise -> one ``!=`` per excluded value (always exact).

    Raises:
        ValueError: for an empty subset (unsatisfiable; callers filter
            these out) or values outside the domain.
    """
    if not values:
        raise ValueError(f"empty value set for parameter {parameter.name!r}")
    domain = frozenset(parameter.domain)
    if not values <= domain:
        raise ValueError(
            f"values {values!r} outside domain of parameter {parameter.name!r}"
        )
    if values == domain:
        return []
    if len(values) == 1:
        (only,) = values
        return [Predicate(parameter.name, Comparator.EQ, only)]

    candidates: list[list[Predicate]] = []
    if parameter.is_ordinal:
        run = _contiguous_range(parameter, values)
        if run is not None:
            lo, hi = run
            range_predicates: list[Predicate] = []
            if lo > 0:
                range_predicates.append(
                    Predicate(parameter.name, Comparator.GT, parameter.domain[lo - 1])
                )
            if hi < len(parameter.domain) - 1:
                range_predicates.append(
                    Predicate(parameter.name, Comparator.LE, parameter.domain[hi])
                )
            candidates.append(range_predicates)

    excluded = sorted(domain - values, key=repr)
    candidates.append(
        [Predicate(parameter.name, Comparator.NEQ, v) for v in excluded]
    )
    return min(candidates, key=len)


def disjunction_from_boxes(boxes: Iterable[Box], space: ParameterSpace) -> Disjunction:
    """Convert boxes back into a predicate disjunction."""
    conjunctions = []
    for box in boxes:
        predicates: list[Predicate] = []
        for name, values in sorted(box.items()):
            predicates.extend(predicates_for_value_set(space[name], values))
        conjunctions.append(Conjunction(predicates))
    return Disjunction(conjunctions)


def simplify_disjunction(
    disjunction: Disjunction | Iterable[Conjunction], space: ParameterSpace
) -> Disjunction:
    """Simplify a disjunction of conjunctions over a finite space.

    Guarantees semantic equivalence: the returned disjunction is
    satisfied by exactly the same instances of ``space`` as the input.
    """
    codec = _BoxCodec(space)
    boxes = [codec.encode(box) for box in boxes_from_disjunction(disjunction, space)]
    boxes = _absorb(boxes, codec)

    # Iterated merging, QM-style: combine while any pair merges.
    changed = True
    while changed:
        changed = False
        for i, j in itertools.combinations(range(len(boxes)), 2):
            merged = _try_merge(boxes[i], boxes[j], codec)
            if merged is not None:
                survivors = [
                    box for k, box in enumerate(boxes) if k not in (i, j)
                ]
                survivors.append(merged)
                boxes = _absorb(survivors, codec)
                changed = True
                break

    boxes = _remove_redundant(boxes, codec)
    return disjunction_from_boxes([codec.decode(box) for box in boxes], space)
