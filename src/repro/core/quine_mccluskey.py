"""Boolean and multi-valued minimization of explanations.

The Debugging Decision Trees algorithm emits disjunctions of
conjunctions that often contain redundancies (Section 4: "we simplify
using the Quine-McCluskey algorithm.  The goal is to create concise
explanations").  Two layers are provided:

1. :func:`minimize_boolean` -- the classic Quine-McCluskey procedure on
   binary minterms, with a Petrick-style greedy cover.  Used directly
   for boolean parameter subspaces and kept faithful to the textbook
   algorithm so it can be property-tested against truth tables.

2. :func:`simplify_disjunction` -- a multi-valued generalization over
   finite parameter domains.  Each conjunction canonicalizes to a *box*
   (a per-parameter set of allowed values); boxes are absorbed, merged
   (the multi-valued analogue of combining adjacent implicants), and
   redundant boxes removed, then converted back to the fewest
   predicates that express each per-parameter value set exactly.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from .predicates import Comparator, Conjunction, Disjunction, Predicate
from .types import Parameter, ParameterSpace, Value

__all__ = [
    "Implicant",
    "minimize_boolean",
    "simplify_disjunction",
    "predicates_for_value_set",
    "boxes_from_disjunction",
    "disjunction_from_boxes",
]

# A binary implicant: one entry per variable, 0 / 1 / None (= don't care).
Implicant = tuple[int | None, ...]

# A multi-valued box: parameter name -> allowed value set.  Parameters
# absent from the box are unconstrained.
Box = dict[str, frozenset[Value]]


# ---------------------------------------------------------------------------
# Classic binary Quine-McCluskey
# ---------------------------------------------------------------------------

def _combine(a: Implicant, b: Implicant) -> Implicant | None:
    """Merge two implicants differing in exactly one specified bit."""
    diff = -1
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            if x is None or y is None or diff >= 0:
                return None
            diff = i
    if diff < 0:
        return None
    merged = list(a)
    merged[diff] = None
    return tuple(merged)


def _implicant_covers(implicant: Implicant, minterm: int, n_vars: int) -> bool:
    """True when the implicant covers the given minterm."""
    for position, literal in enumerate(implicant):
        if literal is None:
            continue
        bit = (minterm >> (n_vars - 1 - position)) & 1
        if bit != literal:
            return False
    return True


def _minterm_to_implicant(minterm: int, n_vars: int) -> Implicant:
    return tuple((minterm >> (n_vars - 1 - i)) & 1 for i in range(n_vars))


def minimize_boolean(
    n_vars: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> list[Implicant]:
    """Quine-McCluskey minimization of a boolean function.

    Args:
        n_vars: number of input variables (bit 0 of a minterm index is
            the last variable, matching the conventional truth-table
            layout).
        minterms: input combinations for which the function is 1.
        dont_cares: combinations whose output is unconstrained; they may
            be absorbed into implicants but need not be covered.

    Returns:
        A small (greedy essential-prime cover) list of implicants whose
        disjunction equals the function on all non-don't-care inputs.
        Empty list for the constant-false function; the single
        all-``None`` implicant for constant-true.
    """
    minterm_set = set(minterms)
    dc_set = set(dont_cares) - minterm_set
    if not minterm_set:
        return []
    upper = 1 << n_vars
    for m in minterm_set | dc_set:
        if not 0 <= m < upper:
            raise ValueError(f"minterm {m} out of range for {n_vars} variables")

    # Stage 1: iteratively combine implicants into prime implicants.
    current = {_minterm_to_implicant(m, n_vars) for m in minterm_set | dc_set}
    primes: set[Implicant] = set()
    while current:
        combined: set[Implicant] = set()
        used: set[Implicant] = set()
        items = sorted(
            current, key=lambda imp: tuple(-1 if x is None else x for x in imp)
        )
        for a, b in itertools.combinations(items, 2):
            merged = _combine(a, b)
            if merged is not None:
                combined.add(merged)
                used.add(a)
                used.add(b)
        primes |= current - used
        current = combined

    # Stage 2: essential primes, then greedy cover of the rest.
    uncovered = set(minterm_set)
    chart: dict[int, list[Implicant]] = {
        m: [p for p in primes if _implicant_covers(p, m, n_vars)] for m in uncovered
    }
    chosen: list[Implicant] = []
    for m, covering in sorted(chart.items()):
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for p in chosen:
        uncovered -= {m for m in uncovered if _implicant_covers(p, m, n_vars)}
    remaining_primes = [p for p in primes if p not in chosen]
    while uncovered:
        best = max(
            remaining_primes,
            key=lambda p: (
                sum(1 for m in uncovered if _implicant_covers(p, m, n_vars)),
                sum(1 for literal in p if literal is None),
            ),
        )
        covered_now = {m for m in uncovered if _implicant_covers(best, m, n_vars)}
        if not covered_now:  # pragma: no cover - defensive; cannot happen
            raise RuntimeError("prime implicant chart cannot be covered")
        chosen.append(best)
        remaining_primes.remove(best)
        uncovered -= covered_now
    return chosen


# ---------------------------------------------------------------------------
# Multi-valued simplification over parameter boxes
# ---------------------------------------------------------------------------

def boxes_from_disjunction(
    disjunction: Disjunction | Iterable[Conjunction], space: ParameterSpace
) -> list[Box]:
    """Canonicalize each conjunction; drop unsatisfiable ones."""
    boxes: list[Box] = []
    for conjunction in disjunction:
        box = conjunction.canonical(space)
        if all(values for values in box.values()):
            boxes.append(box)
    return boxes


def _box_subsumes(general: Box, specific: Box, space: ParameterSpace) -> bool:
    """True when every instance of ``specific`` lies inside ``general``."""
    for name, general_values in general.items():
        specific_values = specific.get(name, frozenset(space.domain(name)))
        if not specific_values <= general_values:
            return False
    return True


def _try_merge(a: Box, b: Box, space: ParameterSpace) -> Box | None:
    """Merge two boxes that agree everywhere except one parameter.

    The multi-valued analogue of combining two implicants differing in
    one bit: the merged box covers exactly the union of the two.
    """
    keys = set(a) | set(b)
    differing = [
        name
        for name in keys
        if a.get(name, frozenset(space.domain(name)))
        != b.get(name, frozenset(space.domain(name)))
    ]
    if len(differing) > 1:
        return None
    if not differing:
        return dict(a)
    name = differing[0]
    merged_values = a.get(name, frozenset(space.domain(name))) | b.get(
        name, frozenset(space.domain(name))
    )
    merged = {k: v for k, v in a.items() if k != name}
    for k, v in b.items():
        merged.setdefault(k, v)
    if merged_values != frozenset(space.domain(name)):
        merged[name] = merged_values
    else:
        merged.pop(name, None)
    return merged


def _absorb(boxes: list[Box], space: ParameterSpace) -> list[Box]:
    """Remove boxes subsumed by another box in the list."""
    kept: list[Box] = []
    for i, box in enumerate(boxes):
        subsumed = False
        for j, other in enumerate(boxes):
            if i == j:
                continue
            if _box_subsumes(other, box, space):
                # Break mutual-subsumption (equal boxes) ties by index.
                if _box_subsumes(box, other, space) and i < j:
                    continue
                subsumed = True
                break
        if not subsumed:
            kept.append(box)
    return kept


def _box_count(box: Box, space: ParameterSpace) -> int:
    count = 1
    for name in space.names:
        count *= len(box.get(name, frozenset(space.domain(name))))
    return count


def _remove_redundant(boxes: list[Box], space: ParameterSpace) -> list[Box]:
    """Drop boxes entirely covered by the union of the others.

    Exact when the space is small enough to enumerate a box's instances;
    otherwise only pairwise subsumption (already applied) is used.
    """
    limit = 50_000
    result = list(boxes)
    changed = True
    while changed:
        changed = False
        for i, box in enumerate(result):
            others = result[:i] + result[i + 1 :]
            if not others:
                continue
            if _box_count(box, space) > limit:
                continue
            if _box_covered_by_union(box, others, space):
                result.pop(i)
                changed = True
                break
    return result


def _box_covered_by_union(box: Box, others: Sequence[Box], space: ParameterSpace) -> bool:
    names = space.names
    value_lists = [
        sorted(box.get(name, frozenset(space.domain(name))), key=repr) for name in names
    ]
    for combo in itertools.product(*value_lists):
        assignment = dict(zip(names, combo))
        if not any(
            all(
                assignment[name] in other.get(name, frozenset(space.domain(name)))
                for name in names
            )
            for other in others
        ):
            return False
    return True


def _contiguous_range(parameter: Parameter, values: frozenset[Value]) -> tuple[int, int] | None:
    """Indices [lo, hi] when ``values`` is a contiguous ordinal run."""
    indices = sorted(parameter.index_of(v) for v in values)
    if not indices:
        return None
    lo, hi = indices[0], indices[-1]
    if hi - lo + 1 != len(indices):
        return None
    return lo, hi


def predicates_for_value_set(
    parameter: Parameter, values: frozenset[Value]
) -> list[Predicate]:
    """Express a per-parameter value subset with the fewest predicates.

    Exact encodings considered, in order of preference:

    * singleton -> one ``=``;
    * ordinal contiguous prefix -> one ``<=``; suffix -> one ``>``;
      interior run -> ``>`` + ``<=``;
    * otherwise -> one ``!=`` per excluded value (always exact).

    Raises:
        ValueError: for an empty subset (unsatisfiable; callers filter
            these out) or values outside the domain.
    """
    if not values:
        raise ValueError(f"empty value set for parameter {parameter.name!r}")
    domain = frozenset(parameter.domain)
    if not values <= domain:
        raise ValueError(
            f"values {values!r} outside domain of parameter {parameter.name!r}"
        )
    if values == domain:
        return []
    if len(values) == 1:
        (only,) = values
        return [Predicate(parameter.name, Comparator.EQ, only)]

    candidates: list[list[Predicate]] = []
    if parameter.is_ordinal:
        run = _contiguous_range(parameter, values)
        if run is not None:
            lo, hi = run
            range_predicates: list[Predicate] = []
            if lo > 0:
                range_predicates.append(
                    Predicate(parameter.name, Comparator.GT, parameter.domain[lo - 1])
                )
            if hi < len(parameter.domain) - 1:
                range_predicates.append(
                    Predicate(parameter.name, Comparator.LE, parameter.domain[hi])
                )
            candidates.append(range_predicates)

    excluded = sorted(domain - values, key=repr)
    candidates.append(
        [Predicate(parameter.name, Comparator.NEQ, v) for v in excluded]
    )
    return min(candidates, key=len)


def disjunction_from_boxes(boxes: Iterable[Box], space: ParameterSpace) -> Disjunction:
    """Convert boxes back into a predicate disjunction."""
    conjunctions = []
    for box in boxes:
        predicates: list[Predicate] = []
        for name, values in sorted(box.items()):
            predicates.extend(predicates_for_value_set(space[name], values))
        conjunctions.append(Conjunction(predicates))
    return Disjunction(conjunctions)


def simplify_disjunction(
    disjunction: Disjunction | Iterable[Conjunction], space: ParameterSpace
) -> Disjunction:
    """Simplify a disjunction of conjunctions over a finite space.

    Guarantees semantic equivalence: the returned disjunction is
    satisfied by exactly the same instances of ``space`` as the input.
    """
    boxes = boxes_from_disjunction(disjunction, space)
    boxes = _absorb(boxes, space)

    # Iterated merging, QM-style: combine while any pair merges.
    changed = True
    while changed:
        changed = False
        for i, j in itertools.combinations(range(len(boxes)), 2):
            merged = _try_merge(boxes[i], boxes[j], space)
            if merged is not None:
                survivors = [
                    box for k, box in enumerate(boxes) if k not in (i, j)
                ]
                survivors.append(merged)
                boxes = _absorb(survivors, space)
                changed = True
                break

    boxes = _remove_redundant(boxes, space)
    return disjunction_from_boxes(boxes, space)
