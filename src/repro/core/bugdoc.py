"""The BugDoc facade: one entry point for the debugging algorithms.

``BugDoc`` wraps a black-box executor, a parameter space, and prior
provenance, and exposes the two goals of the problem definition
(Section 3): :meth:`BugDoc.find_one` (at least one minimal definitive
root cause) and :meth:`BugDoc.find_all` (all of them).  The
``COMBINED`` algorithm -- Stacked Shortcut followed by Debugging
Decision Trees -- is what the paper evaluates on real-world pipelines
(Figure 7).
"""

from __future__ import annotations

import dataclasses
import enum
import random
from dataclasses import dataclass, field

from .budget import BudgetExhausted, InstanceBudget
from .context import StrategyContext
from .ddt import DDTConfig, DDTResult, debugging_decision_trees
from .history import ExecutionHistory
from .predicates import Conjunction, Disjunction
from .quine_mccluskey import simplify_disjunction
from .rootcause import prune_to_minimal
from .session import DebugSession
from .shortcut import ShortcutResult, select_good_instance, shortcut
from .stacked import DEFAULT_STACK_WIDTH, StackedShortcutResult, stacked_shortcut
from .types import Executor, Instance, Outcome, ParameterSpace

__all__ = ["Algorithm", "BugDocReport", "BugDoc"]


class Algorithm(enum.Enum):
    """Which debugging strategy to run."""

    SHORTCUT = "shortcut"
    STACKED_SHORTCUT = "stacked_shortcut"
    DECISION_TREES = "decision_trees"
    COMBINED = "combined"


@dataclass
class BugDocReport:
    """Result of one BugDoc invocation.

    Attributes:
        algorithm: the strategy that produced this report.
        causes: asserted root causes, most concise first.
        explanation: the causes as a (simplified) disjunction.
        instances_executed: new pipeline executions charged.
        budget_exhausted: whether the search stopped on budget.
        shortcut_result / stacked_result / ddt_result: per-stage
            details when the corresponding stage ran.
    """

    algorithm: Algorithm
    causes: list[Conjunction] = field(default_factory=list)
    explanation: Disjunction = field(default_factory=Disjunction)
    instances_executed: int = 0
    budget_exhausted: bool = False
    shortcut_result: ShortcutResult | None = None
    stacked_result: StackedShortcutResult | None = None
    ddt_result: DDTResult | None = None

    @property
    def asserted(self) -> bool:
        return bool(self.causes)


class BugDoc:
    """Automatic root-cause debugging of a black-box pipeline.

    Typical use::

        bugdoc = BugDoc(executor, space, history=prior_runs, budget=200)
        report = bugdoc.find_one()
        for cause in report.causes:
            print(cause)

    Args:
        executor: the black-box pipeline (instance -> outcome).
        space: the manipulable parameter space.
        history: previously-run instances (may be empty).
        budget: maximum number of *new* executions, or None.
        seed: RNG seed for instance sampling (deterministic runs).
        session: alternatively, a pre-built session (e.g. a parallel
            one from :mod:`repro.pipeline.runner`); when given, the
            executor/space/history/budget arguments must be None.
        engine: evaluation engine for the search's own CPU work --
            ``"columnar"`` (default, the bitset fast path of
            :mod:`repro.core.engine`) or ``"reference"`` (the original
            dict-based implementations).  Applies to default-built
            :class:`DDTConfig` objects; an explicitly passed
            ``ddt_config`` keeps its own ``engine`` field.  Both
            engines produce identical reports.
        shard_plan: optional :class:`~repro.core.shards.ShardPlan`
            pinning the columnar store's shard sizing and worker count
            (None auto-sizes from the history and CPU count).  Any plan
            produces byte-identical reports; it only changes how the
            engine's work is laid out.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        space: ParameterSpace | None = None,
        history: ExecutionHistory | None = None,
        budget: int | InstanceBudget | None = None,
        seed: int = 0,
        session: DebugSession | None = None,
        engine: str = "columnar",
        shard_plan=None,
    ):
        if session is not None:
            if executor is not None or space is not None or history is not None:
                raise ValueError("pass either a session or its components, not both")
            self._session = session
        else:
            if executor is None or space is None:
                raise ValueError("executor and space are required without a session")
            if isinstance(budget, int):
                budget = InstanceBudget(budget)
            self._session = DebugSession(
                executor, space, history=history, budget=budget
            )
        self._engine = engine
        self._shard_plan = shard_plan
        # One seam for every strategy: engine selection, history scans,
        # and budget charging all resolve through this context, so
        # Shortcut/Stacked and DDT share the same (incrementally
        # maintained) columnar store instead of three ad-hoc paths.
        self._context = StrategyContext.for_session(
            self._session, engine=engine, shard_plan=shard_plan
        )
        self._rng = random.Random(seed)

    @property
    def session(self) -> DebugSession:
        return self._session

    @property
    def strategy_context(self) -> StrategyContext:
        """The shared engine-selection/budget seam of this invocation."""
        return self._context

    @property
    def history(self) -> ExecutionHistory:
        return self._session.history

    @property
    def instances_executed(self) -> int:
        return self._session.new_executions

    # -- Seeding --------------------------------------------------------------
    def ensure_contrasting_instances(self, max_draws: int = 200) -> bool:
        """Sample random instances until history has a failure and a success.

        BugDoc's algorithms need at least one instance of each outcome.
        Sampled executions are charged to the budget (they are part of
        the debugging cost).

        Returns:
            True when both outcomes are present afterwards.
        """
        history = self._session.history
        draws = 0
        while (not history.failures or not history.successes) and draws < max_draws:
            candidate = self._session.space.random_instance(self._rng)
            try:
                self._session.evaluate(candidate)
            except BudgetExhausted:
                break
            draws += 1
        return bool(history.failures) and bool(history.successes)

    # -- Goals ------------------------------------------------------------------
    def find_one(
        self,
        algorithm: Algorithm = Algorithm.STACKED_SHORTCUT,
        stack_width: int = DEFAULT_STACK_WIDTH,
        ddt_config: DDTConfig | None = None,
    ) -> BugDocReport:
        """Goal (i): find at least one minimal definitive root cause."""
        if algorithm is Algorithm.DECISION_TREES:
            config = ddt_config or DDTConfig(find_all=False, engine=self._engine)
            if config.find_all:
                config = dataclasses.replace(config, find_all=False)
            return self._run_ddt(config)
        if algorithm is Algorithm.SHORTCUT:
            return self._run_shortcut()
        if algorithm is Algorithm.STACKED_SHORTCUT:
            return self._run_stacked(stack_width)
        return self._run_combined(stack_width, ddt_config, find_all=False)

    def find_all(
        self,
        algorithm: Algorithm = Algorithm.DECISION_TREES,
        stack_width: int = DEFAULT_STACK_WIDTH,
        ddt_config: DDTConfig | None = None,
    ) -> BugDocReport:
        """Goal (ii): find all minimal definitive root causes."""
        if algorithm in (Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT):
            raise ValueError(
                "the shortcut algorithms target FindOne; use DECISION_TREES "
                "or COMBINED for FindAll"
            )
        if algorithm is Algorithm.DECISION_TREES:
            return self._run_ddt(
                ddt_config or DDTConfig(find_all=True, engine=self._engine)
            )
        return self._run_combined(stack_width, ddt_config, find_all=True)

    # -- Strategy implementations ------------------------------------------------
    def _anchor_failure(self) -> Instance:
        history = self._session.history
        if not history.failures:
            self.ensure_contrasting_instances()
        if not history.failures:
            raise ValueError("no failing instance available to debug")
        return history.failures[0]

    def _run_shortcut(self) -> BugDocReport:
        report = BugDocReport(algorithm=Algorithm.SHORTCUT)
        before = self._session.new_executions
        try:
            failing = self._anchor_failure()
            good = select_good_instance(
                self._session, failing, context=self._context
            )
            if good is None:
                raise ValueError("no successful instance available to compare with")
            result = shortcut(
                self._session, failing, good, context=self._context
            )
            report.shortcut_result = result
            if result.asserted:
                report.causes = [result.cause]
                report.explanation = Disjunction(report.causes)
        except BudgetExhausted:
            report.budget_exhausted = True
        report.instances_executed = self._session.new_executions - before
        return report

    def _run_stacked(self, stack_width: int) -> BugDocReport:
        report = BugDocReport(algorithm=Algorithm.STACKED_SHORTCUT)
        before = self._session.new_executions
        try:
            failing = self._anchor_failure()
            result = stacked_shortcut(
                self._session,
                failing=failing,
                stack_width=stack_width,
                context=self._context,
            )
            report.stacked_result = result
            if result.asserted:
                report.causes = [result.cause]
                report.explanation = Disjunction(report.causes)
        except BudgetExhausted:
            report.budget_exhausted = True
        report.instances_executed = self._session.new_executions - before
        return report

    def _ddt_context(self, config: DDTConfig) -> StrategyContext:
        """The context for a DDT run: the shared one when the engines
        agree, a fresh one honoring an explicitly-passed config's own
        ``engine`` field otherwise."""
        if config.engine == self._engine:
            return self._context
        return StrategyContext.for_session(
            self._session, engine=config.engine, shard_plan=self._shard_plan
        )

    def _run_ddt(self, config: DDTConfig) -> BugDocReport:
        report = BugDocReport(algorithm=Algorithm.DECISION_TREES)
        before = self._session.new_executions
        if not self._session.history.failures or not self._session.history.successes:
            self.ensure_contrasting_instances()
        result = debugging_decision_trees(
            self._session, config, context=self._ddt_context(config)
        )
        report.ddt_result = result
        report.causes = list(result.causes)
        report.explanation = result.explanation
        report.budget_exhausted = result.budget_exhausted
        report.instances_executed = self._session.new_executions - before
        return report

    def _run_combined(
        self,
        stack_width: int,
        ddt_config: DDTConfig | None,
        find_all: bool,
    ) -> BugDocReport:
        """Stacked Shortcut first, then Debugging Decision Trees (Figure 7).

        The stacked result seeds the pool of causes; DDT contributes
        inequality causes and additional disjuncts.  Causes are merged,
        filtered against the final history, and simplified together.
        """
        report = BugDocReport(algorithm=Algorithm.COMBINED)
        before = self._session.new_executions
        causes: list[Conjunction] = []
        try:
            failing = self._anchor_failure()
            stacked = stacked_shortcut(
                self._session,
                failing=failing,
                stack_width=stack_width,
                context=self._context,
            )
            report.stacked_result = stacked
            if stacked.asserted:
                causes.append(stacked.cause)
        except (BudgetExhausted, ValueError):
            report.budget_exhausted = self._session.budget.exhausted()

        config = ddt_config or DDTConfig(find_all=find_all, engine=self._engine)
        ddt = debugging_decision_trees(
            self._session, config, context=self._ddt_context(config)
        )
        report.ddt_result = ddt
        causes.extend(ddt.causes)
        report.budget_exhausted = report.budget_exhausted or ddt.budget_exhausted

        causes = [c for c in causes if not self._context.refutes(c)]
        causes = prune_to_minimal(causes, self._session.space)
        if causes:
            explanation = simplify_disjunction(
                Disjunction(causes), self._session.space
            )
            report.causes = list(explanation)
            report.explanation = explanation
        report.instances_executed = self._session.new_executions - before
        return report
