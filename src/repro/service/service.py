"""DebugService: many concurrent debugging jobs over shared infrastructure.

This is the production-shaped layer the ROADMAP's north star asks for:
clients submit :class:`~repro.service.jobs.JobSpec`s and the service

1. builds a per-job :class:`~repro.core.session.DebugSession` whose
   budget/history accounting stays exactly the paper's (each job is
   charged for instances new *to it*),
2. routes every pipeline execution through one
   :class:`~repro.service.scheduler.SharedScheduler` (fair, elastic,
   budget-aware worker pool), and
3. deduplicates executions across jobs -- and across service restarts --
   via the :class:`~repro.service.cache.ExecutionCache`, optionally
   backed by a :class:`~repro.provenance.store.SQLiteProvenanceStore`.

Jobs run on a *bounded pool* of lightweight controller threads (the
algorithm logic is cheap; the pipeline executions it requests are the
expensive part and those are throttled by the shared pool), so a
service with 8 workers can happily multiplex dozens of in-flight jobs
-- and an always-on front-end accepting jobs for days cannot leak one
thread per accepted job: accepted jobs queue, controllers are reused,
and idle controllers retire.
"""

from __future__ import annotations

import collections
import hashlib
import json
import threading
import time

from ..core.budget import InstanceBudget
from ..core.bugdoc import BugDoc
from ..core.session import DebugSession
from ..core.stacked import DEFAULT_STACK_WIDTH
from ..exec.events import EventBus
from ..exec.autoscale import AdaptiveSizer
from ..exec.pool import ProcessPool
from ..obs.metrics import EventMetrics, MetricsRegistry
from ..obs.sink import DurableEventBus
from ..provenance.store import ProvenanceStore, space_key
from .cache import CachedExecutor, ExecutionCache
from .jobs import JobCancelled, JobGoal, JobHandle, JobResult, JobSpec, JobStatus
from .scheduler import SharedScheduler

__all__ = ["DebugService", "report_fingerprint", "spec_fingerprint"]


def spec_fingerprint(spec: JobSpec) -> str:
    """Content fingerprint of what a job *asks for*.

    Two submissions with the same fingerprint request the same debugging
    work: same workflow, algorithm, goal, budget, seed, parameter space
    (via its interned code tables) and -- for process jobs -- the same
    executor spec.  In-process callables cannot be fingerprinted, so
    they contribute only their presence.  This is the grouping key
    ``repro query`` aggregates by across runs.
    """
    executor = (
        spec.executor_spec.fingerprint
        if spec.executor_spec is not None
        else ("inline" if spec.executor is not None else None)
    )
    payload = json.dumps(
        {
            "workflow": spec.workflow,
            "algorithm": spec.algorithm.value,
            "goal": spec.goal.value,
            "budget": spec.budget,
            "seed": spec.seed,
            "space": space_key(spec.space),
            "executor": executor,
            "stack_width": spec.stack_width,
            "parallel_batches": spec.parallel_batches,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def report_fingerprint(result: JobResult) -> str:
    """Content fingerprint of what a job *produced*.

    Hashes the externally-meaningful outcome -- status, root causes,
    budget accounting -- so byte-identical debugging results compare
    equal across persistence modes and service restarts (the
    ``bench_event_overhead`` identity gate compares exactly this).
    """
    causes = None
    if result.report is not None:
        causes = sorted(str(cause) for cause in result.report.causes)
    payload = json.dumps(
        {
            "status": result.status.value,
            "causes": causes,
            "budget_spent": result.budget_spent,
            "new_executions": result.new_executions,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class _CancellationGuard:
    """Executor wrapper that stops a cancelled job at the next slice.

    Sits between the scheduler and the cached executor, so the check
    runs on the worker slot right before the pipeline would execute:
    requests queued when :meth:`JobHandle.cancel` lands resolve by
    raising :class:`~repro.service.jobs.JobCancelled` instead of
    running, and the session refunds their budget charge.
    """

    __slots__ = ("_inner", "_cancel", "_job_id")

    def __init__(self, inner, cancel_event: threading.Event, job_id: str):
        self._inner = inner
        self._cancel = cancel_event
        self._job_id = job_id

    def __call__(self, instance):
        if self._cancel.is_set():
            raise JobCancelled(self._job_id)
        return self._inner(instance)


class DebugService:
    """Concurrent debugging-job service.

    Args:
        workers: service-wide cap on concurrent pipeline executions.
        cache: shared execution cache; built internally when omitted.
        store: convenience -- when given (and ``cache`` is omitted), the
            internal cache is backed by this persistent provenance
            store, making outcomes durable across services.
        max_concurrent_jobs: cap on jobs running at once; further
            submissions queue (admission control, not an error).  This
            is the controller-pool size: a job only runs while one of
            the pooled controller threads holds it, so the cap also
            bounds the service's thread footprint.
        cache_max_entries: optional LRU bound on the internal cache's
            in-memory tier, for long-lived services whose outcome sets
            would otherwise grow without bound.  Ignored when an
            explicit ``cache`` is passed (bound it at construction).
        weighted_fairness: honor :attr:`JobSpec.priority` as a
            round-robin weight in the shared scheduler.  Off by default,
            which preserves the original unweighted FIFO round-robin
            regardless of submitted priorities.
        pool: optional :class:`~repro.exec.pool.ProcessPool` or
            :class:`~repro.exec.remote.RemoteWorkerPool` (any object
            with the pool contract: ``executor()`` + ``stats()``).
            Jobs whose spec carries an ``executor_spec`` then execute
            their pipelines *out of process* (or on the remote fleet):
            the service's scheduler worker threads dispatch each run to
            a pool worker, while budget/history accounting, the shared
            cache, and cancellation stay in-parent and unchanged.  The
            pool is not owned: :meth:`shutdown` leaves it running for
            other owners.  A fleet pool additionally gets the service's
            event bus bound (``bind_events``), so membership changes
            land in the durable telemetry log under the ``fleet`` job.
        autoscale: size the attached pool adaptively from live
            scheduler queue depth (an
            :class:`~repro.exec.autoscale.AdaptiveSizer` owned and torn
            down by the service) instead of leaving it at its fixed
            construction size.  The decision trail surfaces in
            ``stats()["pool"]["autoscale"]``.
        persist_events: write job event logs through to the provenance
            store (on by default; effective only when the service's
            cache is backed by a schema-v4 store).  Readers then replay
            persisted prefixes transparently after a restart.  Pass
            False to keep event logs in-memory only.

    Typical use::

        with DebugService(workers=8) as service:
            handles = [service.submit(spec) for spec in specs]
            results = [handle.result() for handle in handles]
    """

    def __init__(
        self,
        workers: int = 5,
        cache: ExecutionCache | None = None,
        store: ProvenanceStore | None = None,
        max_concurrent_jobs: int | None = None,
        cache_max_entries: int | None = None,
        weighted_fairness: bool = False,
        pool: ProcessPool | None = None,
        persist_events: bool = True,
        autoscale: bool = False,
    ):
        if cache is not None and store is not None:
            raise ValueError("pass either a cache or a store, not both")
        if cache is not None and cache_max_entries is not None:
            raise ValueError(
                "cache_max_entries applies to the internally-built cache; "
                "bound an explicit cache at its construction instead"
            )
        if max_concurrent_jobs is not None and max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be at least 1")
        self._scheduler = SharedScheduler(
            workers=workers,
            name="debug-service",
            weighted_fairness=weighted_fairness,
        )
        self._cache = (
            cache
            if cache is not None
            else ExecutionCache(store=store, max_entries=cache_max_entries)
        )
        self._pool = pool
        # Durable telemetry: when the cache is backed by a schema-v4
        # provenance store, job event logs are written through to it
        # (batched off the hot path) and readers transparently replay
        # persisted prefixes after a restart.  ``persist_events=False``
        # opts out (the event-overhead benchmark's baseline).
        event_store = store if store is not None else self._cache.store
        if persist_events and hasattr(event_store, "append_job_events"):
            self._events: EventBus = DurableEventBus(event_store)
        else:
            self._events = EventBus()
        self._metrics = MetricsRegistry()
        # Fleet pools publish membership lifecycle (joins, suspicions,
        # evictions, rejoins) into the same -- possibly durable -- bus
        # as job progress, under the "fleet" job id.
        if pool is not None and hasattr(pool, "bind_events"):
            pool.bind_events(self._events)
        self._sizer = None
        if autoscale and pool is not None:
            self._sizer = AdaptiveSizer(
                pool, depth=lambda: self._scheduler.pending
            )
        self._jobs: dict[str, JobHandle] = {}
        self._lock = threading.Lock()
        # Bounded admission: accepted jobs queue on a deque served by a
        # pool of reusable controller threads instead of spawning one
        # thread per job.  ``max_concurrent_jobs`` *is* the controller
        # cap (a job only runs while a controller holds it); without an
        # explicit cap the pool is still bounded -- generously, so
        # unconstrained workloads behave as before -- and idle
        # controllers retire after a grace period.
        self._pending: collections.deque[JobHandle] = collections.deque()
        self._work = threading.Condition()
        self._controllers = 0
        self._idle_controllers = 0
        self._controller_serial = 0
        self._max_controllers = (
            max_concurrent_jobs
            if max_concurrent_jobs is not None
            else max(32, workers * 4)
        )
        self._controller_idle_seconds = 2.0
        self._shutdown = False

    # -- Introspection -------------------------------------------------------
    @property
    def scheduler(self) -> SharedScheduler:
        return self._scheduler

    @property
    def cache(self) -> ExecutionCache:
        return self._cache

    @property
    def events(self) -> EventBus:
        """The service-wide job event bus (see ``JobHandle.events``)."""
        return self._events

    @property
    def pool(self) -> ProcessPool | None:
        """The attached process pool, if any (not owned by the service)."""
        return self._pool

    @property
    def metrics(self) -> MetricsRegistry:
        """The service-wide metrics registry (``repro serve --metrics``)."""
        return self._metrics

    @property
    def jobs(self) -> dict[str, JobHandle]:
        with self._lock:
            return dict(self._jobs)

    def stats(self) -> dict[str, object]:
        """Service-wide counters for dashboards and the CLI."""
        with self._lock:
            statuses: dict[str, int] = {}
            for handle in self._jobs.values():
                key = handle.status.value
                statuses[key] = statuses.get(key, 0) + 1
        with self._work:
            admission = {
                "pending": len(self._pending),
                "controllers": self._controllers,
                "idle_controllers": self._idle_controllers,
                "max_controllers": self._max_controllers,
            }
        stats: dict[str, object] = {
            "jobs": statuses,
            "admission": admission,
            "scheduler": self._scheduler.stats_snapshot(),
            "cache": self._cache.stats.snapshot(),
        }
        if self._pool is not None:
            stats["pool"] = self._pool.stats()
        if isinstance(self._events, DurableEventBus):
            # Barrier first: without it a stats call racing the
            # flusher's coalesce window undercounts `flushed`.
            self._events.flush(timeout=5.0)
            stats["events"] = self._events.sink.stats()
        return stats

    # -- Submission ----------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Accept a job and queue it for a pooled controller thread."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            if spec.job_id in self._jobs:
                raise ValueError(f"duplicate job id {spec.job_id!r}")
            handle = JobHandle(spec)
            handle._bus = self._events
            self._jobs[spec.job_id] = handle
            if spec.trace is not None:
                # Stamp the submission-edge trace context on every event
                # this job publishes (child spans published by dispatch
                # and workers carry their own ids and win the merge).
                self._events.bind_context(spec.job_id, spec.trace)
            # Everything between acceptance and the controller handoff
            # happens under the same lock as the shutdown check:
            # shutdown() flips _shutdown under this lock *before* it
            # drains the bus, so it can never interleave between a
            # job's registration and its "submitted" event / dispatch.
            # (Publishing first also keeps "submitted" the guaranteed
            # head of every job's stream.)
            self._events.publish(
                spec.job_id,
                "submitted",
                {
                    "workflow": spec.workflow,
                    "algorithm": spec.algorithm.value,
                    "goal": spec.goal.value,
                    "budget": spec.budget,
                    "process": spec.executor_spec is not None
                    and self._pool is not None,
                    "spec_fingerprint": spec_fingerprint(spec),
                },
            )
            if spec.priority != 1:
                self._scheduler.set_priority(spec.job_id, spec.priority)
            self._dispatch(handle)
        return handle

    def _dispatch(self, handle: JobHandle) -> None:
        """Queue a handle for the controller pool, growing it if needed."""
        with self._work:
            self._pending.append(handle)
            if self._idle_controllers > 0:
                self._work.notify()
            elif self._controllers < self._max_controllers:
                self._controllers += 1
                self._controller_serial += 1
                threading.Thread(
                    target=self._controller_loop,
                    name=f"debug-controller-{self._controller_serial}",
                    daemon=True,
                ).start()
            # else: every controller is busy; the handle waits its turn
            # (admission control, not an error).

    def _controller_loop(self) -> None:
        """One pooled controller: run queued jobs until idle, then retire.

        Retirement is decided under the work lock with the queue
        observed empty, and growth spawns a controller whenever no idle
        one exists -- so a pending handle always has a controller bound
        for it and none can be stranded.
        """
        while True:
            with self._work:
                while not self._pending:
                    self._idle_controllers += 1
                    signalled = self._work.wait(self._controller_idle_seconds)
                    self._idle_controllers -= 1
                    if not self._pending and not signalled:
                        self._controllers -= 1
                        return
                handle = self._pending.popleft()
            self._run_job(handle)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation of a submitted job (see
        :meth:`JobHandle.cancel` for the exact semantics).

        Returns:
            True when the request was registered before the job reached
            a terminal state.

        Raises:
            KeyError: for an unknown job id.
        """
        with self._lock:
            handle = self._jobs[job_id]
        return handle.cancel()

    def run_all(self, specs, timeout: float | None = None) -> list[JobResult]:
        """Submit every spec and wait for all results (submission order).

        ``timeout`` is an overall deadline for the whole batch, not a
        per-job allowance.  When it expires, every remaining handle is
        still polled (a job that finished after an earlier one timed
        out is collected, not orphaned) and *then* one
        :class:`TimeoutError` is raised naming every job still
        unfinished after the sweep.  The jobs themselves keep running
        and every result -- collected or not -- stays retrievable via
        the service's ``jobs`` handles.
        """
        handles = [self.submit(spec) for spec in specs]
        deadline = None if timeout is None else time.monotonic() + timeout
        collected: dict[str, JobResult] = {}
        for handle in handles:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                collected[handle.job_id] = handle.result(remaining)
            except TimeoutError:
                continue  # sweep the rest; stragglers are named below
        pending = [h.job_id for h in handles if h.job_id not in collected]
        if pending:
            raise TimeoutError(
                f"batch deadline of {timeout}s expired with "
                f"{len(pending)} job(s) unfinished: {pending}; "
                "they continue running -- collect them via "
                "service.jobs[...].result()"
            )
        return [collected[handle.job_id] for handle in handles]

    # -- Session wiring ------------------------------------------------------
    def build_session(
        self,
        spec: JobSpec,
        cancel_event: threading.Event | None = None,
        progress=None,
    ) -> DebugSession:
        """The per-job session, wired into the shared scheduler + cache.

        Exposed so advanced clients can drive a session directly while
        still sharing the service's infrastructure.  ``cancel_event``
        (set by the job's handle) arms the per-slice cancellation check;
        ``progress`` becomes the session's neutral event hook.
        """
        session, __ = self._build_session_parts(spec, cancel_event, progress)
        return session

    def _inner_executor(self, spec: JobSpec):
        """The job's innermost executor: in-process or process-pool."""
        if spec.executor_spec is not None and self._pool is not None:
            return self._pool.executor(
                spec.executor_spec,
                workflow=spec.workflow,
                trace=spec.trace,
                emit=(
                    self._events.publisher(spec.job_id)
                    if spec.trace is not None
                    else None
                ),
            )
        if spec.executor is None:
            raise ValueError(
                f"job {spec.job_id!r} has only an executor_spec but the "
                "service was built without a process pool"
            )
        return spec.executor

    def _build_session_parts(
        self,
        spec: JobSpec,
        cancel_event: threading.Event | None,
        progress,
    ) -> tuple[DebugSession, CachedExecutor]:
        cached = self._cache.executor(spec.workflow, self._inner_executor(spec))
        guarded = cached
        if cancel_event is not None:
            guarded = _CancellationGuard(guarded, cancel_event, spec.job_id)
        history = None
        if spec.history is not None:
            # Prior provenance is free for the submitting job (its
            # session seeds from it) and, being deterministic outcomes
            # of the same workflow, it warms the shared cache for every
            # other job too.  The session gets its own copy: histories
            # are mutated in place, and clients may share one
            # ExecutionHistory object across specs.
            self._cache.warm(spec.workflow, spec.history)
            history = spec.history.copy()
        budget = InstanceBudget(spec.budget)
        # Every execution is routed through the shared pool, so the
        # service-wide worker cap and fair interleave apply to single
        # evaluations too.  Calls that already run on a worker slot
        # (batch tasks) execute inline -- see ScheduledExecutor.
        scheduled = self._scheduler.executor(spec.job_id, guarded)
        session = DebugSession(
            scheduled,
            spec.space,
            history=history,
            budget=budget,
            # Speculative batches (Section 4.3) additionally fan out on
            # the shared pool; a serial session stays deterministic.
            backend=(
                self._scheduler.backend(spec.job_id)
                if spec.parallel_batches
                else None
            ),
            progress=progress,
        )
        return session, cached

    # -- Job execution -------------------------------------------------------
    def _run_job(self, handle: JobHandle) -> None:
        spec = handle.spec
        started = time.perf_counter()
        session: DebugSession | None = None
        cached: CachedExecutor | None = None
        engine_stats: dict[str, int | str] | None = None
        # Every job event flows through the metrics adapter: forwarded
        # to the bus unchanged, counted into the service registry, and
        # tallied per job for the terminal metrics_snapshot event.
        progress = EventMetrics(
            self._events.publisher(spec.job_id), self._metrics
        )
        try:
            # A job cancelled while queued behind admission control (or
            # between submit and start) never builds a session at all.
            handle.check_cancelled()
            handle._mark_running()
            self._events.publish(spec.job_id, "started")
            build_started = time.perf_counter()
            session, cached = self._build_session_parts(
                spec,
                handle._cancel,
                progress,
            )
            # Session construction covers the persistence-facing setup:
            # warming the shared cache from prior provenance and (on
            # store-backed services) hydrating interned code tables.
            progress(
                "span",
                {
                    "name": "persistence",
                    "seconds": time.perf_counter() - build_started,
                },
            )
            handle.session = session
            value: object = None
            report = None
            if spec.run is not None:
                value = spec.run(session)
            else:
                bugdoc = BugDoc(session=session, seed=spec.seed)
                stack_width = (
                    spec.stack_width
                    if spec.stack_width is not None
                    else DEFAULT_STACK_WIDTH
                )
                if spec.goal is JobGoal.FIND_ALL:
                    # Invalid algorithm/goal combinations were rejected
                    # at JobSpec construction time.
                    report = bugdoc.find_all(
                        spec.algorithm,
                        stack_width=stack_width,
                        ddt_config=spec.ddt_config,
                    )
                else:
                    report = bugdoc.find_one(
                        spec.algorithm,
                        stack_width=stack_width,
                        ddt_config=spec.ddt_config,
                    )
                engine_stats = bugdoc.strategy_context.engine_stats()
            result = JobResult(
                job_id=spec.job_id,
                status=JobStatus.SUCCEEDED,
                report=report,
                value=value,
                budget_spent=session.budget.spent,
                new_executions=session.new_executions,
                wall_seconds=time.perf_counter() - started,
                cache_stats=cached.stats_snapshot(),
                engine_stats=engine_stats,
            )
        except BaseException as error:  # job isolation: never kill the service
            with self._lock:
                shutting_down = self._shutdown
            # A job torn down by an explicit cancel() or by service
            # shutdown was cancelled, not broken -- do not masquerade as
            # a genuine failure.
            cancelled = isinstance(error, JobCancelled) or shutting_down
            # The unwind abandoned any sibling batch requests still on
            # workers; let them settle (each is charged at entry and
            # completed-or-refunded at exit) so the reported accounting
            # is consistent.  Cancelled siblings fail fast at the guard.
            # A pipeline stuck past the grace period cannot hold
            # teardown hostage: the result is then flagged unsettled.
            settled = self._scheduler.wait_quiescent(spec.job_id, timeout=30.0)
            result = JobResult(
                job_id=spec.job_id,
                status=JobStatus.CANCELLED if cancelled else JobStatus.FAILED,
                error=error,
                budget_spent=session.budget.spent if session is not None else 0,
                new_executions=(
                    session.new_executions if session is not None else 0
                ),
                wall_seconds=time.perf_counter() - started,
                cache_stats=(
                    cached.stats_snapshot() if cached is not None else None
                ),
                engine_stats=engine_stats,
                accounting_settled=settled,
            )
        finally:
            self._scheduler.clear_priority(spec.job_id)
        self._publish_metrics_snapshot(progress, result)
        self._publish_finished(result)
        handle._finish(result)

    @staticmethod
    def _publish_metrics_snapshot(
        progress: EventMetrics, result: JobResult
    ) -> None:
        """The job's penultimate event: its own telemetry rollup.

        Event counts and span totals (from the metrics adapter) plus
        the cache/engine counter snapshots, so per-job breakdowns stay
        queryable from the durable event log alone.  Best-effort, like
        every observability path.
        """
        try:
            payload = progress.snapshot_payload()
            payload["cache"] = result.cache_stats
            payload["engine"] = result.engine_stats
            progress("metrics_snapshot", payload)
        except Exception:
            pass

    def _publish_finished(self, result: JobResult) -> None:
        """Close the job's event stream with its terminal event.

        Published from every teardown path -- success, failure, and
        cancellation -- *before* the handle resolves, so a client that
        waited on ``result()`` already finds the complete stream.  Must
        never prevent the handle from resolving.
        """
        causes = None
        if result.report is not None:
            causes = [str(cause) for cause in result.report.causes]
        try:
            self._events.publish(
                result.job_id,
                "finished",
                {
                    "status": result.status.value,
                    "budget_spent": result.budget_spent,
                    "new_executions": result.new_executions,
                    "wall_seconds": result.wall_seconds,
                    "causes": causes,
                    "error": (
                        repr(result.error) if result.error is not None else None
                    ),
                    "report_fingerprint": report_fingerprint(result),
                },
                close=True,
            )
        except Exception:
            pass

    # -- Lifecycle -----------------------------------------------------------
    def discard_job(self, job_id: str) -> None:
        """Forget a finished job's handle *and* its event log.

        Handles and event logs are retained so late clients can collect
        results and replay complete streams; a long-lived service that
        churns through many jobs calls this once a job's result and
        events have been consumed, bounding both tables.

        Raises:
            KeyError: for an unknown job id.
            ValueError: for a job that has not reached a terminal state
                (discarding a live job would orphan its events).
        """
        with self._lock:
            handle = self._jobs[job_id]
            if not handle.status.terminal:
                raise ValueError(f"job {job_id!r} is still {handle.status.value}")
            del self._jobs[job_id]
        self._events.discard(job_id)

    def shutdown(self) -> None:
        """Stop accepting jobs and tear down the scheduler.

        Queued execution requests are rejected; still-running jobs see
        their next request error and finish with status CANCELLED.
        Live event firehoses end; per-job logs stay publishable so
        those teardowns still land their terminal events.
        """
        with self._lock:
            self._shutdown = True
        if self._sizer is not None:
            self._sizer.stop()
        self._scheduler.shutdown()
        self._events.shutdown()
        if isinstance(self._events, DurableEventBus):
            # Drain the sink and switch it to synchronous writes, so
            # jobs still tearing down after shutdown land their terminal
            # events in the store (the bus keeps accepting them).
            self._events.close()

    def __enter__(self) -> "DebugService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
