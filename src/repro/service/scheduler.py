"""Compatibility shim: the shared scheduler now lives in
:mod:`repro.concurrency.scheduler`.

The scheduler is a neutral primitive used by both the pipeline layer
(:class:`~repro.pipeline.runner.ParallelDebugSession`) and the service
layer, so it moved below both to avoid ``pipeline -> service`` upward
imports.  This module re-exports the public names so existing
``repro.service.scheduler`` imports keep working.
"""

from __future__ import annotations

from ..concurrency.scheduler import (
    ScheduledExecutor,
    SchedulerBackend,
    SchedulerStats,
    SharedScheduler,
)

__all__ = [
    "SharedScheduler",
    "SchedulerBackend",
    "ScheduledExecutor",
    "SchedulerStats",
]
