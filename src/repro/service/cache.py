"""Cross-session execution cache with single-flight deduplication.

BugDoc's cost model is dominated by black-box pipeline executions
(Section 3), so the service layer never runs the same instance twice
when it can help it.  :class:`ExecutionCache` provides two tiers:

* an in-memory tier keyed by ``(workflow, instance)`` shared by every
  job the service is running, and
* an optional persistent tier backed by a
  :class:`~repro.provenance.store.ProvenanceStore` (typically the
  SQLite store), so outcomes survive across service restarts and are
  shared between *sessions of different processes* over one database.

Both tiers sit *below* the per-job :class:`~repro.core.session.DebugSession`:
the session still charges its own budget for instances new to its
history (the paper charges each algorithm only for instances new *to
it*), the cache merely makes the charge cheap and keeps the global
execution count minimal.

Both tiers are built on the single-flight primitive
(:class:`~repro.concurrency.singleflight.SingleFlightCache`, re-exported
here for compatibility): when several threads ask for the same uncached
key concurrently, exactly one of them (the *leader*) runs the inner
executor; the others block until the leader finishes and then share its
outcome.  If the leader's execution raises, the flight is abandoned and
one waiter takes over as the new leader -- a transient failure never
poisons the cache and never fails bystander jobs.
"""

from __future__ import annotations

import threading
import time

from ..concurrency.singleflight import CacheStats, SingleFlightCache
from ..core.types import Executor, Instance, Outcome
from ..provenance.record import ProvenanceRecord
from ..provenance.store import ProvenanceStore

__all__ = ["CacheStats", "ExecutionCache", "SingleFlightCache", "CachedExecutor"]

DEFAULT_WORKFLOW = "service"


def instance_cache_key(workflow: str, instance: Instance) -> tuple:
    """Canonical cross-job cache key for one pipeline instance."""
    return (workflow, instance)


class ExecutionCache:
    """The service's shared executor cache: memory tier + provenance tier.

    Args:
        store: optional persistent tier.  Lookups that miss the memory
            tier consult ``store.lookup(workflow, instance)``; fresh
            executions are written through with ``store.upsert`` so a
            later service (or another process sharing the database)
            starts warm.
        record_cost: when True (default), the wall-clock seconds of each
            inner execution are recorded on the provenance record.
        max_entries: optional LRU bound on the in-memory tier for
            long-lived services.  Evicted outcomes are re-served from
            the persistent tier when one is configured, re-executed
            otherwise; single-flight dedup is preserved either way.
    """

    def __init__(
        self,
        store: ProvenanceStore | None = None,
        record_cost: bool = True,
        max_entries: int | None = None,
    ):
        self._flights = SingleFlightCache(max_entries=max_entries)
        self._store = store
        self._stats_lock = threading.Lock()
        self._record_cost = record_cost
        self._persistent_hits = 0

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot across both tiers.

        The single-flight layer counts a persistent-tier hit as a miss
        plus an execution (its ``produce`` ran); this view reclassifies
        those so ``executions`` means *pipeline* executions only.
        """
        flight = self._flights.stats
        with self._stats_lock:
            persistent = self._persistent_hits
        # Clamp: a persistent hit increments before the flight layer
        # books its execution, so a snapshot taken mid-flight could
        # otherwise go briefly negative.
        return CacheStats(
            hits=flight.hits,
            persistent_hits=persistent,
            misses=max(0, flight.misses - persistent),
            executions=max(0, flight.executions - persistent),
            coalesced=flight.coalesced,
            failures=flight.failures,
            evictions=flight.evictions,
        )

    @property
    def store(self) -> ProvenanceStore | None:
        return self._store

    def __len__(self) -> int:
        return len(self._flights)

    def warm(self, workflow: str, history) -> int:
        """Seed the memory tier from an iterable of evaluations.

        Accepts anything yielding objects with ``instance`` and
        ``outcome`` attributes (``Evaluation``/``ProvenanceRecord``).
        Returns the number of entries loaded.
        """
        loaded = 0
        for evaluation in history:
            self._flights.put(
                instance_cache_key(workflow, evaluation.instance), evaluation.outcome
            )
            loaded += 1
        return loaded

    def evaluate(
        self, workflow: str, instance: Instance, executor: Executor
    ) -> Outcome:
        """Evaluate ``instance`` through the cache tiers.

        Order: memory tier -> persistent tier -> single-flight inner
        execution (written through to the persistent tier).
        """
        key = instance_cache_key(workflow, instance)

        def produce() -> Outcome:
            # The stores are internally thread-safe; no cache-level lock
            # around them, or one slow/contended store call would stall
            # every other worker's persistent-tier access.
            if self._store is not None:
                try:
                    record = self._store.lookup(workflow, instance)
                except Exception:
                    record = None  # store trouble reads as a miss
                if record is not None:
                    with self._stats_lock:
                        self._persistent_hits += 1
                    return record.outcome
            started = time.perf_counter()
            outcome = executor(instance)
            cost = time.perf_counter() - started if self._record_cost else 0.0
            if self._store is not None:
                record = ProvenanceRecord(
                    workflow=workflow,
                    instance=instance,
                    outcome=outcome,
                    cost=cost,
                    created_at=time.time(),
                )
                try:
                    self._store.upsert(record)
                except Exception:
                    # The outcome is already in hand (and will live in
                    # the memory tier); a contended or full store must
                    # not fail the job over a lost write-through.
                    pass
            return outcome

        outcome = self._flights.get_or_execute(key, produce)
        assert isinstance(outcome, Outcome)
        return outcome

    def executor(self, workflow: str, inner: Executor) -> "CachedExecutor":
        """Bind the cache to one workflow + inner executor pair."""
        return CachedExecutor(self, workflow, inner)


class CachedExecutor:
    """An :class:`~repro.core.types.Executor` view over a shared cache.

    Many jobs each hold their own ``CachedExecutor`` (with their own
    inner executor object), but all views with the same ``workflow``
    share outcomes -- this is what makes cross-job deduplication work
    even though every job constructs its executor independently.

    Because the view is per job, its counters are the *per-job* cache
    accounting the service reports (``repro serve`` JSON): ``requests``
    is every evaluation the job routed through the cache, and
    ``executions`` is how often the job's own inner executor actually
    ran -- the difference is requests served by the shared tiers
    (memory hits, coalesced in-flight leaders, persistent-tier hits).
    """

    def __init__(self, cache: ExecutionCache, workflow: str, inner: Executor):
        self._cache = cache
        self._workflow = workflow
        self._inner = inner
        self._counter_lock = threading.Lock()
        self.requests = 0
        self.executions = 0

    @property
    def workflow(self) -> str:
        return self._workflow

    @property
    def cache(self) -> ExecutionCache:
        return self._cache

    def stats_snapshot(self) -> dict[str, int]:
        """Per-job view: requests, own executions, and tier-served hits."""
        with self._counter_lock:
            requests = self.requests
            executions = self.executions
        return {
            "requests": requests,
            "executions": executions,
            "hits": requests - executions,
        }

    def _counted_inner(self, instance: Instance) -> Outcome:
        with self._counter_lock:
            self.executions += 1
        return self._inner(instance)

    def __call__(self, instance: Instance) -> Outcome:
        with self._counter_lock:
            self.requests += 1
        return self._cache.evaluate(self._workflow, instance, self._counted_inner)
