"""Debugging job service (substrate S4): scheduler, cache, jobs, service.

The seed repo parallelized pipeline executions *within* one debugging
session (the paper's Figure 6 prototype).  This subpackage turns that
into a multi-tenant service:

* :mod:`~repro.service.cache` -- a cross-session execution cache with
  single-flight deduplication and an optional persistent tier backed
  by the provenance store;
* :mod:`~repro.service.jobs` -- the job model (spec, handle, result,
  cancellation);
* :mod:`~repro.service.service` -- :class:`DebugService`, which wires a
  per-job :class:`~repro.core.session.DebugSession` into the shared
  infrastructure while keeping the paper's per-job cost accounting
  exact.

The raw concurrency primitives (the shared scheduler and the
single-flight cache) live below this layer in :mod:`repro.concurrency`;
:mod:`~repro.service.scheduler` and :mod:`~repro.service.cache`
re-export them for compatibility.
"""

from .cache import CachedExecutor, CacheStats, ExecutionCache, SingleFlightCache
from .jobs import JobCancelled, JobGoal, JobHandle, JobResult, JobSpec, JobStatus
from .scheduler import (
    ScheduledExecutor,
    SchedulerBackend,
    SchedulerStats,
    SharedScheduler,
)
from .service import DebugService

__all__ = [
    "CachedExecutor",
    "CacheStats",
    "DebugService",
    "ExecutionCache",
    "JobCancelled",
    "JobGoal",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "ScheduledExecutor",
    "SchedulerBackend",
    "SchedulerStats",
    "SharedScheduler",
    "SingleFlightCache",
]
