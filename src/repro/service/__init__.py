"""Debugging job service (substrate S4): scheduler, cache, jobs, service.

The seed repo parallelized pipeline executions *within* one debugging
session (the paper's Figure 6 prototype).  This subpackage turns that
into a multi-tenant service:

* :mod:`~repro.service.cache` -- a cross-session execution cache with
  single-flight deduplication and an optional persistent tier backed
  by the provenance store;
* :mod:`~repro.service.jobs` -- the job model (spec, handle, result,
  cancellation);
* :mod:`~repro.service.service` -- :class:`DebugService`, which wires a
  per-job :class:`~repro.core.session.DebugSession` into the shared
  infrastructure while keeping the paper's per-job cost accounting
  exact;
* :mod:`~repro.service.queue` -- :class:`DurableJobQueue`, the
  crash-safe admission queue over the schema-v5 ``job_queue`` table
  plus the JobSpec <-> JSON payload codec;
* :mod:`~repro.service.http` -- :class:`DebugServiceHTTP`, the
  stdlib HTTP/JSON front-end (submit/status/cancel, NDJSON/SSE event
  streams, per-tenant quotas, ``/query``).

The raw concurrency primitives (the shared scheduler and the
single-flight cache) live below this layer in :mod:`repro.concurrency`;
:mod:`~repro.service.scheduler` and :mod:`~repro.service.cache`
re-export them for compatibility.
"""

from .cache import CachedExecutor, CacheStats, ExecutionCache, SingleFlightCache
from .jobs import JobCancelled, JobGoal, JobHandle, JobResult, JobSpec, JobStatus
from .queue import (
    DurableJobQueue,
    space_from_payload,
    space_to_payload,
    spec_from_payload,
    spec_to_payload,
)
from .scheduler import (
    ScheduledExecutor,
    SchedulerBackend,
    SchedulerStats,
    SharedScheduler,
)
from .service import DebugService
from .http import DebugServiceHTTP, HTTPError, TenantQuota

__all__ = [
    "CachedExecutor",
    "CacheStats",
    "DebugService",
    "DebugServiceHTTP",
    "DurableJobQueue",
    "ExecutionCache",
    "HTTPError",
    "JobCancelled",
    "JobGoal",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "ScheduledExecutor",
    "SchedulerBackend",
    "SchedulerStats",
    "SharedScheduler",
    "SingleFlightCache",
    "TenantQuota",
    "space_from_payload",
    "space_to_payload",
    "spec_from_payload",
    "spec_to_payload",
]
