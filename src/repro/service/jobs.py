"""Job model for the debugging service.

A *job* is one complete debugging request: a black-box executor, the
parameter space it is debugged over, the algorithm to run, and the
budget the client is willing to spend -- i.e. everything a standalone
:class:`~repro.core.bugdoc.BugDoc` invocation needs, packaged so a
:class:`~repro.service.service.DebugService` can run many of them
concurrently over one shared scheduler and execution cache.
"""

from __future__ import annotations

import enum
import threading
from collections.abc import Callable
from dataclasses import dataclass

from ..core.bugdoc import Algorithm, BugDocReport
from ..core.ddt import DDTConfig
from ..core.history import ExecutionHistory
from ..core.session import DebugSession
from ..core.types import Executor, ParameterSpace
from .cache import DEFAULT_WORKFLOW

__all__ = ["JobGoal", "JobSpec", "JobStatus", "JobResult", "JobHandle"]


class JobGoal(enum.Enum):
    """Which of the paper's two problem goals (Section 3) the job targets."""

    FIND_ONE = "find_one"
    FIND_ALL = "find_all"


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class JobSpec:
    """Everything needed to run one debugging job.

    Attributes:
        job_id: unique identifier within the service.
        executor: the black-box pipeline.  The service wraps it with the
            shared execution cache keyed by ``workflow`` -- jobs naming
            the same workflow share outcomes.
        space: the manipulable parameter space.
        workflow: cache/provenance key; jobs with equal workflows are
            assumed to debug the same (deterministic) pipeline.
        algorithm: the debugging strategy to run.
        goal: FindOne or FindAll (Section 3).
        budget: cap on *new* executions charged to this job, or None.
        history: prior provenance seeded free of charge.
        seed: RNG seed for the job's instance sampling.
        ddt_config: optional decision-tree configuration.
        stack_width: Stacked Shortcut width.
        parallel_batches: when True the job's session fans speculative
            batches out through the shared scheduler (Section 4.3
            semantics: batch items may be dropped on budget exhaustion,
            and history order depends on completion order).  When False
            the session stays serial -- deterministic per job -- and
            only individual executions go through the shared pool.
        run: escape hatch: a custom job body ``(session) -> result``;
            when set it replaces the BugDoc invocation entirely (used by
            stress tests and bespoke clients).
    """

    job_id: str
    executor: Executor
    space: ParameterSpace
    workflow: str = DEFAULT_WORKFLOW
    algorithm: Algorithm = Algorithm.COMBINED
    goal: JobGoal = JobGoal.FIND_ONE
    budget: int | None = None
    history: ExecutionHistory | None = None
    seed: int = 0
    ddt_config: DDTConfig | None = None
    stack_width: int | None = None
    parallel_batches: bool = False
    run: Callable[[DebugSession], object] | None = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.run is None and self.goal is JobGoal.FIND_ALL and self.algorithm in (
            Algorithm.SHORTCUT,
            Algorithm.STACKED_SHORTCUT,
        ):
            raise ValueError(
                "the shortcut algorithms target FindOne; use DECISION_TREES "
                "or COMBINED for FindAll jobs"
            )


@dataclass
class JobResult:
    """Terminal outcome of one job.

    Attributes:
        job_id: the job this result belongs to.
        status: SUCCEEDED / FAILED / CANCELLED.
        report: the BugDoc report (None for custom ``run`` bodies or
            failed jobs).
        value: raw return of a custom ``run`` body.
        error: the exception that failed the job, if any.
        budget_spent: executions charged to the job's budget.
        new_executions: instances this job's session executed (new to
            its own history; shared-cache hits still count, matching
            the paper's per-algorithm cost accounting).
        wall_seconds: job wall-clock time inside the service.
    """

    job_id: str
    status: JobStatus
    report: BugDocReport | None = None
    value: object = None
    error: BaseException | None = None
    budget_spent: int = 0
    new_executions: int = 0
    wall_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly summary (used by ``repro serve --output json``)."""
        causes: list[str] = []
        if self.report is not None:
            causes = [str(cause) for cause in self.report.causes]
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "causes": causes,
            "budget_spent": self.budget_spent,
            "new_executions": self.new_executions,
            "wall_seconds": self.wall_seconds,
            "error": repr(self.error) if self.error is not None else None,
        }


class JobHandle:
    """Client-side view of a submitted job."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self._done = threading.Event()
        self._result: JobResult | None = None
        self._status = JobStatus.PENDING
        self._lock = threading.Lock()
        self.session: DebugSession | None = None  # set by the service

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    def _mark_running(self) -> None:
        with self._lock:
            if self._status is JobStatus.PENDING:
                self._status = JobStatus.RUNNING

    def _finish(self, result: JobResult) -> None:
        with self._lock:
            self._status = result.status
            self._result = result
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> JobResult:
        """The terminal :class:`JobResult`; raises on timeout."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id!r} still running")
        assert self._result is not None
        return self._result
