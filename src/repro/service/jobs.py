"""Job model for the debugging service.

A *job* is one complete debugging request: a black-box executor, the
parameter space it is debugged over, the algorithm to run, and the
budget the client is willing to spend -- i.e. everything a standalone
:class:`~repro.core.bugdoc.BugDoc` invocation needs, packaged so a
:class:`~repro.service.service.DebugService` can run many of them
concurrently over one shared scheduler and execution cache.
"""

from __future__ import annotations

import enum
import threading
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from ..core.bugdoc import Algorithm, BugDocReport
from ..core.ddt import DDTConfig
from ..core.history import ExecutionHistory
from ..core.session import DebugSession
from ..core.types import Executor, ParameterSpace
from ..exec.events import EventBus, JobEvent
from ..exec.spec import ExecutorSpec
from .cache import DEFAULT_WORKFLOW

__all__ = [
    "JobCancelled",
    "JobGoal",
    "JobSpec",
    "JobStatus",
    "JobResult",
    "JobHandle",
]


class JobCancelled(BaseException):
    """Raised inside a cancelled job's execution path.

    Deliberately *not* an :class:`Exception`: speculative-batch items
    swallow ordinary executor errors (``except Exception -> None``), and
    a cancellation must unwind the whole controller thread instead of
    degrading into dropped batch items.  The session's budget refund
    handles ``BaseException``, so an execution aborted by cancellation
    is never charged -- a cancelled job stops spending budget at the
    next scheduler slice.
    """

    def __init__(self, job_id: str):
        super().__init__(f"job {job_id!r} was cancelled")
        self.job_id = job_id


class JobGoal(enum.Enum):
    """Which of the paper's two problem goals (Section 3) the job targets."""

    FIND_ONE = "find_one"
    FIND_ALL = "find_all"


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class JobSpec:
    """Everything needed to run one debugging job.

    Attributes:
        job_id: unique identifier within the service.
        executor: the black-box pipeline.  The service wraps it with the
            shared execution cache keyed by ``workflow`` -- jobs naming
            the same workflow share outcomes.  May be None when
            ``executor_spec`` is provided (process execution).
        executor_spec: optional :class:`~repro.exec.spec.ExecutorSpec`.
            On a service built with a process pool, the job's pipeline
            then executes *out of process*: the spec is shipped to pool
            workers and the in-parent executor chain (cache,
            cancellation guard, scheduler) dispatches to them.  When
            both ``executor`` and ``executor_spec`` are given, the spec
            wins on a pool-equipped service and ``executor`` is the
            in-process fallback elsewhere.
        space: the manipulable parameter space.
        workflow: cache/provenance key; jobs with equal workflows are
            assumed to debug the same (deterministic) pipeline.
        algorithm: the debugging strategy to run.
        goal: FindOne or FindAll (Section 3).
        budget: cap on *new* executions charged to this job, or None.
        priority: round-robin weight for the shared scheduler (>= 1).
            Takes effect only on a service built with
            ``weighted_fairness=True``, where a weight-``w`` job is
            served up to ``w`` consecutive requests per fairness turn;
            otherwise ignored.  The default of 1 preserves the plain
            FIFO round-robin.
        history: prior provenance seeded free of charge.
        seed: RNG seed for the job's instance sampling.
        ddt_config: optional decision-tree configuration.
        stack_width: Stacked Shortcut width.
        parallel_batches: when True the job's session fans speculative
            batches out through the shared scheduler (Section 4.3
            semantics: batch items may be dropped on budget exhaustion,
            and history order depends on completion order).  When False
            the session stays serial -- deterministic per job -- and
            only individual executions go through the shared pool.
        run: escape hatch: a custom job body ``(session) -> result``;
            when set it replaces the BugDoc invocation entirely (used by
            stress tests and bespoke clients).
        trace: optional trace-context dict (``trace_id``/``span_id``/
            ``parent_id``, the wire form of
            :class:`~repro.obs.trace.TraceContext`) minted at the
            submission edge.  The service stamps it on every event the
            job publishes and carries it to pool/fleet workers, so one
            ``trace_id`` spans every process the job touches.
    """

    job_id: str
    executor: Executor | None
    space: ParameterSpace
    workflow: str = DEFAULT_WORKFLOW
    executor_spec: ExecutorSpec | None = None
    algorithm: Algorithm = Algorithm.COMBINED
    goal: JobGoal = JobGoal.FIND_ONE
    budget: int | None = None
    priority: int = 1
    history: ExecutionHistory | None = None
    seed: int = 0
    ddt_config: DDTConfig | None = None
    stack_width: int | None = None
    parallel_batches: bool = False
    run: Callable[[DebugSession], object] | None = None
    trace: dict | None = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.executor is None and self.executor_spec is None:
            raise ValueError("pass an executor, an executor_spec, or both")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.priority < 1:
            raise ValueError("priority must be at least 1")
        if self.run is None and self.goal is JobGoal.FIND_ALL and self.algorithm in (
            Algorithm.SHORTCUT,
            Algorithm.STACKED_SHORTCUT,
        ):
            raise ValueError(
                "the shortcut algorithms target FindOne; use DECISION_TREES "
                "or COMBINED for FindAll jobs"
            )


@dataclass
class JobResult:
    """Terminal outcome of one job.

    Attributes:
        job_id: the job this result belongs to.
        status: SUCCEEDED / FAILED / CANCELLED.
        report: the BugDoc report (None for custom ``run`` bodies or
            failed jobs).
        value: raw return of a custom ``run`` body.
        error: the exception that failed the job, if any.
        budget_spent: executions charged to the job's budget.
        new_executions: instances this job's session executed (new to
            its own history; shared-cache hits still count, matching
            the paper's per-algorithm cost accounting).
        wall_seconds: job wall-clock time inside the service.
        cache_stats: this job's view of the shared execution cache
            (``requests`` routed through it, ``executions`` its own
            inner executor ran, ``hits`` served by the shared tiers);
            None for jobs that never built a session.
        engine_stats: the job's columnar-engine counter snapshot
            (``fallbacks``, compile-cache and match-table traffic,
            ``shards`` / ``parallel_queries`` / ``kernel_path`` and the
            match-table footprint; see
            :meth:`~repro.core.engine.ColumnarEngine.stats`), or None
            for custom ``run`` bodies, reference-engine jobs, and jobs
            that never built a strategy context.
        accounting_settled: True when every execution request the job
            issued had resolved before the counters were read.  False
            only on an abnormal teardown (cancellation/failure) where a
            pipeline execution outlived the drain grace period: the
            counters are then a best-effort snapshot, and the stuck
            execution's entry charge settles after this result is
            published.
    """

    job_id: str
    status: JobStatus
    report: BugDocReport | None = None
    value: object = None
    error: BaseException | None = None
    budget_spent: int = 0
    new_executions: int = 0
    wall_seconds: float = 0.0
    cache_stats: dict[str, int] | None = None
    engine_stats: dict[str, int | str] | None = None
    accounting_settled: bool = True

    @property
    def succeeded(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly summary (used by ``repro serve --output json``)."""
        causes: list[str] = []
        if self.report is not None:
            causes = [str(cause) for cause in self.report.causes]
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "causes": causes,
            "budget_spent": self.budget_spent,
            "new_executions": self.new_executions,
            "wall_seconds": self.wall_seconds,
            "cache": dict(self.cache_stats) if self.cache_stats else None,
            "engine": dict(self.engine_stats) if self.engine_stats else None,
            "error": repr(self.error) if self.error is not None else None,
        }


class JobHandle:
    """Client-side view of a submitted job.

    Cancellation: :meth:`cancel` requests a cooperative stop.  The
    request is honored *between scheduler slices* -- the next execution
    the job asks for raises :class:`JobCancelled` instead of running (so
    no further budget is charged; the aborted request itself is
    refunded), the controller thread unwinds, and the job finishes with
    :attr:`JobStatus.CANCELLED`.  Executions already running on a worker
    complete normally (black-box pipelines cannot be interrupted
    mid-run); their outcomes still land in the shared cache.
    """

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._result: JobResult | None = None
        self._status = JobStatus.PENDING
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["JobHandle"], object]] = []
        self.session: DebugSession | None = None  # set by the service
        self._bus: EventBus | None = None  # set by the service

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    # -- Cancellation ---------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation of this job.

        Returns:
            True when the request was registered before the job reached
            a terminal state; False when the job had already finished
            (the existing result stands).  Idempotent: repeated calls
            on a live job return True.
        """
        with self._lock:
            if self._status.terminal:
                return False
            self._cancel.set()
        return True

    @property
    def cancel_requested(self) -> bool:
        """True once :meth:`cancel` has been called on a live job."""
        return self._cancel.is_set()

    def check_cancelled(self) -> None:
        """Raise :class:`JobCancelled` when cancellation was requested.

        Custom ``run`` bodies with long algorithm-side loops (no
        executions) can poll this to honor cancellation promptly.
        """
        if self._cancel.is_set():
            raise JobCancelled(self.job_id)

    def _mark_running(self) -> None:
        with self._lock:
            if self._status is JobStatus.PENDING:
                self._status = JobStatus.RUNNING

    def _finish(self, result: JobResult) -> None:
        with self._lock:
            self._status = result.status
            self._result = result
            callbacks = list(self._callbacks)
            # Set under the lock: a concurrent add_done_callback either
            # sees _done set (and fires immediately) or appends before
            # this snapshot -- no registration can fall between.
            self._done.set()
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                pass  # observers must never break the teardown path

    def add_done_callback(
        self, callback: Callable[["JobHandle"], object]
    ) -> None:
        """Run ``callback(handle)`` once the job reaches a terminal state.

        Fires on the job's controller thread after the result is
        readable (``result()`` returns without blocking inside the
        callback); fires immediately on the caller's thread when the
        job is already terminal.  Exceptions are swallowed: observers
        (the durable queue's ``done`` transition, notification hooks)
        must never break a job teardown.  Callbacks run in
        registration order.
        """
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        try:
            callback(self)
        except Exception:
            pass

    # -- Progress streaming ---------------------------------------------------
    def events(
        self, start: int = 0, timeout: float | None = None
    ) -> Iterator[JobEvent]:
        """Iterate this job's event stream, complete and in order.

        Replays from the beginning (or ``start``) no matter when it is
        called and ends after the terminal ``finished`` event -- no
        event is lost on completion, cancellation, or failure (the
        service always closes the log from its teardown path).  Blocks
        between events while the job runs; ``timeout`` bounds each wait.

        Raises:
            RuntimeError: on a handle that is not attached to a service
                event bus (bare handles have no stream).
        """
        if self._bus is None:
            raise RuntimeError(
                f"job {self.job_id!r} has no event stream "
                "(handle not attached to a service event bus)"
            )
        return self._bus.events(self.job_id, start=start, timeout=timeout)

    def progress(
        self, timeout: float | None = None
    ) -> Iterator[dict[str, object]]:
        """Cumulative progress snapshots, one per underlying event.

        Each snapshot is a plain dict -- ``status``, ``rounds``,
        ``budget_spent``, ``causes`` (partial until terminal), and the
        triggering ``event`` kind -- convenient for dashboards that want
        current state rather than the raw event log.  The final snapshot
        carries the terminal status.
        """
        state: dict[str, object] = {
            "job_id": self.job_id,
            "status": JobStatus.PENDING.value,
            "event": None,
            "rounds": 0,
            "budget_spent": 0,
            "causes": [],
        }
        for event in self.events(timeout=timeout):
            payload = event.payload
            state["event"] = event.kind
            if event.kind == "started":
                state["status"] = JobStatus.RUNNING.value
            elif event.kind == "round_started":
                state["rounds"] = payload.get("round", state["rounds"])
            elif event.kind == "budget_spent":
                # Under parallel batches, concurrently-completing
                # executions may publish their (self-consistent)
                # snapshots out of charge order; fold with max so the
                # running display never regresses.
                state["budget_spent"] = max(
                    state["budget_spent"],  # type: ignore[call-overload]
                    payload.get("spent", 0),
                )
            elif event.kind == "partial_causes":
                state["causes"] = list(payload.get("causes", []))
            elif event.kind == "finished":
                state["status"] = payload.get("status", state["status"])
                if "budget_spent" in payload:
                    state["budget_spent"] = payload["budget_spent"]
                if payload.get("causes") is not None:
                    state["causes"] = list(payload["causes"])
            yield dict(state)

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> JobResult:
        """The terminal :class:`JobResult`; raises on timeout."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id!r} still running")
        assert self._result is not None
        return self._result
