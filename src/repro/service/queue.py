"""Durable job queue: the JobSpec <-> JSON payload codec + resume wiring.

The schema-v5 ``job_queue`` table (see
:class:`~repro.provenance.store.SQLiteProvenanceStore`) stores *opaque*
JSON payloads -- provenance sits far below this layer and must never
learn what a :class:`~repro.service.jobs.JobSpec` is.  This module owns
the payload shape: :func:`spec_to_payload` serializes the durable
subset of a spec (executor as an :class:`~repro.exec.spec.ExecutorSpec`
wire form, space as its code tables, scalars verbatim) and
:func:`spec_from_payload` rebuilds a runnable spec, constructing the
executor in-process via :meth:`ExecutorSpec.build` so a restarted
service needs no process pool to resume queued work.

:class:`DurableJobQueue` is the service-side driver: ``submit`` writes
the queue row, claims it, and hands the spec to a
:class:`~repro.service.service.DebugService`, stamping the row ``done``
from the handle's completion callback; ``resume`` repairs the crash
edges (:meth:`~repro.provenance.store.SQLiteProvenanceStore.
recover_queue`) and re-claims every queued row exactly once -- claims
are compare-and-set, so two services resuming one database split the
backlog instead of double-running it.  Jobs that had already finished
are *replayed* from the ``jobs``/``job_events`` tables, not re-run.
"""

from __future__ import annotations

import dataclasses

from ..core.bugdoc import Algorithm
from ..core.ddt import DDTConfig
from ..core.types import Parameter, ParameterKind, ParameterSpace
from ..exec.spec import ExecutorSpec
from ..provenance.record import decode_value, encode_value
from .jobs import JobGoal, JobHandle, JobSpec

__all__ = [
    "DurableJobQueue",
    "space_from_payload",
    "space_to_payload",
    "spec_from_payload",
    "spec_to_payload",
]

#: Payload shape version, bumped on incompatible codec changes so a new
#: service can refuse (rather than misparse) rows from a future one.
PAYLOAD_VERSION = 1


def space_to_payload(space: ParameterSpace) -> list[list]:
    """A space's code tables as JSON: ``[[name, kind, [values...]]]``.

    Domains are stored *in code order* (like the store's codec tables),
    so the rebuilt space interns to identical value->code tables and
    spec fingerprints survive the round-trip.
    """
    return [
        [p.name, p.kind.value, [encode_value(v) for v in p.domain]]
        for p in space.parameters
    ]


def space_from_payload(payload: list) -> ParameterSpace:
    """Rebuild a :class:`ParameterSpace` from :func:`space_to_payload`."""
    return ParameterSpace(
        [
            Parameter(
                str(name),
                tuple(decode_value(v) for v in domain),
                ParameterKind(kind),
            )
            for name, kind, domain in payload
        ]
    )


def spec_to_payload(spec: JobSpec) -> dict:
    """Serialize the durable subset of a job spec to a JSON payload.

    Only *self-describing* specs survive a restart: the executor must
    be an :class:`ExecutorSpec` (an import path plus JSON-able kwargs),
    because an in-process callable cannot be persisted.  ``run`` bodies
    and pre-seeded histories are likewise process-bound and rejected --
    durable jobs get their warm start from the shared store instead.
    """
    if spec.executor_spec is None:
        raise ValueError(
            f"job {spec.job_id!r} cannot be enqueued durably: it has no "
            "executor_spec (in-process callables do not survive a restart)"
        )
    if spec.run is not None:
        raise ValueError(
            f"job {spec.job_id!r} cannot be enqueued durably: custom run "
            "bodies are process-bound"
        )
    if spec.history is not None:
        raise ValueError(
            f"job {spec.job_id!r} cannot be enqueued durably: pre-seeded "
            "histories are process-bound (persist them to the store instead)"
        )
    return {
        "version": PAYLOAD_VERSION,
        "job_id": spec.job_id,
        "workflow": spec.workflow,
        "algorithm": spec.algorithm.value,
        "goal": spec.goal.value,
        "budget": spec.budget,
        "priority": spec.priority,
        "seed": spec.seed,
        "stack_width": spec.stack_width,
        "parallel_batches": spec.parallel_batches,
        "ddt_config": (
            dataclasses.asdict(spec.ddt_config)
            if spec.ddt_config is not None
            else None
        ),
        "executor_spec": spec.executor_spec.to_wire(),
        "space": space_to_payload(spec.space),
        "trace": spec.trace,
    }


def spec_from_payload(payload: dict) -> JobSpec:
    """Rebuild a runnable :class:`JobSpec` from a queue payload.

    The executor is constructed *in-process* via
    :meth:`ExecutorSpec.build`; the spec also keeps the wire
    ``executor_spec``, so a pool-equipped service still dispatches the
    pipeline out of process.
    """
    version = payload.get("version", PAYLOAD_VERSION)
    if version > PAYLOAD_VERSION:
        raise ValueError(
            f"queue payload version {version} is newer than this "
            f"service understands ({PAYLOAD_VERSION})"
        )
    executor_spec = ExecutorSpec.from_wire(payload["executor_spec"])
    ddt_payload = payload.get("ddt_config")
    return JobSpec(
        job_id=str(payload["job_id"]),
        executor=executor_spec.build(),
        executor_spec=executor_spec,
        space=space_from_payload(payload["space"]),
        workflow=str(payload.get("workflow", "default")),
        algorithm=Algorithm(payload.get("algorithm", "combined")),
        goal=JobGoal(payload.get("goal", "find_one")),
        budget=payload.get("budget"),
        priority=int(payload.get("priority", 1)),
        seed=int(payload.get("seed", 0)),
        ddt_config=(
            DDTConfig(**ddt_payload) if ddt_payload is not None else None
        ),
        stack_width=payload.get("stack_width"),
        parallel_batches=bool(payload.get("parallel_batches", False)),
        trace=(
            payload["trace"] if isinstance(payload.get("trace"), dict) else None
        ),
    )


class DurableJobQueue:
    """Crash-safe admission queue over a schema-v5 provenance store.

    State machine per row: ``queued -> running -> done``, with the two
    crash edges repaired by :meth:`resume` (``running`` + terminal
    ``jobs`` row -> ``done`` replay; ``running`` without one ->
    ``queued`` re-claim).  Every transition is a single-statement
    compare-and-set in the store, so the queue is safe for concurrent
    services under read committed -- see the isolation notes on the
    store's queue methods.
    """

    def __init__(self, store):
        self._store = store

    @property
    def store(self):
        return self._store

    def enqueue(self, spec: JobSpec, tenant: str | None = None) -> None:
        """Persist a spec as a queued row (latest-wins on ``job_id``)."""
        self._store.enqueue_job(
            spec.job_id,
            spec_to_payload(spec),
            tenant=tenant,
            priority=spec.priority,
        )

    def _finish_row(self, handle: JobHandle) -> None:
        try:
            self._store.finish_queued_job(handle.job_id)
        except Exception:
            # A lost ``done`` transition is exactly the crash edge
            # resume() repairs from the jobs table; never let queue
            # bookkeeping break a job teardown.
            pass

    def submit(
        self, service, spec: JobSpec, tenant: str | None = None
    ) -> JobHandle:
        """Enqueue durably, claim, and start the job on ``service``.

        The queue row reaches ``running`` *before* the service accepts
        the job (a crash between the two leaves a ``running`` row with
        no terminal ``jobs`` row, which resume() re-queues) and flips
        to ``done`` from the handle's completion callback.
        """
        self.enqueue(spec, tenant=tenant)
        self._store.claim_job(spec.job_id)
        try:
            handle = service.submit(spec)
        except BaseException:
            # The service rejected the job (shutdown, duplicate id):
            # reset *this* row to queued (latest-wins re-enqueue) so a
            # later resume still runs it; other rows stay untouched.
            self.enqueue(spec, tenant=tenant)
            raise
        handle.add_done_callback(self._finish_row)
        return handle

    def resume(self, service) -> dict:
        """Recover the queue and restart every queued job exactly once.

        Returns a report::

            {"replayed": n,   # finished before the crash; served from
                              # jobs/job_events, zero re-execution
             "requeued": n,   # died mid-run; re-claimed below
             "resumed": [JobHandle, ...],  # re-claimed and running
             "corrupt": [job_id, ...]}     # undecodable payloads
        """
        report = dict(self._store.recover_queue())
        resumed: list[JobHandle] = []
        corrupt: list[str] = []
        for row in self._store.queue_rows(status="queued"):
            job_id = row["job_id"]
            if not self._store.claim_job(job_id):
                continue  # another service's resume got there first
            try:
                spec = spec_from_payload(row["payload"])
            except Exception:
                # A poison row must not wedge every future restart:
                # stamp it done and surface the id to the caller.
                corrupt.append(job_id)
                self._store.finish_queued_job(job_id)
                continue
            handle = service.submit(spec)
            handle.add_done_callback(self._finish_row)
            resumed.append(handle)
        report["resumed"] = resumed
        report["corrupt"] = corrupt
        return report
