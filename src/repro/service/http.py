"""HTTP/JSON front-end for the debugging service (ROADMAP item 2).

A thin, stdlib-only (``http.server``) API over one
:class:`~repro.service.service.DebugService`:

========================  =====================================================
``GET  /healthz``         liveness probe
``GET  /stats``           service-wide counters (scheduler, cache, admission)
``GET  /jobs``            every known job: live handles, persisted rows, queue
``POST /jobs``            submit a job (JSON payload; see below)
``GET  /jobs/{id}``       status; terminal jobs serve the *durable* record
``POST /jobs/{id}/cancel``  cooperative cancellation
``GET  /jobs/{id}/events``  stream the job's event log (NDJSON, or SSE when
                          ``Accept: text/event-stream``)
``GET  /query``           the :mod:`repro.obs.query` process-query engine
``GET  /dashboard``       longitudinal per-workflow trajectories (summaries)
========================  =====================================================

Every accepted submission is stamped with a trace context (the payload
may carry its own ``trace`` dict to join an existing trace); the
``trace_id`` comes back in the submit response and every event the job
publishes -- across the scheduler, worker processes, and remote fleet
members -- carries it, so ``GET /query?op=trace&trace_id=...``
reconstructs the full causal tree of one request.

The submit payload is exactly the durable queue's spec codec
(:func:`~repro.service.queue.spec_from_payload`): ``job_id`` plus an
``executor_spec`` wire form and a ``space`` table -- or a ``workload``
key naming a server-side template that fills those in (the CLI
registers one per bundled workload).  On a store-backed server every
submission rides the :class:`~repro.service.queue.DurableJobQueue`, so
a ``kill -9`` between accept and finish is recovered at the next
start-up: queued jobs resume exactly once and finished jobs replay
from ``jobs``/``job_events`` with zero re-execution.

Event streaming rides :class:`~repro.obs.sink.DurableEventBus`
prefix-complete replay: a client that connects after a restart still
receives the full persisted stream from seq 0.  Responses use
HTTP/1.0 close-delimited framing, so streams need no chunked encoding.

Multi-tenancy: each tenant gets a :class:`TenantQuota` -- a cap on
in-flight jobs (HTTP 429 beyond it) and a default
:attr:`~repro.service.jobs.JobSpec.priority` that the service's
weighted-fair scheduler turns into proportional service (build the
service with ``weighted_fairness=True``; the CLI's ``repro serve
--http`` does).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..obs.dashboard import build_dashboard
from ..obs.query import Predicate, QueryEngine
from ..obs.sink import DurableEventBus
from ..obs.trace import TraceContext
from .jobs import JobHandle, JobSpec
from .queue import DurableJobQueue, spec_from_payload

__all__ = ["DebugServiceHTTP", "HTTPError", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission policy.

    Attributes:
        max_active: cap on the tenant's concurrently live (non-terminal)
            jobs; further submissions get HTTP 429.  None = unlimited.
        priority: default scheduler weight for the tenant's jobs (a
            payload may still ask for its own, capped at this value so
            a tenant cannot out-weigh its own plan).
    """

    max_active: int | None = None
    priority: int = 1


class HTTPError(Exception):
    """An error with an HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class DebugServiceHTTP:
    """The HTTP front-end; owns a :class:`ThreadingHTTPServer`.

    Args:
        service: the backing :class:`DebugService` (not owned; shut it
            down separately).
        store: schema-v5 provenance store for durable job records,
            event replay, and ``/query``.  Defaults to the service
            cache's store when it has one.
        queue: durable admission queue; built automatically from
            ``store`` when omitted (pass ``queue=None, durable=False``
            via ``store=None`` for a purely in-memory server).
        host/port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port`).
        templates: named payload templates -- ``POST /jobs`` bodies may
            say ``{"workload": "ml", ...}`` and inherit the template's
            keys (their own keys win).
        quotas: tenant name -> :class:`TenantQuota`.
        default_quota: policy for tenants without an entry.
    """

    def __init__(
        self,
        service,
        store=None,
        queue: DurableJobQueue | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        templates: dict[str, dict] | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
    ):
        self._service = service
        if store is None:
            store = getattr(service.cache, "store", None)
        self._store = store if hasattr(store, "job_row") else None
        if queue is None and self._store is not None and hasattr(
            self._store, "enqueue_job"
        ):
            queue = DurableJobQueue(self._store)
        self._queue = queue
        self._templates = dict(templates or {})
        self._quotas = dict(quotas or {})
        self._default_quota = default_quota or TenantQuota()
        self._tenants: dict[str, str | None] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

        api = self

        class Handler(BaseHTTPRequestHandler):
            # Close-delimited framing lets event streams end naturally.
            protocol_version = "HTTP/1.0"

            def log_message(self, *args):  # noqa: D102 - silence stderr
                pass

            def do_GET(self):  # noqa: N802 - http.server contract
                api._handle(self, "GET")

            def do_POST(self):  # noqa: N802 - http.server contract
                api._handle(self, "POST")

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True

    # -- Lifecycle -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def queue(self) -> DurableJobQueue | None:
        return self._queue

    def resume(self) -> dict:
        """Recover the durable queue (see :meth:`DurableJobQueue.resume`).

        Call once before serving.  Returns the queue's report with
        handles flattened to job ids (JSON-friendly for the serving
        banner); ``{}`` on a server without a durable queue.
        """
        if self._queue is None:
            return {}
        report = self._queue.resume(self._service)
        resumed: list[JobHandle] = report.get("resumed", [])
        for handle in resumed:
            row = self._store.queue_row(handle.job_id)
            self._tenants[handle.job_id] = (row or {}).get("tenant")
        report["resumed"] = [handle.job_id for handle in resumed]
        return report

    def start(self) -> None:
        """Serve on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"debug-http-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "DebugServiceHTTP":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- Request plumbing ----------------------------------------------------
    def _handle(self, handler, method: str) -> None:
        split = urlsplit(handler.path)
        segments = [part for part in split.path.split("/") if part]
        params = parse_qs(split.query)
        try:
            if method == "GET":
                self._route_get(handler, segments, params)
            else:
                self._route_post(handler, segments)
        except HTTPError as error:
            self._send_json(
                handler, error.status, {"error": error.message}
            )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer
        except Exception as error:  # pragma: no cover - defensive
            try:
                self._send_json(handler, 500, {"error": repr(error)})
            except Exception:
                pass

    @staticmethod
    def _send_json(handler, status: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True, default=repr).encode(
            "utf-8"
        )
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    @staticmethod
    def _read_body(handler) -> dict:
        length = int(handler.headers.get("Content-Length") or 0)
        raw = handler.rfile.read(length) if length else b""
        if not raw:
            raise HTTPError(400, "empty request body (expected JSON)")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise HTTPError(400, f"invalid JSON body: {error}")
        if not isinstance(payload, dict):
            raise HTTPError(400, "JSON body must be an object")
        return payload

    def _route_get(self, handler, segments, params) -> None:
        if segments == ["healthz"]:
            self._send_json(handler, 200, {"status": "ok"})
            return
        if segments == ["stats"]:
            self._send_json(handler, 200, self._service.stats())
            return
        if segments == ["jobs"]:
            self._send_json(handler, 200, self.jobs_index())
            return
        if len(segments) == 2 and segments[0] == "jobs":
            self._send_json(handler, 200, self.job_detail(segments[1]))
            return
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "events"
        ):
            self._stream_events(handler, segments[1], params)
            return
        if segments == ["query"]:
            self._send_json(handler, 200, self.run_query(params))
            return
        if segments == ["dashboard"]:
            self._send_json(handler, 200, self.dashboard(params))
            return
        raise HTTPError(404, f"no such resource: /{'/'.join(segments)}")

    def _route_post(self, handler, segments) -> None:
        if segments == ["jobs"]:
            self._send_json(handler, 201, self.submit_payload(
                self._read_body(handler)
            ))
            return
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "cancel"
        ):
            job_id = segments[1]
            handle = self._service.jobs.get(job_id)
            if handle is None:
                raise HTTPError(404, f"unknown job {job_id!r}")
            self._send_json(
                handler, 200,
                {"job_id": job_id, "cancelled": handle.cancel()},
            )
            return
        raise HTTPError(404, f"no such resource: /{'/'.join(segments)}")

    # -- Submission ----------------------------------------------------------
    def _resolve_payload(self, payload: dict) -> dict:
        workload = payload.get("workload")
        if workload is None:
            return dict(payload)
        template = self._templates.get(str(workload))
        if template is None:
            known = ", ".join(sorted(self._templates)) or "(none)"
            raise HTTPError(
                400, f"unknown workload {workload!r}; templates: {known}"
            )
        merged = dict(template)
        merged.update(payload)
        merged.setdefault("workflow", str(workload))
        return merged

    def _quota_for(self, tenant: str | None) -> TenantQuota:
        if tenant is not None and tenant in self._quotas:
            return self._quotas[tenant]
        return self._default_quota

    def _active_jobs(self, tenant: str | None) -> int:
        return sum(
            1
            for job_id, handle in self._service.jobs.items()
            if self._tenants.get(job_id) == tenant
            and not handle.status.terminal
        )

    def submit_payload(self, payload: dict) -> dict:
        """Admit one submission (the ``POST /jobs`` body) as a job.

        Payload resolution: an optional ``workload`` template is merged
        under the payload, the tenant's quota is enforced (429), the
        spec is rebuilt via the durable codec (400 on malformed
        payloads), a live duplicate id is a conflict (409) while a
        terminal one is latest-wins (the old record is discarded), and
        on a store-backed server the job rides the durable queue.
        """
        merged = self._resolve_payload(payload)
        tenant = merged.pop("tenant", None)
        tenant = str(tenant) if tenant is not None else None
        quota = self._quota_for(tenant)
        if "priority" in merged and merged["priority"] is not None:
            priority = max(1, min(int(merged["priority"]), quota.priority))
        else:
            priority = quota.priority
        merged["priority"] = priority
        job_id = merged.get("job_id")
        if not job_id:
            raise HTTPError(400, "payload must carry a non-empty job_id")
        job_id = str(job_id)
        # Every admitted job is traced: mint a root context at this edge
        # unless the caller brought its own (joining a wider trace).
        if not isinstance(merged.get("trace"), dict):
            merged["trace"] = TraceContext.new().to_payload()
        try:
            spec = spec_from_payload(merged)
        except HTTPError:
            raise
        except Exception as error:
            raise HTTPError(400, f"cannot build job from payload: {error}")
        with self._lock:
            if quota.max_active is not None:
                active = self._active_jobs(tenant)
                if active >= quota.max_active:
                    raise HTTPError(
                        429,
                        f"tenant {tenant or 'default'!r} has {active} "
                        f"active job(s), quota allows {quota.max_active}",
                    )
            existing = self._service.jobs.get(job_id)
            if existing is not None:
                if not existing.status.terminal:
                    raise HTTPError(
                        409, f"job {job_id!r} is still {existing.status.value}"
                    )
                # Latest-wins: the durable queue resets its row and the
                # event sink purges the prior incarnation's log.
                self._service.discard_job(job_id)
            if self._queue is not None:
                handle = self._queue.submit(self._service, spec, tenant=tenant)
            else:
                handle = self._service.submit(spec)
            self._tenants[job_id] = tenant
        return {
            "job_id": job_id,
            "status": handle.status.value,
            "tenant": tenant,
            "priority": priority,
            "durable": self._queue is not None,
            "trace_id": merged["trace"].get("trace_id"),
        }

    # -- Read models ---------------------------------------------------------
    def jobs_index(self) -> list[dict]:
        """Every known job: persisted rows, live handles, queue rows."""
        entries: dict[str, dict] = {}
        if self._store is not None:
            for row in self._store.job_rows():
                entries[row["job_id"]] = {
                    "job_id": row["job_id"],
                    "status": row["status"],
                    "workflow": row["workflow"],
                }
            if hasattr(self._store, "queue_rows"):
                for row in self._store.queue_rows():
                    entries.setdefault(
                        row["job_id"],
                        {
                            "job_id": row["job_id"],
                            "status": (
                                "queued"
                                if row["status"] == "queued"
                                else row["status"]
                            ),
                            "workflow": row["payload"].get("workflow"),
                        },
                    )
        for job_id, handle in self._service.jobs.items():
            entries[job_id] = {
                "job_id": job_id,
                "status": handle.status.value,
                "workflow": handle.spec.workflow,
                "tenant": self._tenants.get(job_id),
            }
        return [entries[job_id] for job_id in sorted(entries)]

    def job_detail(self, job_id: str) -> dict:
        """One job's status -- terminal jobs serve the durable record.

        Terminal responses are built from the persisted ``jobs`` row
        and terminal event (after a flush barrier), *never* from the
        in-memory result -- so the bytes a client reads for a finished
        job are identical before and after a service restart.
        """
        handle = self._service.jobs.get(job_id)
        if handle is not None and not handle.status.terminal:
            return {
                "job_id": job_id,
                "status": handle.status.value,
                "tenant": self._tenants.get(job_id),
                "workflow": handle.spec.workflow,
            }
        if self._store is not None:
            events = self._service.events
            if isinstance(events, DurableEventBus):
                events.flush(timeout=5.0)
            row = self._store.job_row(job_id)
            if row is not None:
                detail = {
                    "job_id": job_id,
                    "status": row["status"],
                    "workflow": row["workflow"],
                    "algorithm": row["algorithm"],
                    "spec_fingerprint": row["spec_fingerprint"],
                    "report_fingerprint": row["report_fingerprint"],
                    "budget_spent": row["budget_spent"],
                    "wall_seconds": row["wall_seconds"],
                }
                rows = self._store.job_event_rows(job_id)
                payload = None
                if rows and rows[-1]["terminal"]:
                    payload = rows[-1]["payload"]
                elif not rows and hasattr(self._store, "job_summary_row"):
                    # Raw events compacted away: the summary keeps the
                    # terminal payload, so the detail stays servable.
                    summary = self._store.job_summary_row(job_id)
                    if summary is not None:
                        payload = summary.get("terminal_payload")
                        detail["compacted"] = True
                if payload is not None:
                    detail["causes"] = payload.get("causes")
                    detail["new_executions"] = payload.get("new_executions")
                    detail["error"] = payload.get("error")
                return detail
            if hasattr(self._store, "queue_row"):
                queued = self._store.queue_row(job_id)
                if queued is not None:
                    return {
                        "job_id": job_id,
                        "status": queued["status"],
                        "workflow": queued["payload"].get("workflow"),
                        "tenant": queued["tenant"],
                    }
        if handle is not None:
            return handle.result(timeout=0).to_dict()
        raise HTTPError(404, f"unknown job {job_id!r}")

    # -- Event streaming -----------------------------------------------------
    def _known_job(self, job_id: str) -> bool:
        if job_id in self._service.jobs:
            return True
        if self._store is None:
            return False
        if self._store.job_row(job_id) is not None:
            return True
        return (
            hasattr(self._store, "queue_row")
            and self._store.queue_row(job_id) is not None
        )

    def _stream_events(self, handler, job_id: str, params) -> None:
        """NDJSON (default) or SSE stream of one job's event log.

        Rides the bus's replay semantics: live logs stream to the
        terminal event; persisted logs of finished or crashed jobs
        replay their prefix-complete rows and end.  ``start`` skips,
        ``timeout`` bounds each inter-event wait (default 30s).
        """
        if not self._known_job(job_id):
            raise HTTPError(404, f"unknown job {job_id!r}")
        start = int(params.get("start", ["0"])[0])
        timeout = float(params.get("timeout", ["30"])[0])
        accept = handler.headers.get("Accept", "")
        sse = "text/event-stream" in accept
        handler.send_response(200)
        handler.send_header(
            "Content-Type",
            "text/event-stream" if sse else "application/x-ndjson",
        )
        handler.send_header("Cache-Control", "no-cache")
        handler.end_headers()
        try:
            for event in self._service.events.events(
                job_id, start=start, timeout=timeout
            ):
                data = json.dumps(
                    event.to_dict(), sort_keys=True, default=repr
                )
                if sse:
                    chunk = f"event: {event.kind}\ndata: {data}\n\n"
                else:
                    chunk = data + "\n"
                handler.wfile.write(chunk.encode("utf-8"))
                handler.wfile.flush()
        except TimeoutError:
            pass  # idle past the bound: close; the client reconnects

    # -- Process queries -----------------------------------------------------
    def run_query(self, params: dict[str, list[str]]) -> dict:
        """``/query``: delegate to :class:`~repro.obs.query.QueryEngine`.

        Query params mirror the ``repro query`` CLI: ``op`` is one of
        ``jobs``/``events``/``seq``/``agg``/``trace``; ``workflow``,
        ``kind``, ``where``, ``limit``, ``offset``, ``pattern``,
        ``metric``, ``stat``, ``group_by`` and ``trace_id`` filter as
        there.
        """
        if self._store is None:
            raise HTTPError(503, "no provenance store behind this server")
        engine = QueryEngine(self._store)
        events = self._service.events
        if isinstance(events, DurableEventBus):
            events.flush(timeout=5.0)  # query sees everything published
        op = params.get("op", ["jobs"])[0]
        workflow = params.get("workflow", [None])[0]
        offset = params.get("offset", [None])[0]
        offset = int(offset) if offset is not None else None
        try:
            if op == "jobs":
                limit = params.get("limit", [None])[0]
                return {
                    "op": op,
                    "jobs": engine.jobs(
                        workflow=workflow,
                        limit=int(limit) if limit is not None else None,
                        offset=offset,
                    ),
                }
            if op == "events":
                limit = int(params.get("limit", ["1000"])[0])
                predicates = [
                    Predicate.parse(raw) for raw in params.get("where", [])
                ]
                rows = list(
                    engine.events(
                        workflow=workflow,
                        kinds=params.get("kind") or None,
                        predicates=predicates,
                        limit=limit,
                        offset=offset,
                    )
                )
                return {"op": op, "count": len(rows), "events": rows}
            if op == "seq":
                pattern = params.get("pattern", [])
                if not pattern:
                    raise HTTPError(400, "seq needs at least one pattern step")
                limit = params.get("limit", [None])[0]
                matches = engine.sequence(
                    pattern,
                    workflow=workflow,
                    limit=int(limit) if limit is not None else None,
                    offset=offset,
                )
                return {
                    "op": op,
                    "pattern": pattern,
                    "count": len(matches),
                    "matches": matches,
                }
            if op == "trace":
                trace_id = params.get("trace_id", [None])[0]
                if not trace_id:
                    raise HTTPError(400, "trace needs a trace_id")
                return {"op": op, **engine.trace(trace_id)}
            if op == "agg":
                metric = params.get("metric", [None])[0]
                if metric is None:
                    raise HTTPError(400, "agg needs a metric")
                groups = engine.aggregate(
                    metric,
                    stat=params.get("stat", ["p95"])[0],
                    group_by=params.get("group_by", [None])[0],
                    workflow=workflow,
                )
                return {
                    "op": op,
                    "metric": metric,
                    "stat": params.get("stat", ["p95"])[0],
                    "group_by": params.get("group_by", [None])[0],
                    "groups": groups,
                    "rollup": {
                        "hits": engine.rollup_hits,
                        "misses": engine.rollup_misses,
                    },
                }
        except HTTPError:
            raise
        except ValueError as error:
            raise HTTPError(400, str(error))
        raise HTTPError(400, f"unknown query op {op!r}")

    def dashboard(self, params: dict[str, list[str]]) -> dict:
        """``/dashboard``: the longitudinal trajectories document."""
        if self._store is None:
            raise HTTPError(503, "no provenance store behind this server")
        events = self._service.events
        if isinstance(events, DurableEventBus):
            events.flush(timeout=5.0)
        bucket = float(params.get("bucket", ["3600"])[0])
        return build_dashboard(
            self._store,
            workflow=params.get("workflow", [None])[0],
            bucket_seconds=bucket,
        )
