"""Group testing: drill down from a dataset root cause to bad data items.

The paper's future work (Section 6): "we would like to explore group
testing [33, 38] to identify problematic data elements when a dataset
has been identified as a root cause."  This module implements that
drill-down: once BugDoc asserts ``dataset = X`` as a root cause, the
dataset's items become the new search space, and adaptive group testing
finds the *defective items* -- the minimal subset whose presence makes
the pipeline fail -- in far fewer pipeline runs than testing items one
at a time.

Two strategies are provided:

* :func:`binary_splitting` -- classic adaptive binary search isolating
  one defective from a failing group in ``ceil(log2 n)`` tests;
* :func:`find_defectives` -- Hwang-style generalized group testing that
  repeatedly isolates and removes defectives until a clean pass,
  needing roughly ``d * log2(n / d)`` tests for ``d`` defectives.

The *test* is a black box over item subsets, mirroring the pipeline
model: ``test(subset) -> True`` means "the pipeline fails when run on
exactly these items".  The standard group-testing assumption (failures
are monotone: any superset of a failing set fails) is validated
opportunistically and reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence, Hashable

__all__ = [
    "GroupTestResult",
    "binary_splitting",
    "find_defectives",
    "CountingTest",
]

Item = Hashable
# True = the subset FAILS (contains at least one defective item).
SubsetTest = Callable[[Sequence[Item]], bool]


class CountingTest:
    """Wraps a subset test, counting invocations and memoizing results.

    Group-testing cost is measured in pipeline executions, exactly like
    BugDoc's instance budget; memoization implements the free-replay
    rule for repeated subsets.
    """

    def __init__(self, test: SubsetTest):
        self._test = test
        self._cache: dict[frozenset[Item], bool] = {}
        self.calls = 0

    def __call__(self, subset: Sequence[Item]) -> bool:
        key = frozenset(subset)
        if key in self._cache:
            return self._cache[key]
        self.calls += 1
        result = bool(self._test(list(subset)))
        self._cache[key] = result
        return result


@dataclass
class GroupTestResult:
    """Outcome of a defective-item search.

    Attributes:
        defectives: items whose presence makes the pipeline fail, in
            discovery order.
        tests_used: subset executions charged.
        exhaustive_equivalent: tests a one-item-at-a-time scan would
            have used (for the savings headline).
        monotonicity_violations: subsets observed failing while a
            superset succeeded (evidence the defect is combinatorial,
            not item-local; results are then best-effort).
    """

    defectives: list[Item] = field(default_factory=list)
    tests_used: int = 0
    exhaustive_equivalent: int = 0
    monotonicity_violations: int = 0

    @property
    def savings_factor(self) -> float:
        if self.tests_used == 0:
            return 1.0
        return self.exhaustive_equivalent / self.tests_used


def binary_splitting(
    test: SubsetTest, items: Sequence[Item]
) -> tuple[Item | None, int]:
    """Isolate one defective item from a failing group.

    Args:
        test: subset black box (True = fails).
        items: a group already known (or believed) to fail as a whole.

    Returns:
        (defective item or None, number of tests used).  None when the
        group unexpectedly stops failing (non-monotone defect).
    """
    used = 0
    pool = list(items)
    if not pool:
        return None, used
    while len(pool) > 1:
        half = len(pool) // 2
        left = pool[:half]
        used += 1
        if test(left):
            pool = left
        else:
            pool = pool[half:]
    used += 1
    if test(pool):
        return pool[0], used
    return None, used


def find_defectives(
    test: SubsetTest,
    items: Sequence[Item],
    max_tests: int | None = None,
) -> GroupTestResult:
    """Find every defective item by iterated isolate-and-remove.

    The loop: test the remaining items as one group; if it fails,
    binary-split to isolate one defective, record it, remove it, and
    repeat; if it succeeds, every defective has been found (under
    monotonicity).  Item-local defects (each defective independently
    causes failure) are found exactly; combinatorial defects surface as
    monotonicity violations in the result.

    Args:
        test: subset black box (True = fails).
        items: the dataset's items.
        max_tests: optional budget on subset executions, checked between
            rounds -- the isolation split in flight when the budget runs
            out is allowed to finish (an overshoot of at most
            ``ceil(log2 n) + 1`` tests).
    """
    counting = CountingTest(test)
    result = GroupTestResult(exhaustive_equivalent=len(items))
    remaining = list(items)

    def budget_left() -> bool:
        return max_tests is None or counting.calls < max_tests

    while remaining and budget_left():
        if not counting(remaining):
            break  # clean: all defectives removed
        defective, __ = binary_splitting(counting, remaining)
        if defective is None:
            # The group failed but no half kept failing: non-monotone.
            result.monotonicity_violations += 1
            break
        result.defectives.append(defective)
        remaining = [item for item in remaining if item != defective]

    # Confirmation pass (free if memoized): the clean remainder must
    # really be clean, and each defective alone must fail.
    for defective in result.defectives:
        if budget_left() and not counting([defective]):
            result.monotonicity_violations += 1
    result.tests_used = counting.calls
    return result
