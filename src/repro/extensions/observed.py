"""Observed variables: enriching explanations with non-manipulable data.

The paper's future work (Sections 2 and 6): "an interesting direction
... would be to consider variables (or predicates) that can be observed
but not manipulated in our formalism to generate potentially richer
explanations."  Observed variables -- memory peaks, intermediate row
counts, warning flags -- cannot be set by the debugger, so they cannot
appear in root causes; but they *can* annotate a cause with what the
pipeline looked like whenever the cause fired.

This module keeps a side-log of observations per executed instance and
computes, for each asserted root cause, the observations that best
discriminate cause-firing runs from the rest:

* numeric observations -> standardized mean difference (Cohen's d);
* categorical observations -> the value with the highest lift.

The output is advisory prose attached to the explanation, never part of
the cause itself -- exactly the separation the paper sketches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..core.predicates import Conjunction
from ..core.types import Instance

__all__ = ["ObservationLog", "ObservedAnnotation", "EnrichedExplanation", "enrich"]


@dataclass(frozen=True)
class ObservedAnnotation:
    """One observed-variable finding attached to a cause.

    Attributes:
        variable: observed variable name.
        kind: "numeric" or "categorical".
        summary: human-readable finding.
        strength: comparable effect size (|Cohen's d| or lift - 1).
    """

    variable: str
    kind: str
    summary: str
    strength: float


@dataclass
class EnrichedExplanation:
    """A root cause plus its observed-variable annotations."""

    cause: Conjunction
    annotations: list[ObservedAnnotation] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [str(self.cause)]
        for annotation in self.annotations:
            lines.append(f"    [observed] {annotation.summary}")
        return "\n".join(lines)


class ObservationLog:
    """Side-log of observed (non-manipulable) variables per instance.

    Observations are recorded alongside provenance; instances without
    observations are simply skipped by the enrichment statistics.
    """

    def __init__(self) -> None:
        self._observations: dict[Instance, dict[str, object]] = {}

    def record(self, instance: Instance, observations: Mapping[str, object]) -> None:
        """Record (or merge) observations for one executed instance."""
        slot = self._observations.setdefault(instance, {})
        slot.update(observations)

    def observations_for(self, instance: Instance) -> Mapping[str, object] | None:
        return self._observations.get(instance)

    @property
    def variables(self) -> set[str]:
        names: set[str] = set()
        for observations in self._observations.values():
            names.update(observations)
        return names

    def __len__(self) -> int:
        return len(self._observations)

    def instances(self) -> Sequence[Instance]:
        return tuple(self._observations)


def _numeric_annotation(
    variable: str, inside: list[float], outside: list[float]
) -> ObservedAnnotation | None:
    if len(inside) < 2 or len(outside) < 2:
        return None
    mean_in = sum(inside) / len(inside)
    mean_out = sum(outside) / len(outside)
    var_in = sum((v - mean_in) ** 2 for v in inside) / max(len(inside) - 1, 1)
    var_out = sum((v - mean_out) ** 2 for v in outside) / max(len(outside) - 1, 1)
    pooled = math.sqrt((var_in + var_out) / 2.0)
    if pooled < 1e-12:
        if mean_in == mean_out:
            return None
        effect = math.inf
    else:
        effect = (mean_in - mean_out) / pooled
    direction = "higher" if effect > 0 else "lower"
    return ObservedAnnotation(
        variable=variable,
        kind="numeric",
        summary=(
            f"{variable} is {direction} when the cause fires "
            f"(mean {mean_in:.3g} vs {mean_out:.3g}, d={effect:.2f})"
        ),
        strength=abs(effect),
    )


def _categorical_annotation(
    variable: str, inside: list[object], outside: list[object]
) -> ObservedAnnotation | None:
    if not inside or not outside:
        return None
    best: tuple[float, object] | None = None
    for value in set(inside):
        p_in = inside.count(value) / len(inside)
        p_out = outside.count(value) / len(outside)
        lift = p_in / p_out if p_out > 0 else math.inf
        if best is None or lift > best[0]:
            best = (lift, value)
    if best is None or best[0] <= 1.0:
        return None
    lift, value = best
    lift_text = "inf" if math.isinf(lift) else f"{lift:.2f}"
    return ObservedAnnotation(
        variable=variable,
        kind="categorical",
        summary=(
            f"{variable}={value!r} is over-represented when the cause "
            f"fires (lift {lift_text})"
        ),
        strength=(lift - 1.0) if not math.isinf(lift) else math.inf,
    )


def enrich(
    causes: Sequence[Conjunction],
    log: ObservationLog,
    min_strength: float = 0.8,
    top_k: int = 3,
) -> list[EnrichedExplanation]:
    """Annotate each asserted cause with its strongest observed signals.

    Args:
        causes: asserted root causes.
        log: the observation side-log.
        min_strength: effect-size floor below which an observation is
            considered noise (default ~ a "large" Cohen's d).
        top_k: annotations kept per cause, strongest first.
    """
    enriched: list[EnrichedExplanation] = []
    instances = list(log.instances())
    for cause in causes:
        firing = [i for i in instances if cause.satisfied_by(i)]
        quiet = [i for i in instances if not cause.satisfied_by(i)]
        annotations: list[ObservedAnnotation] = []
        for variable in sorted(log.variables):
            inside_values = [
                obs[variable]
                for i in firing
                if (obs := log.observations_for(i)) and variable in obs
            ]
            outside_values = [
                obs[variable]
                for i in quiet
                if (obs := log.observations_for(i)) and variable in obs
            ]
            numeric = all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in inside_values + outside_values
            )
            if numeric:
                annotation = _numeric_annotation(
                    variable,
                    [float(v) for v in inside_values],
                    [float(v) for v in outside_values],
                )
            else:
                annotation = _categorical_annotation(
                    variable, list(inside_values), list(outside_values)
                )
            if annotation is not None and annotation.strength >= min_strength:
                annotations.append(annotation)
        annotations.sort(key=lambda a: -a.strength)
        enriched.append(
            EnrichedExplanation(cause=cause, annotations=annotations[:top_k])
        )
    return enriched
