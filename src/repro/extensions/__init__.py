"""Extensions the paper lists as future work (Section 6), implemented.

* :mod:`~repro.extensions.group_testing` -- once a *dataset* is the
  root cause, adaptive group testing isolates the problematic data
  items in ~d*log2(n/d) pipeline runs.
* :mod:`~repro.extensions.observed` -- observed (non-manipulable)
  variables annotate root causes with what the pipeline looked like
  whenever the cause fired, enriching explanations without widening the
  cause language.
"""

from .group_testing import (
    CountingTest,
    GroupTestResult,
    binary_splitting,
    find_defectives,
)
from .observed import (
    EnrichedExplanation,
    ObservationLog,
    ObservedAnnotation,
    enrich,
)

__all__ = [
    "CountingTest",
    "EnrichedExplanation",
    "GroupTestResult",
    "ObservationLog",
    "ObservedAnnotation",
    "binary_splitting",
    "enrich",
    "find_defectives",
]
