"""Provenance capture and storage (substrate S4).

Execution records, in-memory and SQLite stores, recording executors,
and JSONL/CSV log interchange.
"""

from .log import RecordingExecutor, read_csv, read_jsonl, write_csv, write_jsonl
from .record import ProvenanceRecord, decode_value, encode_value
from .remote import RemoteProvenanceStore, StoreTransportError, handle_store_request
from .store import InMemoryProvenanceStore, ProvenanceStore, SQLiteProvenanceStore

__all__ = [
    "InMemoryProvenanceStore",
    "ProvenanceRecord",
    "ProvenanceStore",
    "RecordingExecutor",
    "RemoteProvenanceStore",
    "SQLiteProvenanceStore",
    "StoreTransportError",
    "handle_store_request",
    "decode_value",
    "encode_value",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
