"""Network-transport provenance backend: point ops over a message channel.

PR 5's cross-process dedup assumed every worker could open the *same
SQLite file* -- true on one machine, false for a remote fleet.  This
module promotes the worker-side dedup to a pluggable transport:
:class:`RemoteProvenanceStore` implements the two point operations the
execution path needs (``lookup`` before running, ``upsert`` after) by
exchanging small JSON-able request/reply dicts over an injected
*transport callable*, and :func:`handle_store_request` is the matching
server half that applies a request to any real
:class:`~repro.provenance.store.ProvenanceStore`.

The transport contract is deliberately tiny -- ``reply = transport(request)``
with both sides plain dicts -- so it works over the fleet's socket
protocol (:mod:`repro.exec.remote.protocol`), an HTTP POST, or a test
stub calling :func:`handle_store_request` directly.  Instance values
travel through :func:`~repro.provenance.record.encode_value` /
:func:`~repro.provenance.record.decode_value` (the typed-JSON scalar
codec of the SQLite tier), so a value survives the wire exactly as it
survives the database.

Failure stance: dedup is an *optimization*, never a correctness
dependency.  A transport error or timeout reads as a cache miss on
``lookup`` and is swallowed on ``upsert`` -- the worker re-executes,
and because pipeline outcomes are deterministic (Definition 2), the
re-execution converges on the same row the lost write would have
produced (the consensus-free convergence argument of ``upsert``).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator

from ..core.types import Instance
from .record import ProvenanceRecord, decode_value, encode_value
from .store import ProvenanceStore

__all__ = [
    "RemoteProvenanceStore",
    "StoreTransportError",
    "handle_store_request",
    "instance_from_wire",
    "instance_to_wire",
]


class StoreTransportError(RuntimeError):
    """The transport failed to produce a reply (treated as a miss)."""


def instance_to_wire(instance: Instance) -> dict[str, str]:
    """Encode instance values with the typed scalar codec."""
    return {name: encode_value(value) for name, value in instance.items()}


def instance_from_wire(payload: dict[str, str]) -> Instance:
    """Decode a wire instance back to typed values."""
    return Instance({name: decode_value(text) for name, text in payload.items()})


def handle_store_request(store: ProvenanceStore, request: dict) -> dict:
    """Apply one wire request to a real store; always returns a reply.

    Requests::

        {"op": "lookup", "workflow": w, "instance": {name: encoded}}
        {"op": "upsert", "workflow": w, "instance": {...},
         "outcome": "PASS", "cost": 0.25, "created_at": 1e9}

    Replies carry ``{"found": bool, "outcome": str, "cost": float}`` for
    lookups and ``{"ok": bool}`` for upserts; any server-side store
    trouble degrades to ``found: false`` / ``ok: false`` rather than
    raising across the wire.
    """
    from ..core.types import Outcome

    try:
        op = request.get("op")
        workflow = str(request.get("workflow", ""))
        instance = instance_from_wire(request.get("instance", {}))
        if op == "lookup":
            record = store.lookup(workflow, instance)
            if record is None:
                return {"found": False}
            return {
                "found": True,
                "outcome": record.outcome.value,
                "cost": record.cost,
            }
        if op == "upsert":
            store.upsert(
                ProvenanceRecord(
                    workflow=workflow,
                    instance=instance,
                    outcome=Outcome(request["outcome"]),
                    cost=float(request.get("cost", 0.0)),
                    created_at=float(request.get("created_at") or time.time()),
                )
            )
            return {"ok": True}
        return {"error": f"unknown store op {op!r}"}
    except Exception as error:
        return {"error": repr(error), "found": False, "ok": False}


class RemoteProvenanceStore(ProvenanceStore):
    """Point-op provenance dedup over an injected transport.

    Args:
        transport: ``request dict -> reply dict``; raises (anything) or
            returns an ``error`` reply on failure.  The fleet worker
            passes its coordinator round-trip here.
        workflow: optional default workflow tag (informational).

    Only ``lookup`` and ``upsert`` are remote; the enumeration surface
    (``records`` / ``__len__``) is intentionally unsupported -- the
    coordinator owns the authoritative store, and a worker has no
    business scanning it over the dispatch channel.
    """

    def __init__(
        self,
        transport: Callable[[dict], dict],
        workflow: str | None = None,
    ):
        self._transport = transport
        self.workflow = workflow
        self._stats = {"lookups": 0, "hits": 0, "upserts": 0, "transport_errors": 0}

    # -- Point operations (the execution path) ------------------------------
    def lookup(self, workflow: str, instance: Instance) -> ProvenanceRecord | None:
        from ..core.types import Outcome

        self._stats["lookups"] += 1
        try:
            reply = self._transport(
                {
                    "op": "lookup",
                    "workflow": workflow,
                    "instance": instance_to_wire(instance),
                }
            )
        except Exception as error:
            self._stats["transport_errors"] += 1
            raise StoreTransportError(repr(error)) from None
        if not reply or not reply.get("found"):
            return None
        self._stats["hits"] += 1
        return ProvenanceRecord(
            workflow=workflow,
            instance=instance,
            outcome=Outcome(reply["outcome"]),
            cost=float(reply.get("cost", 0.0)),
            created_at=time.time(),
        )

    def upsert(self, record: ProvenanceRecord) -> ProvenanceRecord:
        self._stats["upserts"] += 1
        try:
            self._transport(
                {
                    "op": "upsert",
                    "workflow": record.workflow,
                    "instance": instance_to_wire(record.instance),
                    "outcome": record.outcome.value,
                    "cost": record.cost,
                    "created_at": record.created_at,
                }
            )
        except Exception as error:
            self._stats["transport_errors"] += 1
            raise StoreTransportError(repr(error)) from None
        return record

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        return self.upsert(record)

    def stats(self) -> dict[str, int]:
        return dict(self._stats)

    # -- Enumeration is not part of the transport contract -------------------
    def records(self) -> Iterator[ProvenanceRecord]:
        raise NotImplementedError(
            "RemoteProvenanceStore supports point lookup/upsert only"
        )

    def __len__(self) -> int:
        raise NotImplementedError(
            "RemoteProvenanceStore supports point lookup/upsert only"
        )
