"""Provenance logging: recording executors and log file import/export.

``RecordingExecutor`` wraps any black-box executor so that every run is
captured into a :class:`~repro.provenance.store.ProvenanceStore` as a
side effect -- the pattern the paper assumes when it says pipelines run
under a provenance-enabled workflow system.  The module also reads and
writes JSONL and CSV execution logs, the interchange formats used to
feed the baseline tools (Data X-Ray's feature files, Explanation
Tables' input relation).
"""

from __future__ import annotations

import csv
import time
from collections.abc import Iterable
from pathlib import Path

from ..core.history import ExecutionHistory
from ..core.types import Executor, Instance, Outcome
from .record import ProvenanceRecord
from .store import ProvenanceStore

__all__ = [
    "RecordingExecutor",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
]


class RecordingExecutor:
    """Wraps an executor; every call is appended to a provenance store."""

    def __init__(
        self,
        inner: Executor,
        store: ProvenanceStore,
        workflow: str = "pipeline",
        clock=time.time,
    ):
        self._inner = inner
        self._store = store
        self._workflow = workflow
        self._clock = clock

    def __call__(self, instance: Instance) -> Outcome:
        started = self._clock()
        outcome = self._inner(instance)
        finished = self._clock()
        self._store.add(
            ProvenanceRecord(
                workflow=self._workflow,
                instance=instance,
                outcome=outcome,
                cost=finished - started,
                created_at=started,
            )
        )
        return outcome


def write_jsonl(records: Iterable[ProvenanceRecord], path: str | Path) -> int:
    """Write records as one JSON object per line; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_json())
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[ProvenanceRecord]:
    """Read a JSONL provenance log."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(ProvenanceRecord.from_json(line))
    return records


def write_csv(history: ExecutionHistory, path: str | Path) -> int:
    """Write a history as a flat CSV: one parameter column + outcome.

    This is the relational layout Explanation Tables consumes (a table
    of categorical attributes with one binary outcome column).  All
    values are stringified; use JSONL when type fidelity matters.
    """
    instances = history.instances
    if not instances:
        with open(path, "w", newline="", encoding="utf-8") as handle:
            csv.writer(handle).writerow(["outcome"])
        return 0
    names = sorted(instances[0].keys())
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names + ["outcome"])
        for instance in instances:
            outcome = history.outcome_of(instance)
            assert outcome is not None
            writer.writerow([str(instance[name]) for name in names] + [outcome.value])
            count += 1
    return count


def read_csv(path: str | Path) -> ExecutionHistory:
    """Read a CSV log written by :func:`write_csv` (values stay strings)."""
    history = ExecutionHistory()
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header == ["outcome"]:
            return history
        names = header[:-1]
        for row in reader:
            if not row:
                continue
            instance = Instance(dict(zip(names, row[:-1])))
            history.record(instance, Outcome(row[-1]))
    return history
