"""Provenance stores: queryable repositories of execution records.

Two backends share one interface: an in-memory store for debugging
sessions, and a SQLite store for durable provenance (the paper's
prototype analyzes VisTrails provenance databases; SQLite is the
faithful laptop-scale equivalent).  Both support outcome filtering,
predicate filtering (e.g. "all failing runs with LibraryVersion = 2.0"),
conversion to :class:`~repro.core.history.ExecutionHistory`, and
parameter-value-universe extraction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sqlite3
import threading
import time
from collections.abc import Iterable, Iterator

from ..core.history import ExecutionHistory
from ..core.predicates import Conjunction
from ..core.types import (
    Evaluation,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Value,
)
from .record import ProvenanceRecord, decode_value, encode_value


def instance_key(instance: Instance) -> str:
    """Canonical string key for one parameter assignment.

    Used by the SQLite backend for O(log n) instance lookups (the
    service's persistent cache tier) instead of reconstructing and
    comparing every record's bindings.  Derived from the instance's
    cached canonical tuple (the same source its hash uses) and memoized
    on the instance, so serialization work happens at most once per
    instance regardless of how many store round-trips it makes.
    """
    cached = getattr(instance, "_persist_key", None)
    if cached is not None:
        return cached
    items = getattr(instance, "canonical_items", None)
    if items is None:  # duck-typed mapping
        items = sorted(instance.items())
    key = json.dumps([[name, encode_value(value)] for name, value in items])
    try:
        instance._persist_key = key  # noqa: SLF001 - deliberate memo slot
    except AttributeError:  # duck-typed mapping without the slot
        pass
    return key

__all__ = [
    "ProvenanceStore",
    "InMemoryProvenanceStore",
    "SQLiteProvenanceStore",
    "instance_key",
    "space_key",
]


def space_key(space: ParameterSpace) -> str:
    """Stable fingerprint of a space's interned code tables.

    Derived from every parameter's name, kind, and domain *in code
    order* (a value's domain position is its columnar-engine code), so
    two spaces share a key exactly when their
    :class:`~repro.core.engine.SpaceCodec` tables are identical.
    """
    payload = json.dumps(
        [
            [p.name, p.kind.value, [encode_value(v) for v in p.domain]]
            for p in space.parameters
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class ProvenanceStore:
    """Interface shared by the provenance backends."""

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        """Persist one record; returns it with ``record_id`` assigned."""
        raise NotImplementedError

    def records(self) -> Iterator[ProvenanceRecord]:
        """All records in insertion order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def lookup(self, workflow: str, instance: Instance) -> ProvenanceRecord | None:
        """The record for ``(workflow, instance)``, or None.

        This is the point lookup the service's persistent cache tier
        performs before every execution.  The generic implementation
        scans; backends override it with indexed access.
        """
        for record in self.records():
            if record.workflow == workflow and record.instance == instance:
                return record
        return None

    def upsert(self, record: ProvenanceRecord) -> ProvenanceRecord:
        """Insert the record unless ``(workflow, instance)`` already exists.

        Returns the stored record either way, so concurrent services
        writing the same outcome converge on one row (consensus-free:
        outcomes are deterministic per Definition 2, so last-writer and
        first-writer agree).
        """
        existing = self.lookup(record.workflow, record.instance)
        if existing is not None:
            return existing
        return self.add(record)

    # -- Shared derived operations ------------------------------------------
    def add_all(self, records: Iterable[ProvenanceRecord]) -> None:
        for record in records:
            self.add(record)

    def query(
        self,
        outcome: Outcome | None = None,
        where: Conjunction | None = None,
        workflow: str | None = None,
    ) -> list[ProvenanceRecord]:
        """Filter records by outcome, a predicate conjunction, and workflow."""
        matched = []
        for record in self.records():
            if outcome is not None and record.outcome is not outcome:
                continue
            if workflow is not None and record.workflow != workflow:
                continue
            if where is not None and not where.satisfied_by(record.instance):
                continue
            matched.append(record)
        return matched

    def to_history(self, workflow: str | None = None) -> ExecutionHistory:
        """Project the store into an algorithm-facing execution history.

        Duplicate instances are collapsed by the history itself; a
        contradictory pair (same instance, both outcomes) raises, which
        surfaces non-deterministic pipelines early.
        """
        history = ExecutionHistory()
        for record in self.records():
            if workflow is not None and record.workflow != workflow:
                continue
            if history.outcome_of(record.instance) is None:
                history.append(record.to_evaluation())
        return history

    def value_universe(self) -> dict[str, set[Value]]:
        """Definition 1's universe ``U`` over everything recorded."""
        universe: dict[str, set[Value]] = {}
        for record in self.records():
            for name, value in record.instance.items():
                universe.setdefault(name, set()).add(value)
        return universe

    def count_by_outcome(self) -> dict[Outcome, int]:
        counts = {Outcome.SUCCEED: 0, Outcome.FAIL: 0}
        for record in self.records():
            counts[record.outcome] += 1
        return counts


class InMemoryProvenanceStore(ProvenanceStore):
    """Append-only list-backed store (thread-safe)."""

    def __init__(self) -> None:
        self._records: list[ProvenanceRecord] = []
        self._index: dict[tuple[str, Instance], ProvenanceRecord] = {}
        self._lock = threading.Lock()

    def _append_locked(self, record: ProvenanceRecord) -> ProvenanceRecord:
        assigned = dataclasses.replace(record, record_id=len(self._records) + 1)
        self._records.append(assigned)
        self._index.setdefault((record.workflow, record.instance), assigned)
        return assigned

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        with self._lock:
            return self._append_locked(record)

    def lookup(self, workflow: str, instance: Instance) -> ProvenanceRecord | None:
        with self._lock:
            return self._index.get((workflow, instance))

    def upsert(self, record: ProvenanceRecord) -> ProvenanceRecord:
        with self._lock:
            existing = self._index.get((record.workflow, record.instance))
            if existing is not None:
                return existing
            return self._append_locked(record)

    def records(self) -> Iterator[ProvenanceRecord]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)


class SQLiteProvenanceStore(ProvenanceStore):
    """SQLite-backed store; pass ``":memory:"`` for an ephemeral database.

    Schema (``PRAGMA user_version`` = 3)::

        runs(id INTEGER PRIMARY KEY, workflow TEXT, outcome TEXT,
             result TEXT, cost REAL, created_at REAL, instance_key TEXT)
        bindings(run_id INTEGER, name TEXT, value TEXT,
                 PRIMARY KEY (run_id, name))
        codec_spaces(space_key TEXT PRIMARY KEY, n_parameters INTEGER,
                     created_at REAL)
        codec_parameters(space_key TEXT, position INTEGER, name TEXT,
                         kind TEXT, domain TEXT,
                         PRIMARY KEY (space_key, position))
        encoded_runs(run_id INTEGER, space_key TEXT, codes TEXT,
                     PRIMARY KEY (run_id, space_key))
        jobs(job_id TEXT PRIMARY KEY, workflow TEXT, algorithm TEXT,
             spec_fingerprint TEXT, status TEXT, report_fingerprint TEXT,
             budget_spent INTEGER, wall_seconds REAL,
             created_at REAL, finished_at REAL)
        job_events(job_id TEXT, seq INTEGER, kind TEXT, ts_wall REAL,
                   ts_monotonic REAL, terminal INTEGER, payload TEXT,
                   PRIMARY KEY (job_id, seq))
        job_queue(job_id TEXT PRIMARY KEY, tenant TEXT,
                  priority INTEGER, payload TEXT, status TEXT,
                  attempts INTEGER, enqueued_at REAL, claimed_at REAL,
                  finished_at REAL)

    ``bindings`` holds one row per parameter-value pair, making
    parameter-level SQL analysis possible (``GROUP BY name, value``),
    which is how provenance systems expose pipeline configurations.
    ``instance_key`` is the canonical serialized assignment, indexed so
    the service's persistent execution cache can do point lookups.

    ``codec_spaces``/``codec_parameters`` (schema v2) persist the
    columnar engine's interned code tables: each parameter's domain is
    stored *in code order* (a value's array position is its
    :meth:`~repro.core.types.Parameter.code_of` code), so a warm start
    can rebuild the exact :class:`~repro.core.engine.SpaceCodec` tables
    from the database instead of re-deriving them, and repeated
    hydrations share one interned :class:`~repro.core.types.ParameterSpace`
    object per store (see :meth:`save_space` / :meth:`load_space` /
    :meth:`hydrate`).

    ``encoded_runs`` (schema v3) stores each run's instance as the JSON
    list of its per-parameter *value codes* under a saved space -- the
    exact integer tuple :meth:`~repro.core.engine.SpaceCodec.encode`
    produces.  :meth:`hydrate` then rebuilds history instances straight
    from code tuples (one domain lookup per parameter, no per-binding
    JSON decode) and seeds the columnar store via
    :meth:`~repro.core.engine.ColumnarStore.load_codes` with **zero**
    encode calls; the first hydration of a database without encoded
    rows computes and persists them (:meth:`save_encoded_rows`).

    ``jobs``/``job_events`` (schema v4) are the durable telemetry
    tier: one ``jobs`` row per debugging job (spec fingerprint,
    workload family, terminal status, final report fingerprint) and
    the job's complete ordered event log, keyed by the
    :class:`~repro.exec.events.EventBus` sequence number.  The tables
    are written by the :mod:`repro.obs` sink (batched, off the publish
    hot path) and read back by :meth:`job_event_rows` (prefix-complete
    replay: rows are returned in seq order and cut at the first gap,
    so a tail lost to a crash can never fake a complete stream) and by
    :meth:`iter_job_events` (the streaming scan under ``repro query``).
    This layer stores plain rows, not event objects -- ``provenance``
    sits below ``exec`` in the layering, so the event dataclass never
    crosses into this module.

    ``job_queue`` (schema v5) is the durable admission queue behind the
    always-on service front-end: one row per enqueued job carrying an
    *opaque* JSON payload (the service layer's spec codec lives above
    this module -- provenance never learns what a ``JobSpec`` is) and a
    three-state machine ``queued -> running -> done``.  Enqueueing an
    existing ``job_id`` is latest-wins (the row resets to ``queued``
    with the new payload); claims are single-statement compare-and-set
    transitions, so two services sharing one database cannot both run
    the same queued job; :meth:`recover_queue` repairs the crash edges
    at restart (``running`` rows whose ``jobs`` row already reached a
    terminal status become ``done`` -- the job finished, only the queue
    transition was lost -- and the rest return to ``queued``).

    Migrations run in place at connection time: pre-service databases
    gain the ``instance_key`` column + backfill (v1), pre-codec
    databases gain the codec tables (v2), pre-batch databases gain the
    encoded-row table (v3), pre-observability databases gain the job
    telemetry tables (v4), pre-queue databases gain ``job_queue`` (v5),
    pre-retention databases gain the rollup/summary tables plus a
    one-time rollup backfill scan over ``job_events`` (v6);
    ``user_version`` records the result so future migrations know
    where to start.
    """

    SCHEMA_VERSION = 6

    #: Bucket width of the ``event_rollups`` ingest ledger (seconds).
    ROLLUP_WINDOW_SECONDS = 3600

    def __init__(self, path: str = ":memory:"):
        self._path = str(path)
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        #: Lazy second connection for the event sink's batch writes
        #: (see :meth:`persist_event_batch`): telemetry flushes then
        #: never hold the main lock, so they cannot convoy the
        #: execution-cache hot path behind a commit.
        self._event_connection: sqlite3.Connection | None = None
        self._event_lock = threading.Lock()
        # One interned ParameterSpace object per space_key and process:
        # identity matters, because ExecutionHistory.columnar_store()
        # keeps its incremental store only while the space object is
        # unchanged, and Parameter's value->code tables are built once
        # per object.
        self._space_registry: dict[str, "ParameterSpace"] = {}
        with self._lock:
            # WAL with synchronous=NORMAL: commits append to the log
            # instead of rewriting pages behind a double fsync, which
            # cuts per-commit latency by an order of magnitude -- the
            # difference between the durable event sink costing a few
            # percent and a few tens of percent of job wall clock.
            # Durable across process crashes (the telemetry contract);
            # an OS-level crash may lose the last checkpoint window,
            # exactly the bounded-tail loss replay already tolerates.
            # No-ops harmlessly on ":memory:" databases.
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
            # Read the version *before* creating tables: the backfill
            # decision below must see what the database was, not what
            # this executescript is about to make it.
            (prior_version,) = self._connection.execute(
                "PRAGMA user_version"
            ).fetchone()
            self._connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS runs (
                    id INTEGER PRIMARY KEY AUTOINCREMENT,
                    workflow TEXT NOT NULL,
                    outcome TEXT NOT NULL,
                    result TEXT,
                    cost REAL NOT NULL DEFAULT 0,
                    created_at REAL NOT NULL DEFAULT 0,
                    instance_key TEXT
                );
                CREATE TABLE IF NOT EXISTS bindings (
                    run_id INTEGER NOT NULL REFERENCES runs(id),
                    name TEXT NOT NULL,
                    value TEXT NOT NULL,
                    PRIMARY KEY (run_id, name)
                );
                CREATE INDEX IF NOT EXISTS idx_bindings_name_value
                    ON bindings(name, value);
                CREATE TABLE IF NOT EXISTS codec_spaces (
                    space_key TEXT PRIMARY KEY,
                    n_parameters INTEGER NOT NULL,
                    created_at REAL NOT NULL DEFAULT 0
                );
                CREATE TABLE IF NOT EXISTS codec_parameters (
                    space_key TEXT NOT NULL
                        REFERENCES codec_spaces(space_key),
                    position INTEGER NOT NULL,
                    name TEXT NOT NULL,
                    kind TEXT NOT NULL,
                    domain TEXT NOT NULL,
                    PRIMARY KEY (space_key, position)
                );
                CREATE TABLE IF NOT EXISTS encoded_runs (
                    run_id INTEGER NOT NULL REFERENCES runs(id),
                    space_key TEXT NOT NULL
                        REFERENCES codec_spaces(space_key),
                    codes TEXT NOT NULL,
                    PRIMARY KEY (run_id, space_key)
                );
                CREATE TABLE IF NOT EXISTS jobs (
                    job_id TEXT PRIMARY KEY,
                    workflow TEXT,
                    algorithm TEXT,
                    spec_fingerprint TEXT,
                    status TEXT NOT NULL DEFAULT 'submitted',
                    report_fingerprint TEXT,
                    budget_spent INTEGER,
                    wall_seconds REAL,
                    created_at REAL NOT NULL DEFAULT 0,
                    finished_at REAL
                );
                CREATE TABLE IF NOT EXISTS job_events (
                    job_id TEXT NOT NULL,
                    seq INTEGER NOT NULL,
                    kind TEXT NOT NULL,
                    ts_wall REAL NOT NULL DEFAULT 0,
                    ts_monotonic REAL NOT NULL DEFAULT 0,
                    terminal INTEGER NOT NULL DEFAULT 0,
                    payload TEXT NOT NULL DEFAULT '{}',
                    PRIMARY KEY (job_id, seq)
                );
                CREATE INDEX IF NOT EXISTS idx_job_events_kind
                    ON job_events(kind);
                CREATE INDEX IF NOT EXISTS idx_job_events_kind_job_seq
                    ON job_events(kind, job_id, seq);
                CREATE TABLE IF NOT EXISTS job_summaries (
                    job_id TEXT PRIMARY KEY,
                    workflow TEXT,
                    algorithm TEXT,
                    spec_fingerprint TEXT,
                    status TEXT,
                    report_fingerprint TEXT,
                    budget_spent INTEGER,
                    wall_seconds REAL,
                    created_at REAL,
                    finished_at REAL,
                    event_count INTEGER NOT NULL DEFAULT 0,
                    first_ts REAL,
                    last_ts REAL,
                    kind_counts TEXT NOT NULL DEFAULT '{}',
                    span_stats TEXT NOT NULL DEFAULT '{}',
                    counters TEXT NOT NULL DEFAULT '{}',
                    terminal_payload TEXT,
                    compacted_at REAL NOT NULL DEFAULT 0
                );
                CREATE TABLE IF NOT EXISTS job_rollups (
                    job_id TEXT NOT NULL,
                    metric TEXT NOT NULL,
                    value REAL NOT NULL DEFAULT 0,
                    PRIMARY KEY (job_id, metric)
                );
                CREATE INDEX IF NOT EXISTS idx_job_rollups_metric
                    ON job_rollups(metric, job_id);
                CREATE TABLE IF NOT EXISTS event_rollups (
                    window_start INTEGER NOT NULL,
                    kind TEXT NOT NULL,
                    count INTEGER NOT NULL DEFAULT 0,
                    PRIMARY KEY (window_start, kind)
                );
                CREATE TABLE IF NOT EXISTS job_queue (
                    job_id TEXT PRIMARY KEY,
                    tenant TEXT,
                    priority INTEGER NOT NULL DEFAULT 1,
                    payload TEXT NOT NULL DEFAULT '{}',
                    status TEXT NOT NULL DEFAULT 'queued',
                    attempts INTEGER NOT NULL DEFAULT 0,
                    enqueued_at REAL NOT NULL DEFAULT 0,
                    claimed_at REAL,
                    finished_at REAL
                );
                CREATE INDEX IF NOT EXISTS idx_job_queue_status
                    ON job_queue(status, enqueued_at);
                """
            )
            try:
                # Databases created before the service layer lack the
                # lookup column; migrate them in place.
                self._connection.execute(
                    "ALTER TABLE runs ADD COLUMN instance_key TEXT"
                )
            except sqlite3.OperationalError:
                pass  # column already exists
            self._connection.execute(
                "CREATE INDEX IF NOT EXISTS idx_runs_workflow_key"
                " ON runs(workflow, instance_key)"
            )
            self._connection.execute(
                f"PRAGMA user_version = {self.SCHEMA_VERSION}"
            )
            self._connection.commit()
            self._backfill_legacy_keys()
            if 0 < prior_version < 6:
                self._backfill_rollups()

    @property
    def schema_version(self) -> int:
        """The migrated-to ``PRAGMA user_version`` of the database."""
        with self._lock:
            (version,) = self._connection.execute(
                "PRAGMA user_version"
            ).fetchone()
        return int(version)

    def _backfill_legacy_keys(self) -> None:
        """One-time migration: compute instance_key for pre-PR rows.

        Keys are derivable from the bindings table, so databases written
        before the column existed get full indexed-lookup service after
        this (instead of paying a decode-scan on every lookup miss).
        Caller holds the lock.
        """
        legacy = self._connection.execute(
            "SELECT id FROM runs WHERE instance_key IS NULL"
        ).fetchall()
        if not legacy:
            return
        for (run_id,) in legacy:
            bindings = self._connection.execute(
                "SELECT name, value FROM bindings WHERE run_id = ?", (run_id,)
            ).fetchall()
            decoded = Instance(
                {name: decode_value(value) for name, value in bindings}
            )
            self._connection.execute(
                "UPDATE runs SET instance_key = ? WHERE id = ?",
                (instance_key(decoded), run_id),
            )
        self._connection.commit()

    # -- Incremental rollups (schema v6) --------------------------------------
    #
    # ``job_rollups`` pre-aggregates the two event-derived metric forms
    # the query engine's ``agg`` supports (``span:<name>`` per-job
    # second sums and ``count:<kind>`` per-job event counts) and is
    # maintained *in the same transaction* as every event insert --
    # constant work per appended batch, never a rescan (the
    # incremental-maintenance stance of "Answering FO+MOD queries under
    # updates").  Byte-identity with the raw scan is a hard contract:
    #
    # * span seconds are applied one SQL ``value = value + ?`` per
    #   inserted row, in insertion (= per-job seq) order, so the IEEE
    #   double accumulation order matches the raw scan's left-to-right
    #   per-job sum bit for bit;
    # * counts are exact small integers, so batching their deltas is
    #   associative and safe;
    # * deltas apply only to rows the ``INSERT OR IGNORE`` actually
    #   landed -- re-delivered duplicates must not double-count.
    #
    # ``event_rollups`` is a per-window ingest ledger (events ever
    # written per wall-clock bucket and kind).  It is monotone by
    # design: a latest-wins resubmission purges the job's raw events
    # and ``job_rollups`` rows but does not decrement the ledger.

    _UPSERT_JOB_ROLLUP_SQL = (
        "INSERT INTO job_rollups (job_id, metric, value) VALUES (?, ?, ?)"
        " ON CONFLICT(job_id, metric)"
        " DO UPDATE SET value = value + excluded.value"
    )
    _UPSERT_EVENT_ROLLUP_SQL = (
        "INSERT INTO event_rollups (window_start, kind, count)"
        " VALUES (?, ?, ?) ON CONFLICT(window_start, kind)"
        " DO UPDATE SET count = count + excluded.count"
    )

    def _accumulate_rollup_row(
        self,
        job_id: str,
        kind: str,
        ts_wall: float,
        payload: dict,
        span_updates: list,
        count_deltas: dict,
        window_deltas: dict,
    ) -> None:
        """Fold one newly inserted event row into the pending deltas.

        Mirrors the raw-scan parse rules of
        :meth:`repro.obs.query.QueryEngine._per_job_values` exactly: a
        span contributes only when its ``name`` is a string and its
        ``seconds`` parse as a float (a missing key contributes 0.0,
        exactly as the raw path's ``payload.get("seconds", 0.0)``).
        """
        if kind == "span":
            name = payload.get("name")
            if isinstance(name, str):
                try:
                    seconds = float(payload.get("seconds", 0.0))
                except (TypeError, ValueError):
                    seconds = None
                if seconds is not None:
                    span_updates.append((job_id, "span:" + name, seconds))
        count_key = (job_id, "count:" + kind)
        count_deltas[count_key] = count_deltas.get(count_key, 0.0) + 1.0
        window = (
            int(ts_wall // self.ROLLUP_WINDOW_SECONDS)
            * self.ROLLUP_WINDOW_SECONDS
        )
        window_key = (window, kind)
        window_deltas[window_key] = window_deltas.get(window_key, 0) + 1

    def _flush_rollup_deltas(
        self,
        connection: sqlite3.Connection,
        span_updates: list,
        count_deltas: dict,
        window_deltas: dict,
    ) -> None:
        """Apply accumulated deltas (caller commits).  ``executemany``
        executes its parameter rows in order, which is what preserves
        the per-(job, span) float accumulation order."""
        if span_updates:
            connection.executemany(self._UPSERT_JOB_ROLLUP_SQL, span_updates)
        if count_deltas:
            connection.executemany(
                self._UPSERT_JOB_ROLLUP_SQL,
                [(job, metric, value) for (job, metric), value in count_deltas.items()],
            )
        if window_deltas:
            connection.executemany(
                self._UPSERT_EVENT_ROLLUP_SQL,
                [(window, kind, count) for (window, kind), count in window_deltas.items()],
            )

    def _backfill_rollups(self) -> None:
        """One-time v6 migration: rebuild the rollup tables from the raw
        event log (pre-v6 databases have events but no rollups).
        Caller holds the lock."""
        self._connection.execute("DELETE FROM job_rollups")
        self._connection.execute("DELETE FROM event_rollups")
        cursor = self._connection.execute(
            "SELECT job_id, kind, ts_wall, payload FROM job_events"
            " ORDER BY job_id, seq"
        )
        while True:
            batch = cursor.fetchmany(2048)
            if not batch:
                break
            span_updates: list = []
            count_deltas: dict = {}
            window_deltas: dict = {}
            for job_id, kind, ts_wall, payload_text in batch:
                payload = json.loads(payload_text) if payload_text else {}
                self._accumulate_rollup_row(
                    job_id,
                    str(kind),
                    float(ts_wall),
                    payload,
                    span_updates,
                    count_deltas,
                    window_deltas,
                )
            self._flush_rollup_deltas(
                self._connection, span_updates, count_deltas, window_deltas
            )
        self._connection.commit()

    def close(self) -> None:
        with self._event_lock:
            if self._event_connection is not None:
                self._event_connection.close()
                self._event_connection = None
        with self._lock:
            self._connection.close()

    # -- Interned code tables (schema v2) ------------------------------------
    def save_space(self, space: ParameterSpace) -> str:
        """Persist a space's interned code tables; returns its key.

        Idempotent: saving an already-known space is a no-op (the key is
        content-derived).  The space object is also interned in the
        per-store registry, so a later :meth:`load_space` in this
        process returns this exact object.
        """
        key = space_key(space)
        with self._lock:
            exists = self._connection.execute(
                "SELECT 1 FROM codec_spaces WHERE space_key = ?", (key,)
            ).fetchone()
            if exists is None:
                try:
                    self._connection.execute(
                        "INSERT INTO codec_spaces"
                        " (space_key, n_parameters, created_at)"
                        " VALUES (?, ?, ?)",
                        (key, len(space.parameters), time.time()),
                    )
                    self._connection.executemany(
                        "INSERT INTO codec_parameters"
                        " (space_key, position, name, kind, domain)"
                        " VALUES (?, ?, ?, ?, ?)",
                        [
                            (
                                key,
                                position,
                                parameter.name,
                                parameter.kind.value,
                                json.dumps(
                                    [encode_value(v) for v in parameter.domain]
                                ),
                            )
                            for position, parameter in enumerate(space.parameters)
                        ],
                    )
                    self._connection.commit()
                except sqlite3.IntegrityError:
                    # Another process persisted the same key concurrently;
                    # content-derived keys make the rows identical.
                    self._connection.rollback()
            self._space_registry.setdefault(key, space)
        return key

    def load_space(self, key: str) -> ParameterSpace | None:
        """Rebuild the space persisted under ``key``, or None.

        Within one process, repeated loads return the *same* interned
        :class:`~repro.core.types.ParameterSpace` object -- this is what
        lets a warm start skip re-interning: the parameters' value->code
        tables are built once, and
        :meth:`~repro.core.history.ExecutionHistory.columnar_store`
        keeps its incremental state because the space identity is
        stable.

        Domains round-trip exactly for scalar values (int/float/str/
        bool/None); exotic domain values degrade to their ``repr``
        strings, like the bindings table.
        """
        with self._lock:
            cached = self._space_registry.get(key)
            if cached is not None:
                return cached
            rows = self._connection.execute(
                "SELECT position, name, kind, domain FROM codec_parameters"
                " WHERE space_key = ? ORDER BY position",
                (key,),
            ).fetchall()
        if not rows:
            return None
        space = ParameterSpace(
            [
                Parameter(
                    name,
                    tuple(decode_value(v) for v in json.loads(domain)),
                    ParameterKind(kind),
                )
                for __, name, kind, domain in rows
            ]
        )
        with self._lock:
            # setdefault: a concurrent load of the same key must not
            # hand out two distinct space objects.
            return self._space_registry.setdefault(key, space)

    def saved_space_keys(self) -> list[str]:
        """Keys of every persisted space, oldest first."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT space_key FROM codec_spaces ORDER BY created_at, space_key"
            ).fetchall()
        return [key for (key,) in rows]

    # -- Encoded rows (schema v3) ---------------------------------------------
    def save_encoded_rows(
        self, workflow: str | None, space: ParameterSpace
    ) -> int:
        """Persist per-run encoded code tuples for ``space``; returns the
        number of rows newly encoded.

        Idempotent and incremental: only runs lacking an ``encoded_runs``
        entry for this space are encoded.  Runs the codec cannot encode
        (out-of-domain values, foreign parameter sets) are left without
        an entry, which keeps :meth:`hydrate` on the decode path for
        that workflow -- exactly the rows that would degrade the
        columnar store anyway.
        """
        from ..core.engine import SpaceCodec  # lazy: keep module load light

        key = self.save_space(space)
        where = "" if workflow is None else " AND r.workflow = ?"
        args: tuple = (key,) if workflow is None else (key, workflow)
        with self._lock:
            pending = self._connection.execute(
                "SELECT r.id FROM runs r"
                " LEFT JOIN encoded_runs e"
                "   ON e.run_id = r.id AND e.space_key = ?"
                f" WHERE e.run_id IS NULL{where} ORDER BY r.id",
                args,
            ).fetchall()
            if not pending:
                return 0
            # Fetch only the pending runs' bindings (same missing-entry
            # join), so an incremental save over a large store reads
            # rows proportional to the new runs, not the whole table.
            bindings = self._connection.execute(
                "SELECT b.run_id, b.name, b.value FROM bindings b"
                " JOIN runs r ON r.id = b.run_id"
                " LEFT JOIN encoded_runs e"
                "   ON e.run_id = b.run_id AND e.space_key = ?"
                f" WHERE e.run_id IS NULL{where}",
                args,
            ).fetchall()
            by_run: dict[int, dict[str, Value]] = {}
            for run_id, name, value in bindings:
                by_run.setdefault(run_id, {})[name] = decode_value(value)
            codec = SpaceCodec(space)
            encoded_rows = []
            for (run_id,) in pending:
                codes = codec.encode(Instance(by_run.get(run_id, {})))
                if codes is not None:
                    encoded_rows.append((run_id, key, json.dumps(list(codes))))
            if encoded_rows:
                self._connection.executemany(
                    "INSERT OR IGNORE INTO encoded_runs"
                    " (run_id, space_key, codes) VALUES (?, ?, ?)",
                    encoded_rows,
                )
                self._connection.commit()
            return len(encoded_rows)

    #: Sentinel: stored encoded rows exist but are malformed (distinct
    #: from plain incomplete coverage, which is the normal cold state).
    _CORRUPT_CODES = object()

    def _encoded_history(
        self, workflow: str | None, key: str, space: ParameterSpace
    ):
        """(history, per-distinct-row codes) rebuilt purely from stored
        code tuples; None when coverage is incomplete (some run has no
        encoded row for ``key`` -- the normal cold state); the
        :data:`_CORRUPT_CODES` sentinel when a stored row is malformed.

        The instances are materialized by indexing the interned space's
        domain tuples -- no per-binding JSON decode and no
        ``SpaceCodec.encode`` call happens on this path.
        """
        where = "" if workflow is None else " WHERE r.workflow = ?"
        args: tuple = (key,) if workflow is None else (key, workflow)
        with self._lock:
            (total,) = self._connection.execute(
                "SELECT COUNT(*) FROM runs r" + where,
                args[1:],
            ).fetchone()
            rows = self._connection.execute(
                "SELECT r.outcome, r.result, r.cost, e.codes"
                " FROM runs r JOIN encoded_runs e"
                "   ON e.run_id = r.id AND e.space_key = ?"
                f"{where} ORDER BY r.id",
                args,
            ).fetchall()
        if len(rows) != total:
            return None  # cold or partial coverage: use the decode path
        names = space.names
        domains = [parameter.domain for parameter in space.parameters]
        history = ExecutionHistory()
        distinct_codes: list[tuple[int, ...]] = []
        try:
            for outcome, result, cost, codes_json in rows:
                codes = tuple(json.loads(codes_json))
                instance = Instance(
                    {
                        name: domains[position][code]
                        for position, (name, code) in enumerate(
                            zip(names, codes, strict=True)
                        )
                    }
                )
                if history.outcome_of(instance) is None:
                    history.append(
                        Evaluation(
                            instance=instance,
                            outcome=Outcome(outcome),
                            result=decode_value(result),
                            cost=cost,
                        )
                    )
                    distinct_codes.append(codes)
        except (IndexError, TypeError, ValueError):
            return self._CORRUPT_CODES  # malformed rows: decode + repair
        return history, distinct_codes

    def _delete_encoded_rows(self, workflow: str | None, key: str) -> None:
        """Drop a workflow's encoded rows for ``key`` (corruption repair:
        the next cold hydrate re-encodes and restores the warm path)."""
        where = "" if workflow is None else " AND workflow = ?"
        args: tuple = (key,) if workflow is None else (key, workflow)
        with self._lock:
            self._connection.execute(
                "DELETE FROM encoded_runs WHERE space_key = ?"
                f" AND run_id IN (SELECT id FROM runs WHERE 1=1{where})",
                args,
            )
            self._connection.commit()

    def hydrate(
        self, workflow: str | None, space: ParameterSpace
    ) -> tuple[ParameterSpace, ExecutionHistory]:
        """Warm-start bundle: interned space + history with a synced
        columnar store.

        Persists/interns ``space`` (so the returned space is the
        registry object, shared by every later hydration of the same
        tables) and builds the workflow's :class:`ExecutionHistory`.
        When every run has a stored encoded row for the space (schema
        v3), both the instances and the columnar store's bitsets are
        rebuilt straight from the code tuples -- zero per-binding JSON
        decodes and zero ``SpaceCodec.encode`` calls.  Otherwise the
        history is decoded from bindings, the encoded rows are written
        through for next time, and the store is synced by encoding, as
        before.  Either way, sessions built on the returned pair start
        with the engine's bitsets already populated.
        """
        key = self.save_space(space)
        interned = self.load_space(key)
        assert interned is not None
        loaded = self._encoded_history(workflow, key, interned)
        if loaded is self._CORRUPT_CODES:
            loaded = None
            self._delete_encoded_rows(workflow, key)  # heal the warm path
        if loaded is not None:
            history, distinct_codes = loaded
            try:
                history.columnar_store_from_codes(interned, distinct_codes)
            except ValueError:
                # Codes that decoded to instances but cannot seed the
                # store are corrupt too: purge, rebuild by re-encoding.
                loaded = None
                self._delete_encoded_rows(workflow, key)
        if loaded is None:
            history = self.to_history(workflow)
            self.save_encoded_rows(workflow, interned)
            history.columnar_store(interned)
        return interned, history

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        with self._lock:
            try:
                run_id = self._insert_locked(record)
            except BaseException:
                # Leave no open transaction / partial row behind: a
                # stale transaction would poison every later write on
                # this shared connection.
                self._connection.rollback()
                raise
        return dataclasses.replace(record, record_id=run_id)

    def _insert_locked(self, record: ProvenanceRecord) -> int:
        cursor = self._connection.execute(
            "INSERT INTO runs"
            " (workflow, outcome, result, cost, created_at, instance_key)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                record.workflow,
                record.outcome.value,
                encode_value(record.result),
                record.cost,
                record.created_at,
                instance_key(record.instance),
            ),
        )
        run_id = cursor.lastrowid
        self._connection.executemany(
            "INSERT INTO bindings (run_id, name, value) VALUES (?, ?, ?)",
            [
                (run_id, name, encode_value(value))
                for name, value in record.instance.items()
            ],
        )
        self._connection.commit()
        return run_id

    def lookup(self, workflow: str, instance: Instance) -> ProvenanceRecord | None:
        with self._lock:
            row = self._lookup_locked(workflow, instance)
        if row is None:
            return None
        return self._row_to_record(row, instance)

    def upsert(self, record: ProvenanceRecord) -> ProvenanceRecord:
        attempts = 3
        with self._lock:
            # Bound the write-lock wait: the store-wide Python lock is
            # held here, so a BEGIN IMMEDIATE stalled behind another
            # *process* for the full busy timeout would also stall
            # every concurrent lookup on this store.  100ms x 3 attempts
            # keeps worst-case contention short; the connection's own
            # timeout is restored afterwards.
            (previous,) = self._connection.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            self._connection.execute("PRAGMA busy_timeout = 100")
            try:
                return self._upsert_locked(record, attempts)
            finally:
                self._connection.execute(f"PRAGMA busy_timeout = {int(previous)}")

    def _upsert_locked(
        self, record: ProvenanceRecord, attempts: int
    ) -> ProvenanceRecord:
        for attempt in range(attempts):
            # BEGIN IMMEDIATE takes the database write lock up front so
            # the lookup-then-insert pair is atomic across *processes*
            # sharing one file, not just across this store's threads.
            # We never insert without it.
            try:
                self._connection.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError:
                # Another process held the write lock past the busy
                # timeout.  It was very likely writing this same
                # deterministic outcome: check, then retry the lock.
                row = self._lookup_locked(record.workflow, record.instance)
                if row is not None:
                    return self._row_to_record(row, record.instance)
                if attempt == attempts - 1:
                    raise
                continue
            try:
                row = self._lookup_locked(record.workflow, record.instance)
                if row is None:
                    run_id = self._insert_locked(record)
                    return dataclasses.replace(record, record_id=run_id)
            except BaseException:
                self._connection.rollback()
                raise
            self._connection.commit()
            return self._row_to_record(row, record.instance)
        raise AssertionError("unreachable")  # pragma: no cover

    def _lookup_locked(self, workflow: str, instance: Instance):
        """Point lookup by the indexed canonical key (caller holds lock).

        Legacy rows were backfilled with keys at connection time, so
        the index covers every row.
        """
        return self._connection.execute(
            "SELECT id, workflow, outcome, result, cost, created_at"
            " FROM runs WHERE workflow = ? AND instance_key = ?"
            " ORDER BY id LIMIT 1",
            (workflow, instance_key(instance)),
        ).fetchone()

    @staticmethod
    def _row_to_record(row, instance: Instance) -> ProvenanceRecord:
        run_id, workflow, outcome, result, cost, created_at = row
        return ProvenanceRecord(
            workflow=workflow,
            instance=instance,
            outcome=Outcome(outcome),
            result=decode_value(result),
            cost=cost,
            created_at=created_at,
            record_id=run_id,
        )

    def records(self) -> Iterator[ProvenanceRecord]:
        with self._lock:
            runs = self._connection.execute(
                "SELECT id, workflow, outcome, result, cost, created_at"
                " FROM runs ORDER BY id"
            ).fetchall()
            bindings = self._connection.execute(
                "SELECT run_id, name, value FROM bindings"
            ).fetchall()
        by_run: dict[int, dict[str, Value]] = {}
        for run_id, name, value in bindings:
            by_run.setdefault(run_id, {})[name] = decode_value(value)
        for run_id, workflow, outcome, result, cost, created_at in runs:
            yield ProvenanceRecord(
                workflow=workflow,
                instance=Instance(by_run.get(run_id, {})),
                outcome=Outcome(outcome),
                result=decode_value(result),
                cost=cost,
                created_at=created_at,
                record_id=run_id,
            )

    def __len__(self) -> int:
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(row[0])

    # -- Job telemetry (schema v4) --------------------------------------------
    def _begin_job_locked(
        self,
        job_id: str,
        workflow: str | None,
        algorithm: str | None,
        spec_fingerprint: str | None,
        created_at: float | None,
        connection: sqlite3.Connection | None = None,
    ) -> None:
        connection = connection or self._connection
        connection.execute(
            "DELETE FROM job_events WHERE job_id = ?", (job_id,)
        )
        # Latest-wins purge covers the job-scoped derived tables too, so
        # a resubmitted id never sums two incarnations' spans or serves
        # a stale summary.  ``event_rollups`` is deliberately untouched:
        # it is an append-only ingest ledger, not per-job state.
        connection.execute(
            "DELETE FROM job_rollups WHERE job_id = ?", (job_id,)
        )
        connection.execute(
            "DELETE FROM job_summaries WHERE job_id = ?", (job_id,)
        )
        connection.execute(
            "DELETE FROM jobs WHERE job_id = ?", (job_id,)
        )
        connection.execute(
            "INSERT INTO jobs"
            " (job_id, workflow, algorithm, spec_fingerprint,"
            "  status, created_at)"
            " VALUES (?, ?, ?, ?, 'submitted', ?)",
            (
                job_id,
                workflow,
                algorithm,
                spec_fingerprint,
                time.time() if created_at is None else created_at,
            ),
        )

    def begin_job(
        self,
        job_id: str,
        workflow: str | None = None,
        algorithm: str | None = None,
        spec_fingerprint: str | None = None,
        created_at: float | None = None,
    ) -> None:
        """Open (or re-open) a job's telemetry rows.

        Latest-wins: resubmitting a ``job_id`` (a new service run over
        the same store reusing ids) purges the prior incarnation's
        ``jobs`` row *and* its event log, so ``job_event_rows`` never
        interleaves two incarnations' sequence numbers.
        """
        with self._lock:
            self._begin_job_locked(
                job_id, workflow, algorithm, spec_fingerprint, created_at
            )
            self._connection.commit()

    def _finish_job_locked(
        self,
        job_id: str,
        status: str,
        report_fingerprint: str | None,
        budget_spent: int | None,
        wall_seconds: float | None,
        finished_at: float | None,
        connection: sqlite3.Connection | None = None,
    ) -> None:
        (connection or self._connection).execute(
            "UPDATE jobs SET status = ?, report_fingerprint = ?,"
            " budget_spent = ?, wall_seconds = ?, finished_at = ?"
            " WHERE job_id = ?",
            (
                status,
                report_fingerprint,
                budget_spent,
                wall_seconds,
                time.time() if finished_at is None else finished_at,
                job_id,
            ),
        )

    def finish_job(
        self,
        job_id: str,
        status: str,
        report_fingerprint: str | None = None,
        budget_spent: int | None = None,
        wall_seconds: float | None = None,
        finished_at: float | None = None,
    ) -> None:
        """Record a job's terminal state on its ``jobs`` row."""
        with self._lock:
            self._finish_job_locked(
                job_id,
                status,
                report_fingerprint,
                budget_spent,
                wall_seconds,
                finished_at,
            )
            self._connection.commit()

    @staticmethod
    def _prepare_event_row(row: dict) -> tuple:
        return (
            row["job_id"],
            int(row["seq"]),
            row["kind"],
            float(row.get("ts_wall", 0.0)),
            float(row.get("ts_monotonic", 0.0)),
            1 if row.get("terminal") else 0,
            json.dumps(row.get("payload") or {}, sort_keys=True),
        )

    _INSERT_EVENT_SQL = (
        "INSERT OR IGNORE INTO job_events"
        " (job_id, seq, kind, ts_wall, ts_monotonic, terminal, payload)"
        " VALUES (?, ?, ?, ?, ?, ?, ?)"
    )

    def _insert_job_events_locked(
        self,
        connection: sqlite3.Connection,
        rows: list[dict],
        prepared: list[tuple],
    ) -> None:
        """Insert a prepared event batch and fold it into the rollups.

        ``INSERT OR IGNORE`` + ``executemany`` yields no per-row
        rowcount, so re-delivered duplicates are detected by hand: the
        seqs already present for each job (one ranged SELECT per job in
        the batch) plus an in-batch seen-set decide which rows actually
        land, and only those contribute rollup deltas.  The caller must
        have opened a write transaction (``BEGIN IMMEDIATE``) *before*
        the SELECT -- with two writer connections live, the read and
        the insert must sit inside one write lock or a concurrent
        insert of the same seq double-counts.
        """
        bounds: dict[str, tuple[int, int]] = {}
        for item in prepared:
            job_id, seq = item[0], item[1]
            low, high = bounds.get(job_id, (seq, seq))
            bounds[job_id] = (min(low, seq), max(high, seq))
        seen: set[tuple[str, int]] = set()
        for job_id, (low, high) in bounds.items():
            for (seq,) in connection.execute(
                "SELECT seq FROM job_events"
                " WHERE job_id = ? AND seq BETWEEN ? AND ?",
                (job_id, low, high),
            ):
                seen.add((job_id, int(seq)))
        connection.executemany(self._INSERT_EVENT_SQL, prepared)
        span_updates: list = []
        count_deltas: dict = {}
        window_deltas: dict = {}
        for row, item in zip(rows, prepared):
            key = (item[0], item[1])
            if key in seen:
                continue
            seen.add(key)
            self._accumulate_rollup_row(
                item[0],
                str(item[2]),
                item[3],
                row.get("payload") or {},
                span_updates,
                count_deltas,
                window_deltas,
            )
        self._flush_rollup_deltas(
            connection, span_updates, count_deltas, window_deltas
        )

    @staticmethod
    def _begin_immediate(connection: sqlite3.Connection) -> None:
        """Take the database write lock up front (no-op if a transaction
        is already open -- the implicit-transaction modes vary across
        Python versions)."""
        try:
            connection.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError:
            pass

    def _event_writer(self) -> tuple[sqlite3.Connection, threading.Lock]:
        """The (connection, lock) pair telemetry batches write through.

        File-backed stores get a lazily opened second connection: WAL
        allows concurrent writers at the database level (brief,
        busy-retried serialization in C with the GIL released), so the
        flusher thread never holds the main Python lock across its
        commit.  Without this, every worker thread's ``upsert`` convoys
        behind the flusher for the full batch write -- measured as the
        dominant telemetry cost, far above the write itself.  In-memory
        databases are private to their connection, so ``:memory:``
        stores fall back to the main connection and lock.
        """
        if self._path == ":memory:":
            return self._connection, self._lock
        with self._event_lock:
            if self._event_connection is None:
                connection = sqlite3.connect(
                    self._path, check_same_thread=False
                )
                connection.execute("PRAGMA journal_mode = WAL")
                connection.execute("PRAGMA synchronous = NORMAL")
                connection.execute("PRAGMA busy_timeout = 5000")
                self._event_connection = connection
        return self._event_connection, self._event_lock

    def persist_event_batch(self, rows: Iterable[dict]) -> int:
        """One flusher batch -- lifecycle plus events, one transaction.

        The durable sink's hot path: a ``submitted`` row (seq 0) opens
        the job's ``jobs`` row (latest-wins purge, as
        :meth:`begin_job`), every row lands in ``job_events``, and each
        terminal row stamps its job's final state (as
        :meth:`finish_job`) -- all under a single commit.  Commit cost
        dominates small writes, so per-batch (instead of per-step)
        transactions keep telemetry within its few-percent overhead
        budget.  Writes go through :meth:`_event_writer`'s dedicated
        connection so the batch never contends on the main store lock.
        """
        rows = list(rows)
        if not rows:
            return 0
        prepared = [self._prepare_event_row(row) for row in rows]
        connection, lock = self._event_writer()
        with lock:
            try:
                self._begin_immediate(connection)
                for row in rows:
                    if row["kind"] == "submitted" and int(row["seq"]) == 0:
                        payload = row.get("payload") or {}
                        self._begin_job_locked(
                            row["job_id"],
                            payload.get("workflow"),
                            payload.get("algorithm"),
                            payload.get("spec_fingerprint"),
                            float(row.get("ts_wall", 0.0)) or None,
                            connection=connection,
                        )
                self._insert_job_events_locked(connection, rows, prepared)
                for row in rows:
                    if row.get("terminal"):
                        payload = row.get("payload") or {}
                        self._finish_job_locked(
                            row["job_id"],
                            str(payload.get("status", "finished")),
                            payload.get("report_fingerprint"),
                            payload.get("budget_spent"),
                            payload.get("wall_seconds"),
                            float(row.get("ts_wall", 0.0)) or None,
                            connection=connection,
                        )
                connection.commit()
            except Exception:
                connection.rollback()
                raise
        return len(rows)

    _JOB_COLUMNS = (
        "job_id",
        "workflow",
        "algorithm",
        "spec_fingerprint",
        "status",
        "report_fingerprint",
        "budget_spent",
        "wall_seconds",
        "created_at",
        "finished_at",
    )

    def job_row(self, job_id: str) -> dict | None:
        """The ``jobs`` row for ``job_id`` as a plain dict, or None."""
        with self._lock:
            row = self._connection.execute(
                f"SELECT {', '.join(self._JOB_COLUMNS)} FROM jobs"
                " WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        return dict(zip(self._JOB_COLUMNS, row, strict=True))

    def job_rows(
        self,
        workflow: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> list[dict]:
        """``jobs`` rows, oldest first, filtered and paged in SQL.

        ``limit``/``offset`` push pagination into SQLite (``LIMIT -1``
        is "unbounded", so an offset works without a limit) -- the CLI
        streams pages instead of materializing the whole table.
        """
        sql = f"SELECT {', '.join(self._JOB_COLUMNS)} FROM jobs"
        args: list = []
        if workflow is not None:
            sql += " WHERE workflow = ?"
            args.append(workflow)
        sql += " ORDER BY created_at, job_id"
        if limit is not None or offset is not None:
            sql += " LIMIT ? OFFSET ?"
            args.append(-1 if limit is None else int(limit))
            args.append(int(offset or 0))
        with self._lock:
            rows = self._connection.execute(sql, args).fetchall()
        return [dict(zip(self._JOB_COLUMNS, row, strict=True)) for row in rows]

    def append_job_events(self, rows: Iterable[dict]) -> int:
        """Batch-insert event rows; returns how many were offered.

        Each row is a plain dict with keys ``job_id``, ``seq``,
        ``kind``, ``ts_wall``, ``ts_monotonic``, ``terminal`` and
        ``payload`` (a JSON-serializable mapping).  ``INSERT OR
        IGNORE`` makes re-delivery after a sink retry idempotent: the
        ``(job_id, seq)`` primary key means the first write of a
        sequence number wins.
        """
        rows = list(rows)
        prepared = [self._prepare_event_row(row) for row in rows]
        if not prepared:
            return 0
        with self._lock:
            try:
                self._begin_immediate(self._connection)
                self._insert_job_events_locked(self._connection, rows, prepared)
                self._connection.commit()
            except Exception:
                self._connection.rollback()
                raise
        return len(prepared)

    @staticmethod
    def _event_row_to_dict(row) -> dict:
        job_id, seq, kind, ts_wall, ts_monotonic, terminal, payload = row
        return {
            "job_id": job_id,
            "seq": int(seq),
            "kind": kind,
            "ts_wall": float(ts_wall),
            "ts_monotonic": float(ts_monotonic),
            "terminal": bool(terminal),
            "payload": json.loads(payload) if payload else {},
        }

    def job_event_rows(self, job_id: str, start: int = 0) -> list[dict]:
        """The job's *prefix-complete* event rows with ``seq >= start``.

        Rows are returned in sequence order and cut at the first gap
        from seq 0: a tail lost to a crash (the sink flushes in batches)
        can never masquerade as a complete stream, and a gap caused by
        an out-of-order partial flush hides everything after it.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT job_id, seq, kind, ts_wall, ts_monotonic,"
                " terminal, payload FROM job_events"
                " WHERE job_id = ? ORDER BY seq",
                (job_id,),
            ).fetchall()
        prefix = []
        expected = 0
        for row in rows:
            if int(row[1]) != expected:
                break  # first gap: everything after is untrusted
            prefix.append(row)
            expected += 1
        return [
            self._event_row_to_dict(row) for row in prefix if int(row[1]) >= start
        ]

    def iter_job_events(
        self,
        workflow: str | None = None,
        kinds: Iterable[str] | None = None,
        batch_size: int = 512,
    ) -> Iterator[dict]:
        """Stream every persisted event row, ordered by (job_id, seq).

        The scan behind ``repro query``: rows are fetched in
        ``batch_size`` chunks (the store lock is held only per fetch,
        not across the whole iteration), so queries over large logs
        never materialize an entire event table in memory.
        """
        sql = (
            "SELECT e.job_id, e.seq, e.kind, e.ts_wall, e.ts_monotonic,"
            " e.terminal, e.payload FROM job_events e"
        )
        clauses = []
        args: list = []
        if workflow is not None:
            sql += " JOIN jobs j ON j.job_id = e.job_id"
            clauses.append("j.workflow = ?")
            args.append(workflow)
        if kinds is not None:
            kind_list = sorted(set(kinds))
            placeholders = ", ".join("?" for __ in kind_list)
            clauses.append(f"e.kind IN ({placeholders})")
            args.extend(kind_list)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY e.job_id, e.seq"
        with self._lock:
            cursor = self._connection.execute(sql, args)
        while True:
            with self._lock:
                batch = cursor.fetchmany(batch_size)
            if not batch:
                return
            for row in batch:
                yield self._event_row_to_dict(row)

    def job_event_count(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM job_events"
            ).fetchone()
        return int(count)

    # -- Retention / compaction (schema v6) -----------------------------------
    #
    # Compaction rolls a *terminal* job's raw events into its
    # ``job_summaries`` row and deletes the raw tail.  It must be safe
    # against a live writer: between the policy's decision (a read of
    # the job row and its events) and the write, the job can be
    # resubmitted (latest-wins purge rewinds it to ``submitted``) or
    # re-finished.  The guard is the queue's single-statement CAS
    # pattern -- the summary ``INSERT .. SELECT`` re-checks
    # ``status``/``finished_at`` inside the write transaction and the
    # delete only proceeds when exactly one row matched, so a stale
    # decision rolls back instead of summarizing one incarnation and
    # deleting another's events.  Per job the summary+delete commit
    # atomically: a kill -9 mid-sweep leaves every job either fully
    # compacted or fully raw, and re-running ``compact`` converges.

    _SUMMARY_EXTRA_COLUMNS = (
        "event_count",
        "first_ts",
        "last_ts",
        "kind_counts",
        "span_stats",
        "counters",
        "terminal_payload",
        "compacted_at",
    )
    _SUMMARY_COLUMNS = _JOB_COLUMNS + _SUMMARY_EXTRA_COLUMNS

    def compact_job(
        self,
        job_id: str,
        expected_status: str,
        expected_finished_at: float | None,
        summary: dict,
    ) -> int | None:
        """CAS-compact one job: write its summary, drop its raw events.

        ``summary`` carries the event-derived columns (see
        :mod:`repro.obs.retention`); the job-identity columns are
        copied from the live ``jobs`` row *inside* the transaction.
        Returns the number of raw events deleted, or ``None`` when the
        CAS guard failed (the job changed since the caller read it) --
        callers skip and retry on a later sweep.
        """
        json_keys = ("kind_counts", "span_stats", "counters")
        params = [
            int(summary.get("event_count", 0)),
            summary.get("first_ts"),
            summary.get("last_ts"),
            *(
                json.dumps(summary.get(key) or {}, sort_keys=True)
                for key in json_keys
            ),
            (
                None
                if summary.get("terminal_payload") is None
                else json.dumps(summary["terminal_payload"], sort_keys=True)
            ),
            float(summary.get("compacted_at", 0.0)),
        ]
        with self._lock:
            try:
                self._begin_immediate(self._connection)
                cursor = self._connection.execute(
                    "INSERT OR REPLACE INTO job_summaries"
                    f" ({', '.join(self._SUMMARY_COLUMNS)})"
                    f" SELECT {', '.join(self._JOB_COLUMNS)},"
                    " ?, ?, ?, ?, ?, ?, ?, ?"
                    " FROM jobs WHERE job_id = ? AND status = ?"
                    " AND finished_at IS ?",
                    (*params, job_id, expected_status, expected_finished_at),
                )
                if cursor.rowcount != 1:
                    self._connection.rollback()
                    return None
                deleted = self._connection.execute(
                    "DELETE FROM job_events WHERE job_id = ?", (job_id,)
                ).rowcount
                self._connection.commit()
            except Exception:
                self._connection.rollback()
                raise
        return int(deleted)

    def job_event_stats(self) -> list[dict]:
        """Per-job raw-event footprint (the retention sweep's worklist):
        one row per job that still has raw events."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT job_id, COUNT(*), MIN(ts_wall), MAX(ts_wall)"
                " FROM job_events GROUP BY job_id"
            ).fetchall()
        return [
            {
                "job_id": job_id,
                "events": int(count),
                "first_ts": float(first),
                "last_ts": float(last),
            }
            for job_id, count, first, last in rows
        ]

    def _summary_row_to_dict(self, row) -> dict:
        record = dict(zip(self._SUMMARY_COLUMNS, row, strict=True))
        for key in ("kind_counts", "span_stats", "counters"):
            record[key] = json.loads(record[key]) if record[key] else {}
        if record["terminal_payload"] is not None:
            record["terminal_payload"] = json.loads(record["terminal_payload"])
        return record

    def job_summary_row(self, job_id: str) -> dict | None:
        """The compacted summary for ``job_id`` (JSON columns parsed),
        or None when the job is still raw."""
        with self._lock:
            row = self._connection.execute(
                f"SELECT {', '.join(self._SUMMARY_COLUMNS)}"
                " FROM job_summaries WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return None if row is None else self._summary_row_to_dict(row)

    def job_summary_rows(self, workflow: str | None = None) -> list[dict]:
        """Every compacted summary, oldest first."""
        sql = (
            f"SELECT {', '.join(self._SUMMARY_COLUMNS)} FROM job_summaries"
        )
        args: list = []
        if workflow is not None:
            sql += " WHERE workflow = ?"
            args.append(workflow)
        sql += " ORDER BY created_at, job_id"
        with self._lock:
            rows = self._connection.execute(sql, args).fetchall()
        return [self._summary_row_to_dict(row) for row in rows]

    def rollup_values(
        self, metric: str, workflow: str | None = None
    ) -> dict[str, float]:
        """Per-job pre-aggregated values for one rollup metric.

        Ordered by ``job_id`` so the returned dict's insertion order
        matches the raw scan's (which walks ``ORDER BY job_id, seq``) --
        downstream reductions that are order-sensitive (float ``sum``,
        ``mean``) then reduce in the identical sequence.
        """
        if workflow is None:
            sql = (
                "SELECT job_id, value FROM job_rollups"
                " WHERE metric = ? ORDER BY job_id"
            )
            args: tuple = (metric,)
        else:
            sql = (
                "SELECT r.job_id, r.value FROM job_rollups r"
                " JOIN jobs j ON j.job_id = r.job_id"
                " WHERE r.metric = ? AND j.workflow = ?"
                " ORDER BY r.job_id"
            )
            args = (metric, workflow)
        with self._lock:
            rows = self._connection.execute(sql, args).fetchall()
        return {job_id: float(value) for job_id, value in rows}

    def event_rollup_rows(self) -> list[dict]:
        """The per-window ingest ledger, oldest window first."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT window_start, kind, count FROM event_rollups"
                " ORDER BY window_start, kind"
            ).fetchall()
        return [
            {"window_start": int(window), "kind": kind, "count": int(count)}
            for window, kind, count in rows
        ]

    # -- Durable job queue (schema v5) ----------------------------------------
    #
    # Isolation notes (the read-committed template analysis from
    # PAPERS.md, applied): every transition below is a *single* SQL
    # statement in its own transaction.  None of the templates contains
    # a read-then-write pair, so none can exhibit the lost-update or
    # write-skew anomalies that make read-then-write templates unsafe
    # below serializable -- each is robust under read committed, and no
    # ``BEGIN IMMEDIATE`` serialization is needed:
    #
    # * ``enqueue_job`` is one upsert: concurrent enqueues of the same
    #   id serialize at the row write and the last writer's payload
    #   wins, which is exactly the latest-wins contract.
    # * ``claim_job`` / ``finish_queued_job`` are compare-and-set
    #   updates (``WHERE status = ...`` inside the statement): two
    #   services racing a claim both run the statement, SQLite
    #   serializes the row write, and exactly one sees ``rowcount ==
    #   1``.  The losing claimer observes 0 and walks away -- no
    #   double-run, no retry loop, no lock held across Python code.
    # * ``recover_queue`` runs two statements in one transaction, but
    #   both are status-guarded updates over ``running`` rows; a
    #   concurrent *claim* only creates new ``running`` rows after its
    #   own ``queued`` check, so the repair and a claim commute.

    def enqueue_job(
        self,
        job_id: str,
        payload: dict,
        tenant: str | None = None,
        priority: int = 1,
        enqueued_at: float | None = None,
    ) -> None:
        """Enqueue a job payload durably; latest-wins on ``job_id``.

        ``payload`` is an opaque JSON-serializable mapping -- the
        service layer's spec codec owns its shape.  Re-enqueueing an
        existing id replaces the payload and resets the row to
        ``queued`` (a client re-submitting a job id wants the *new*
        spec run, whatever state the old incarnation was in).
        """
        with self._lock:
            self._connection.execute(
                "INSERT INTO job_queue"
                " (job_id, tenant, priority, payload, status, attempts,"
                "  enqueued_at, claimed_at, finished_at)"
                " VALUES (?, ?, ?, ?, 'queued', 0, ?, NULL, NULL)"
                " ON CONFLICT(job_id) DO UPDATE SET"
                "  tenant = excluded.tenant,"
                "  priority = excluded.priority,"
                "  payload = excluded.payload,"
                "  status = 'queued',"
                "  attempts = 0,"
                "  enqueued_at = excluded.enqueued_at,"
                "  claimed_at = NULL,"
                "  finished_at = NULL",
                (
                    job_id,
                    tenant,
                    int(priority),
                    json.dumps(payload, sort_keys=True),
                    time.time() if enqueued_at is None else enqueued_at,
                ),
            )
            self._connection.commit()

    def claim_job(self, job_id: str, claimed_at: float | None = None) -> bool:
        """Atomically transition one queued job to ``running``.

        Compare-and-set: returns True iff *this* caller moved the row
        from ``queued`` (see the isolation notes above -- with several
        services on one database, exactly one claim succeeds).
        """
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE job_queue SET status = 'running',"
                " attempts = attempts + 1, claimed_at = ?"
                " WHERE job_id = ? AND status = 'queued'",
                (time.time() if claimed_at is None else claimed_at, job_id),
            )
            self._connection.commit()
        return cursor.rowcount == 1

    def finish_queued_job(
        self, job_id: str, finished_at: float | None = None
    ) -> bool:
        """Mark a running queue row ``done``; True iff this call did.

        Guarded on ``running`` so a finish racing a latest-wins
        re-enqueue cannot clobber the fresh ``queued`` row.
        """
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE job_queue SET status = 'done', finished_at = ?"
                " WHERE job_id = ? AND status = 'running'",
                (time.time() if finished_at is None else finished_at, job_id),
            )
            self._connection.commit()
        return cursor.rowcount == 1

    _QUEUE_COLUMNS = (
        "job_id",
        "tenant",
        "priority",
        "payload",
        "status",
        "attempts",
        "enqueued_at",
        "claimed_at",
        "finished_at",
    )

    def _queue_row_to_dict(self, row) -> dict:
        entry = dict(zip(self._QUEUE_COLUMNS, row, strict=True))
        entry["payload"] = json.loads(entry["payload"]) if entry["payload"] else {}
        return entry

    def queue_row(self, job_id: str) -> dict | None:
        """One queue row as a plain dict (payload decoded), or None."""
        with self._lock:
            row = self._connection.execute(
                f"SELECT {', '.join(self._QUEUE_COLUMNS)} FROM job_queue"
                " WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return None if row is None else self._queue_row_to_dict(row)

    def queue_rows(self, status: str | None = None) -> list[dict]:
        """Queue rows in enqueue order, optionally filtered by status."""
        sql = f"SELECT {', '.join(self._QUEUE_COLUMNS)} FROM job_queue"
        args: tuple = ()
        if status is not None:
            sql += " WHERE status = ?"
            args = (status,)
        sql += " ORDER BY enqueued_at, job_id"
        with self._lock:
            rows = self._connection.execute(sql, args).fetchall()
        return [self._queue_row_to_dict(row) for row in rows]

    def recover_queue(self) -> dict[str, int]:
        """Repair the crash edges of the queue state machine at restart.

        A ``running`` row means the previous incarnation claimed the
        job and then died somewhere between claim and finish.  Two
        cases, distinguished by the durable telemetry the job itself
        left behind:

        * its ``jobs`` row reached a terminal status -- the job
          *finished* and only the queue's ``done`` transition was lost
          in the crash: replay, don't re-run (the row becomes ``done``
          and results are served from ``jobs``/``job_events``);
        * no terminal ``jobs`` row -- the job genuinely died mid-run:
          back to ``queued`` for a re-claim.  Its completed pipeline
          executions are already in ``runs``, so the re-run replays
          them from the cache instead of executing again.

        Returns ``{"replayed": n, "requeued": m}``.
        """
        with self._lock:
            replayed = self._connection.execute(
                "UPDATE job_queue SET status = 'done', finished_at = ("
                "  SELECT j.finished_at FROM jobs j"
                "  WHERE j.job_id = job_queue.job_id)"
                " WHERE status = 'running' AND job_id IN ("
                "  SELECT job_id FROM jobs"
                "  WHERE status IN ('succeeded', 'failed', 'cancelled'))"
            ).rowcount
            requeued = self._connection.execute(
                "UPDATE job_queue SET status = 'queued', claimed_at = NULL"
                " WHERE status = 'running'"
            ).rowcount
            self._connection.commit()
        return {"replayed": int(replayed), "requeued": int(requeued)}

    def failing_parameter_value_counts(self) -> dict[tuple[str, str], int]:
        """SQL-side aggregate: how often each binding appears in failures.

        A convenience for exploratory provenance analysis (the kind of
        manual reasoning BugDoc automates): bindings sorted by failure
        frequency are a human's first suspects.
        """
        with self._lock:
            rows = self._connection.execute(
                """
                SELECT b.name, b.value, COUNT(*)
                FROM bindings b JOIN runs r ON r.id = b.run_id
                WHERE r.outcome = ?
                GROUP BY b.name, b.value
                ORDER BY COUNT(*) DESC
                """,
                (Outcome.FAIL.value,),
            ).fetchall()
        return {(name, value): count for name, value, count in rows}
