"""Provenance stores: queryable repositories of execution records.

Two backends share one interface: an in-memory store for debugging
sessions, and a SQLite store for durable provenance (the paper's
prototype analyzes VisTrails provenance databases; SQLite is the
faithful laptop-scale equivalent).  Both support outcome filtering,
predicate filtering (e.g. "all failing runs with LibraryVersion = 2.0"),
conversion to :class:`~repro.core.history.ExecutionHistory`, and
parameter-value-universe extraction.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterable, Iterator

from ..core.history import ExecutionHistory
from ..core.predicates import Conjunction
from ..core.types import Instance, Outcome, Value
from .record import ProvenanceRecord, decode_value, encode_value

__all__ = ["ProvenanceStore", "InMemoryProvenanceStore", "SQLiteProvenanceStore"]


class ProvenanceStore:
    """Interface shared by the provenance backends."""

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        """Persist one record; returns it with ``record_id`` assigned."""
        raise NotImplementedError

    def records(self) -> Iterator[ProvenanceRecord]:
        """All records in insertion order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- Shared derived operations ------------------------------------------
    def add_all(self, records: Iterable[ProvenanceRecord]) -> None:
        for record in records:
            self.add(record)

    def query(
        self,
        outcome: Outcome | None = None,
        where: Conjunction | None = None,
        workflow: str | None = None,
    ) -> list[ProvenanceRecord]:
        """Filter records by outcome, a predicate conjunction, and workflow."""
        matched = []
        for record in self.records():
            if outcome is not None and record.outcome is not outcome:
                continue
            if workflow is not None and record.workflow != workflow:
                continue
            if where is not None and not where.satisfied_by(record.instance):
                continue
            matched.append(record)
        return matched

    def to_history(self, workflow: str | None = None) -> ExecutionHistory:
        """Project the store into an algorithm-facing execution history.

        Duplicate instances are collapsed by the history itself; a
        contradictory pair (same instance, both outcomes) raises, which
        surfaces non-deterministic pipelines early.
        """
        history = ExecutionHistory()
        for record in self.records():
            if workflow is not None and record.workflow != workflow:
                continue
            if history.outcome_of(record.instance) is None:
                history.append(record.to_evaluation())
        return history

    def value_universe(self) -> dict[str, set[Value]]:
        """Definition 1's universe ``U`` over everything recorded."""
        universe: dict[str, set[Value]] = {}
        for record in self.records():
            for name, value in record.instance.items():
                universe.setdefault(name, set()).add(value)
        return universe

    def count_by_outcome(self) -> dict[Outcome, int]:
        counts = {Outcome.SUCCEED: 0, Outcome.FAIL: 0}
        for record in self.records():
            counts[record.outcome] += 1
        return counts


class InMemoryProvenanceStore(ProvenanceStore):
    """Append-only list-backed store (thread-safe)."""

    def __init__(self) -> None:
        self._records: list[ProvenanceRecord] = []
        self._lock = threading.Lock()

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        with self._lock:
            assigned = ProvenanceRecord(
                workflow=record.workflow,
                instance=record.instance,
                outcome=record.outcome,
                result=record.result,
                cost=record.cost,
                created_at=record.created_at,
                record_id=len(self._records) + 1,
                metadata=record.metadata,
            )
            self._records.append(assigned)
        return assigned

    def records(self) -> Iterator[ProvenanceRecord]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)


class SQLiteProvenanceStore(ProvenanceStore):
    """SQLite-backed store; pass ``":memory:"`` for an ephemeral database.

    Schema::

        runs(id INTEGER PRIMARY KEY, workflow TEXT, outcome TEXT,
             result TEXT, cost REAL, created_at REAL)
        bindings(run_id INTEGER, name TEXT, value TEXT,
                 PRIMARY KEY (run_id, name))

    ``bindings`` holds one row per parameter-value pair, making
    parameter-level SQL analysis possible (``GROUP BY name, value``),
    which is how provenance systems expose pipeline configurations.
    """

    def __init__(self, path: str = ":memory:"):
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS runs (
                    id INTEGER PRIMARY KEY AUTOINCREMENT,
                    workflow TEXT NOT NULL,
                    outcome TEXT NOT NULL,
                    result TEXT,
                    cost REAL NOT NULL DEFAULT 0,
                    created_at REAL NOT NULL DEFAULT 0
                );
                CREATE TABLE IF NOT EXISTS bindings (
                    run_id INTEGER NOT NULL REFERENCES runs(id),
                    name TEXT NOT NULL,
                    value TEXT NOT NULL,
                    PRIMARY KEY (run_id, name)
                );
                CREATE INDEX IF NOT EXISTS idx_bindings_name_value
                    ON bindings(name, value);
                """
            )
            self._connection.commit()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def add(self, record: ProvenanceRecord) -> ProvenanceRecord:
        with self._lock:
            cursor = self._connection.execute(
                "INSERT INTO runs (workflow, outcome, result, cost, created_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    record.workflow,
                    record.outcome.value,
                    encode_value(record.result),
                    record.cost,
                    record.created_at,
                ),
            )
            run_id = cursor.lastrowid
            self._connection.executemany(
                "INSERT INTO bindings (run_id, name, value) VALUES (?, ?, ?)",
                [
                    (run_id, name, encode_value(value))
                    for name, value in record.instance.items()
                ],
            )
            self._connection.commit()
        return ProvenanceRecord(
            workflow=record.workflow,
            instance=record.instance,
            outcome=record.outcome,
            result=record.result,
            cost=record.cost,
            created_at=record.created_at,
            record_id=run_id,
            metadata=record.metadata,
        )

    def records(self) -> Iterator[ProvenanceRecord]:
        with self._lock:
            runs = self._connection.execute(
                "SELECT id, workflow, outcome, result, cost, created_at"
                " FROM runs ORDER BY id"
            ).fetchall()
            bindings = self._connection.execute(
                "SELECT run_id, name, value FROM bindings"
            ).fetchall()
        by_run: dict[int, dict[str, Value]] = {}
        for run_id, name, value in bindings:
            by_run.setdefault(run_id, {})[name] = decode_value(value)
        for run_id, workflow, outcome, result, cost, created_at in runs:
            yield ProvenanceRecord(
                workflow=workflow,
                instance=Instance(by_run.get(run_id, {})),
                outcome=Outcome(outcome),
                result=decode_value(result),
                cost=cost,
                created_at=created_at,
                record_id=run_id,
            )

    def __len__(self) -> int:
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(row[0])

    def failing_parameter_value_counts(self) -> dict[tuple[str, str], int]:
        """SQL-side aggregate: how often each binding appears in failures.

        A convenience for exploratory provenance analysis (the kind of
        manual reasoning BugDoc automates): bindings sorted by failure
        frequency are a human's first suspects.
        """
        with self._lock:
            rows = self._connection.execute(
                """
                SELECT b.name, b.value, COUNT(*)
                FROM bindings b JOIN runs r ON r.id = b.run_id
                WHERE r.outcome = ?
                GROUP BY b.name, b.value
                ORDER BY COUNT(*) DESC
                """,
                (Outcome.FAIL.value,),
            ).fetchall()
        return {(name, value): count for name, value, count in rows}
