"""Provenance records: durable descriptions of pipeline executions.

BugDoc "makes use of iteration and provenance": every executed instance,
its parameter-value pairs, and its evaluation outcome are captured as a
:class:`ProvenanceRecord`.  Records are the serialization-friendly twin
of :class:`~repro.core.types.Evaluation` -- plain data with a stable
JSON encoding so they can live in the SQLite store and in exported log
files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Mapping

from ..core.types import Evaluation, Instance, Outcome

__all__ = ["ProvenanceRecord", "encode_value", "decode_value"]

_TYPE_TAGS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "none": type(None),
}


def encode_value(value: object) -> str:
    """Encode one parameter value (or result) as a typed JSON string.

    Round-trips int, float, str, bool, and None exactly; any other type
    degrades to its ``repr`` (sufficient for provenance display, not for
    re-execution -- workloads in this repository only use scalar
    parameter values).
    """
    if isinstance(value, bool):  # bool first: bool is a subclass of int
        return json.dumps({"t": "bool", "v": value})
    if isinstance(value, int):
        return json.dumps({"t": "int", "v": value})
    if isinstance(value, float):
        return json.dumps({"t": "float", "v": value})
    if isinstance(value, str):
        return json.dumps({"t": "str", "v": value})
    if value is None:
        return json.dumps({"t": "none", "v": None})
    return json.dumps({"t": "repr", "v": repr(value)})


def decode_value(encoded: str) -> object:
    """Invert :func:`encode_value` (repr-tagged values stay strings)."""
    payload = json.loads(encoded)
    tag, value = payload["t"], payload["v"]
    if tag == "none":
        return None
    if tag in ("int", "float", "str", "bool"):
        return _TYPE_TAGS[tag](value)
    return value  # repr fallback


@dataclass(frozen=True)
class ProvenanceRecord:
    """One pipeline execution, as stored.

    Attributes:
        record_id: store-assigned identifier (None until persisted).
        workflow: name of the pipeline the instance ran against.
        instance: the parameter-value assignment.
        outcome: evaluation result (succeed / fail).
        result: raw pipeline result (e.g. the F-measure score).
        cost: wall-clock seconds (or simulated cost units).
        created_at: POSIX timestamp of the run; 0.0 when unknown.
        metadata: free-form annotations (worker id, algorithm tag, ...).
    """

    workflow: str
    instance: Instance
    outcome: Outcome
    result: object = None
    cost: float = 0.0
    created_at: float = 0.0
    record_id: int | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def to_evaluation(self) -> Evaluation:
        """Project to the in-memory evaluation the algorithms consume."""
        return Evaluation(
            instance=self.instance,
            outcome=self.outcome,
            result=self.result,
            cost=self.cost,
            metadata=dict(self.metadata),
        )

    @staticmethod
    def from_evaluation(
        evaluation: Evaluation, workflow: str, created_at: float = 0.0
    ) -> "ProvenanceRecord":
        return ProvenanceRecord(
            workflow=workflow,
            instance=evaluation.instance,
            outcome=evaluation.outcome,
            result=evaluation.result,
            cost=evaluation.cost,
            created_at=created_at,
            metadata=dict(evaluation.metadata),
        )

    def to_json(self) -> str:
        """A single-line JSON encoding (JSONL log format)."""
        return json.dumps(
            {
                "workflow": self.workflow,
                "instance": {
                    name: json.loads(encode_value(value))
                    for name, value in sorted(self.instance.items())
                },
                "outcome": self.outcome.value,
                "result": json.loads(encode_value(self.result)),
                "cost": self.cost,
                "created_at": self.created_at,
                "metadata": {k: repr(v) for k, v in sorted(self.metadata.items())},
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "ProvenanceRecord":
        payload = json.loads(line)
        instance = Instance(
            {
                name: decode_value(json.dumps(encoded))
                for name, encoded in payload["instance"].items()
            }
        )
        return ProvenanceRecord(
            workflow=payload["workflow"],
            instance=instance,
            outcome=Outcome(payload["outcome"]),
            result=decode_value(json.dumps(payload["result"])),
            cost=payload.get("cost", 0.0),
            created_at=payload.get("created_at", 0.0),
            metadata=payload.get("metadata", {}),
        )
