"""Scenario factories for the three synthetic evaluation regimes.

Section 5.1 groups results "according to the characteristics of their
definitive root causes", spanning three scenarios:

1. a single parameter-comparator-value triple;
2. a single conjunction of such triples; and
3. a disjunction of conjunctions.

Each factory produces a *suite*: a list of independent pipelines (the
``UCP`` set of the evaluation criteria), deterministic in the seed.
"""

from __future__ import annotations

import enum
import random

from .generator import SyntheticConfig, SyntheticPipeline, generate_pipeline

__all__ = ["Scenario", "scenario_config", "make_suite"]


class Scenario(enum.Enum):
    """The three root-cause shapes of Figure 2 / Figure 3."""

    SINGLE_TRIPLE = "single"
    CONJUNCTION = "conjunction"
    DISJUNCTION = "disjunction"


def scenario_config(
    scenario: Scenario,
    rng: random.Random,
    min_parameters: int = 3,
    max_parameters: int = 8,
    min_values: int = 5,
    max_values: int = 12,
) -> SyntheticConfig:
    """Sample a :class:`SyntheticConfig` for a scenario.

    The parameter/value ranges default to the lower half of the paper's
    ranges so that exhaustive ground-truth verification stays feasible
    on a laptop; the Figure 5 scalability benchmark overrides them up to
    the paper's full 15-parameter range.
    """
    if scenario is Scenario.SINGLE_TRIPLE:
        arities: tuple[int, ...] = (1,)
    elif scenario is Scenario.CONJUNCTION:
        arities = (rng.randint(2, 3),)
    else:
        n_conjuncts = rng.randint(2, 3)
        arities = tuple(rng.randint(1, 2) for __ in range(n_conjuncts))
    return SyntheticConfig(
        min_parameters=min_parameters,
        max_parameters=max_parameters,
        min_values=min_values,
        max_values=max_values,
        cause_arities=arities,
    )


def make_suite(
    scenario: Scenario,
    n_pipelines: int,
    seed: int = 0,
    **config_overrides,
) -> list[SyntheticPipeline]:
    """Generate ``n_pipelines`` independent pipelines for a scenario."""
    rng = random.Random(seed)
    suite = []
    for index in range(n_pipelines):
        config = scenario_config(scenario, rng, **config_overrides)
        suite.append(
            generate_pipeline(
                name=f"{scenario.value}-{index}",
                config=config,
                seed=rng.getrandbits(32),
            )
        )
    return suite
