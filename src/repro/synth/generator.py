"""Synthetic pipeline benchmark generator (Section 5.1).

"The pipelines have between three and fifteen parameters, and each
parameter has between five and thirty values.  The parameter values are
either ordinal (e.g. temperature) or categorical (e.g. color), each
with probability 1/2.  Each synthetic pipeline consists of a parameter
space and a definitive root cause of failure automatically generated as
follows: (1) uniformly sample a non-empty subset of parameters to be
part of a conjunction; (2) for each parameter in the subset, uniformly
sample from its values; (3) for each parameter-value pair, uniformly
sample from the set of comparators C = {=, <=, >, !=}; (4) after adding
a conjunctive root cause, add another conjunctive root cause with a
certain probability."

A generated pipeline's oracle fails exactly when the planted
disjunction is satisfied, so ground truth is available by construction;
the generator additionally *verifies* (on small spaces) or *normalizes*
(pairwise subsumption pruning) the planted causes to keep them minimal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core.history import ExecutionHistory
from ..core.predicates import Comparator, Conjunction, Disjunction, Predicate
from ..core.rootcause import is_minimal_definitive_root_cause, prune_to_minimal
from ..core.types import (
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
)

__all__ = ["SyntheticPipeline", "SyntheticConfig", "generate_pipeline", "generate_space"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape of the generated benchmark pipeline.

    Defaults follow Section 5.1.  ``cause_arities`` fixes the number of
    predicates in each planted conjunction (one entry per conjunct);
    the scenario factories in :mod:`repro.synth.scenarios` use it to
    produce the paper's three root-cause shapes.
    """

    min_parameters: int = 3
    max_parameters: int = 15
    min_values: int = 5
    max_values: int = 30
    ordinal_probability: float = 0.5
    cause_arities: tuple[int, ...] = (2,)
    verify_minimality_up_to: int = 60_000
    verify_max_checks: int = 1_500
    verify_attempts: int = 5


@dataclass
class SyntheticPipeline:
    """One generated benchmark pipeline with known ground truth.

    Attributes:
        name: identifier used in reports.
        space: the parameter space.
        true_causes: the planted minimal definitive root causes.
        failure_law: the full planted disjunction (== OR of true_causes).
    """

    name: str
    space: ParameterSpace
    true_causes: list[Conjunction]
    failure_law: Disjunction = field(default_factory=Disjunction)

    def oracle(self, instance: Instance) -> Outcome:
        """Ground-truth executor: fail iff the planted law is satisfied."""
        return (
            Outcome.FAIL
            if self.failure_law.satisfied_by(instance)
            else Outcome.SUCCEED
        )

    def initial_history(
        self, rng: random.Random, size: int = 6, max_draws: int = 500
    ) -> ExecutionHistory:
        """Random prior provenance with at least one failure and success.

        These are the "given, previously run instances" of the problem
        definition; they are free of charge to every debugging method.
        """
        history = ExecutionHistory()
        draws = 0
        while (
            len(history) < size
            or not history.failures
            or not history.successes
        ) and draws < max_draws:
            instance = self.space.random_instance(rng)
            draws += 1
            if instance not in history:
                history.record(instance, self.oracle(instance))
        return history

    def failing_instance(self, rng: random.Random, max_draws: int = 2000) -> Instance:
        """Sample one failing instance (guaranteed to exist by construction)."""
        for cause in self.true_causes:
            instance = cause.sample_satisfying(self.space, rng)
            if instance is not None:
                return instance
        for __ in range(max_draws):  # pragma: no cover - fallback path
            instance = self.space.random_instance(rng)
            if self.oracle(instance) is Outcome.FAIL:
                return instance
        raise RuntimeError("could not sample a failing instance")


def generate_space(config: SyntheticConfig, rng: random.Random) -> ParameterSpace:
    """Sample a parameter space with the paper's shape distribution."""
    n_parameters = rng.randint(config.min_parameters, config.max_parameters)
    parameters = []
    for index in range(n_parameters):
        n_values = rng.randint(config.min_values, config.max_values)
        if rng.random() < config.ordinal_probability:
            start = rng.randint(-10, 10)
            step = rng.choice((1, 2, 5))
            domain = tuple(float(start + i * step) for i in range(n_values))
            parameters.append(
                Parameter(f"p{index}", domain, ParameterKind.ORDINAL)
            )
        else:
            domain = tuple(f"p{index}_v{j}" for j in range(n_values))
            parameters.append(Parameter(f"p{index}", domain))
    return ParameterSpace(parameters)


def _sample_predicate(parameter: Parameter, rng: random.Random) -> Predicate:
    """Steps 2-3: uniform value, uniform comparator (kind-respecting)."""
    value = rng.choice(parameter.domain)
    if parameter.is_ordinal:
        comparator = rng.choice(
            (Comparator.EQ, Comparator.NEQ, Comparator.LE, Comparator.GT)
        )
        # Degenerate guards: "<= max" and "> max" are all-true/all-false.
        if comparator is Comparator.LE and value == parameter.domain[-1]:
            value = rng.choice(parameter.domain[:-1])
        if comparator is Comparator.GT and value == parameter.domain[-1]:
            value = rng.choice(parameter.domain[:-1])
    else:
        comparator = rng.choice((Comparator.EQ, Comparator.NEQ))
    return Predicate(parameter.name, comparator, value)


def _sample_conjunction(
    space: ParameterSpace, arity: int, rng: random.Random, max_attempts: int = 200
) -> Conjunction:
    """Step 1 + 2 + 3: one planted conjunction of the requested arity.

    Rejects degenerate draws: unsatisfiable conjunctions and
    conjunctions satisfied by the *entire* space (an always-fail
    pipeline has nothing to debug).
    """
    arity = min(arity, len(space))
    for __ in range(max_attempts):
        names = rng.sample(list(space.names), arity)
        conjunction = Conjunction(
            _sample_predicate(space[name], rng) for name in names
        )
        sets = conjunction.canonical(space)
        if len(sets) != arity:  # some predicate degenerated to all-true
            continue
        if all(values for values in sets.values()):
            return conjunction
    raise RuntimeError("could not sample a satisfiable conjunction")


def generate_pipeline(
    name: str,
    config: SyntheticConfig | None = None,
    seed: int = 0,
    space: ParameterSpace | None = None,
) -> SyntheticPipeline:
    """Generate one synthetic pipeline with planted, verified root causes.

    Args:
        name: pipeline identifier.
        config: shape configuration (paper defaults).
        seed: RNG seed; pipelines are fully deterministic given
            (config, seed).
        space: optionally reuse an existing space instead of sampling.
    """
    config = config or SyntheticConfig()
    rng = random.Random(seed)
    space = space if space is not None else generate_space(config, rng)

    def draw() -> SyntheticPipeline:
        causes: list[Conjunction] = []
        for arity in config.cause_arities:
            causes.append(_sample_conjunction(space, arity, rng))
        causes = prune_to_minimal(causes, space)
        return SyntheticPipeline(
            name=name,
            space=space,
            true_causes=causes,
            failure_law=Disjunction(causes),
        )

    pipeline = draw()
    # Verify that every planted conjunct really is a minimal definitive
    # root cause of the *joint* law: overlapping conjuncts can make a
    # planted cause non-minimal (a sub-conjunction becomes definitive
    # through the union), which would corrupt the benchmark's ground
    # truth.  Resample until the draw is clean.  Verification samples at
    # most ``verify_max_checks`` instances per satisfying set -- exact on
    # small regions, probabilistic on large ones (the failure modes it
    # guards against are gross overlaps, which sampling catches).
    if space.size() <= config.verify_minimality_up_to:
        verify_rng = random.Random(seed + 1)

        def clean(p: SyntheticPipeline) -> bool:
            if len(p.true_causes) != len(config.cause_arities):
                return False
            return all(
                is_minimal_definitive_root_cause(
                    cause,
                    space,
                    p.oracle,
                    max_checks=config.verify_max_checks,
                    rng=verify_rng,
                )
                for cause in p.true_causes
            )

        for __ in range(config.verify_attempts):
            if clean(pipeline):
                return pipeline
            pipeline = draw()
        # Fall back to the last draw with non-minimal conjuncts pruned;
        # the failure law keeps all conjuncts so the bug is unchanged.
        verified = [
            cause
            for cause in pipeline.true_causes
            if is_minimal_definitive_root_cause(
                cause,
                space,
                pipeline.oracle,
                max_checks=config.verify_max_checks,
                rng=verify_rng,
            )
        ]
        if verified:
            pipeline.true_causes = verified
    return pipeline
