"""Synthetic pipeline benchmark (substrate S14, Section 5.1)."""

from .generator import (
    SyntheticConfig,
    SyntheticPipeline,
    generate_pipeline,
    generate_space,
)
from .scenarios import Scenario, make_suite, scenario_config

__all__ = [
    "Scenario",
    "SyntheticConfig",
    "SyntheticPipeline",
    "generate_pipeline",
    "generate_space",
    "make_suite",
    "scenario_config",
]
