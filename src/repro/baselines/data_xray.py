"""Data X-Ray (Wang, Dong & Meliou, SIGMOD 2015) -- explanation baseline.

Data X-Ray diagnoses systematic errors in a data-generation process by
finding *features* shared among erroneous elements.  In BugDoc's
setting, an element is a pipeline instance, its features are its
parameter-value pairs, and "erroneous" means the instance failed.  The
diagnosis is a set of feature conjunctions that *cover* the failures,
selected by navigating a feature hierarchy top-down and scoring
candidate diagnoses with the X-Ray cost model:

    cost(D) = alpha * |D|                           (conciseness)
            + sum over covered successes             (false positives)
            + epsilon-weighted uncovered failures    (false negatives)

The algorithm recursively refines a partition: starting from the root
(no constraints), each level fixes one more parameter, choosing the
parameter whose children's error rates are most skewed (cheapest
cover).  A child whose error rate exceeds a threshold becomes a
diagnosis; a mixed child recurses.  As the BugDoc paper observes, the
result has *high recall but low precision*: diagnoses cover all
failures but are not minimal definitive root causes, and the feature
language has no negations or inequalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.history import ExecutionHistory
from ..core.predicates import Comparator, Conjunction, Predicate
from ..core.types import Instance, Outcome, ParameterSpace

__all__ = ["DataXRayConfig", "DataXRayResult", "data_xray"]


@dataclass(frozen=True)
class DataXRayConfig:
    """Cost-model and search knobs.

    Attributes:
        alpha: fixed cost per diagnosis feature (conciseness pressure).
        error_rate_threshold: a partition cell whose failure rate is at
            least this becomes a diagnosis instead of refining further.
        min_support: cells with fewer elements than this are not
            refined (they are diagnosed if failing, dropped otherwise).
        max_features: cap on diagnosis conjunction length.
    """

    alpha: float = 1.0
    error_rate_threshold: float = 0.99
    min_support: int = 1
    max_features: int = 4


@dataclass
class DataXRayResult:
    """Diagnoses (conjunctions) plus coverage diagnostics."""

    diagnoses: list[Conjunction] = field(default_factory=list)
    covered_failures: int = 0
    total_failures: int = 0
    cost: float = 0.0

    @property
    def recall_of_failures(self) -> float:
        if self.total_failures == 0:
            return 1.0
        return self.covered_failures / self.total_failures


def _error_rate(cell: list[tuple[Instance, Outcome]]) -> float:
    if not cell:
        return 0.0
    failures = sum(1 for __, outcome in cell if outcome is Outcome.FAIL)
    return failures / len(cell)


def _partition_skew(
    cell: list[tuple[Instance, Outcome]], name: str
) -> tuple[float, dict[object, list[tuple[Instance, Outcome]]]]:
    """Partition a cell by one parameter; score how well it separates.

    The score is the weighted mean of per-child ``min(rate, 1-rate)``
    (impurity): lower is better -- children are closer to pure, so the
    cover will pay fewer false-positive/-negative costs.
    """
    children: dict[object, list[tuple[Instance, Outcome]]] = {}
    for instance, outcome in cell:
        children.setdefault(instance[name], []).append((instance, outcome))
    total = len(cell)
    impurity = 0.0
    for child in children.values():
        rate = _error_rate(child)
        impurity += (len(child) / total) * min(rate, 1.0 - rate)
    return impurity, children


def data_xray(
    history: ExecutionHistory,
    space: ParameterSpace,
    config: DataXRayConfig | None = None,
) -> DataXRayResult:
    """Diagnose failure-correlated feature conjunctions in a history.

    Args:
        history: previously-executed instances (Data X-Ray never
            proposes new ones; the harness supplies histories generated
            by BugDoc or SMAC, as in the paper).
        space: parameter space of the pipeline.
        config: cost model parameters.

    Returns:
        Diagnoses as equality conjunctions, most-covering first.
    """
    config = config or DataXRayConfig()
    result = DataXRayResult()
    elements = [
        (instance, outcome)
        for instance in history.instances
        if (outcome := history.outcome_of(instance)) is not None
    ]
    result.total_failures = sum(
        1 for __, outcome in elements if outcome is Outcome.FAIL
    )
    if result.total_failures == 0:
        return result

    diagnoses: list[tuple[Conjunction, int]] = []

    def refine(
        cell: list[tuple[Instance, Outcome]],
        fixed: dict[str, object],
        free: list[str],
    ) -> None:
        failures = sum(1 for __, outcome in cell if outcome is Outcome.FAIL)
        if failures == 0:
            return
        rate = failures / len(cell)
        terminal = (
            rate >= config.error_rate_threshold
            or not free
            or len(fixed) >= config.max_features
            or len(cell) < config.min_support
        )
        if terminal:
            if rate > 0.5 or not free or len(fixed) >= config.max_features:
                conjunction = Conjunction(
                    Predicate(name, Comparator.EQ, value)
                    for name, value in fixed.items()
                )
                diagnoses.append((conjunction, failures))
                result.cost += config.alpha * max(len(conjunction), 1)
                result.cost += sum(
                    1 for __, outcome in cell if outcome is Outcome.SUCCEED
                )
            return
        best_name = None
        best_impurity = None
        best_children = None
        for name in free:
            impurity, children = _partition_skew(cell, name)
            if len(children) < 2:
                continue
            if best_impurity is None or impurity < best_impurity:
                best_name, best_impurity, best_children = name, impurity, children
        if best_name is None or best_children is None:
            conjunction = Conjunction(
                Predicate(name, Comparator.EQ, value)
                for name, value in fixed.items()
            )
            diagnoses.append((conjunction, failures))
            return
        remaining = [name for name in free if name != best_name]
        for value, child in sorted(best_children.items(), key=lambda kv: repr(kv[0])):
            refine(child, {**fixed, best_name: value}, remaining)

    refine(elements, {}, list(space.names))

    # Deduplicate, order by coverage, and drop the trivial all-true
    # diagnosis (it can appear when the whole log fails).
    seen: set[Conjunction] = set()
    ordered: list[Conjunction] = []
    covered = 0
    for conjunction, failures in sorted(diagnoses, key=lambda d: -d[1]):
        if conjunction.is_trivial() or conjunction in seen:
            continue
        seen.add(conjunction)
        ordered.append(conjunction)
        covered += failures
    result.diagnoses = ordered
    result.covered_failures = min(covered, result.total_failures)
    return result
