"""SMAC: Sequential Model-Based Algorithm Configuration (baseline).

Reimplementation of the SMBO loop of Hutter, Hoos & Leyton-Brown
(LION 2011) to the fidelity the paper's comparison needs: a random
forest surrogate over the mixed configuration space, an expected-
improvement acquisition optimized over random + neighborhood
candidates, and an intensification-free batched loop (our pipelines are
deterministic, so repeated runs of one configuration add nothing).

Following Section 5 of the BugDoc paper, "since SMAC looks for good
instances ... we change its goal to look for bad pipeline instances":
the objective assigns cost 0.0 to ``fail`` and 1.0 to ``succeed`` and
SMAC minimizes, i.e. it *hunts failures*.  SMAC outputs complete
instances, not explanations -- the harness feeds its instance log to
Data X-Ray / Explanation Tables exactly as the paper does.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core.budget import BudgetExhausted
from ..core.session import DebugSession, InstanceUnavailable
from ..core.types import Instance, Outcome

from .forest import RandomForestRegressor, featurize

__all__ = ["SMACConfig", "SMACResult", "smac_search"]


@dataclass(frozen=True)
class SMACConfig:
    """Knobs for the SMBO loop.

    Attributes:
        iterations: number of new instances to propose (upper bound;
            the session budget can stop the loop earlier).
        initial_random: random configurations executed before the first
            model is trained.
        candidates_random: random candidates scored by EI per iteration.
        candidates_neighborhood: one-parameter mutations of the
            incumbent scored by EI per iteration.
        n_trees: surrogate forest size.
        seed: RNG seed.
    """

    iterations: int = 50
    initial_random: int = 8
    candidates_random: int = 60
    candidates_neighborhood: int = 20
    n_trees: int = 10
    seed: int = 0


@dataclass
class SMACResult:
    """Instances proposed by SMAC, in execution order."""

    proposed: list[Instance] = field(default_factory=list)
    incumbent: Instance | None = None
    incumbent_cost: float = math.inf
    instances_executed: int = 0


def _cost(outcome: Outcome) -> float:
    """Cost 0 for fail (the target), 1 for succeed -- SMAC minimizes."""
    return 0.0 if outcome is Outcome.FAIL else 1.0


def _expected_improvement(mean: float, std: float, best: float) -> float:
    """EI for minimization under a Gaussian predictive distribution."""
    if std <= 1e-12:
        return max(best - mean, 0.0)
    z = (best - mean) / std
    phi = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    cdf = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
    return (best - mean) * cdf + std * phi


def smac_search(session: DebugSession, config: SMACConfig | None = None) -> SMACResult:
    """Run the failure-seeking SMBO loop against a debug session.

    Every proposed instance is executed through the session (budget
    accounted, history recorded), so the resulting history is directly
    comparable to what BugDoc's algorithms consume.
    """
    config = config or SMACConfig()
    rng = random.Random(config.seed)
    space = session.space
    result = SMACResult()
    executed_before = session.new_executions

    observed: dict[Instance, float] = {}
    for instance in session.history.instances:
        outcome = session.history.outcome_of(instance)
        assert outcome is not None
        observed[instance] = _cost(outcome)

    def run(instance: Instance) -> bool:
        """Execute an instance; returns False when the loop must stop."""
        if instance in observed:
            return True
        try:
            outcome = session.evaluate(instance)
        except BudgetExhausted:
            return False
        except InstanceUnavailable:
            return True
        observed[instance] = _cost(outcome)
        result.proposed.append(instance)
        return True

    space_size = space.size()
    stalls = 0
    max_stalls = 50  # consecutive no-progress rounds before giving up

    # Phase 1: initial random design.
    for __ in range(config.initial_random):
        if len(result.proposed) >= config.iterations:
            break
        if not run(space.random_instance(rng)):
            break

    # Phase 2: model-guided proposals.  Terminates when the requested
    # count is reached, the budget runs out, the whole (finite) space has
    # been observed, or proposals stall (e.g. replay mode misses).
    last_proposed = -1
    while (
        len(result.proposed) < config.iterations
        and len(observed) < space_size
        and stalls < max_stalls
    ):
        if len(result.proposed) == last_proposed:
            stalls += 1
        else:
            stalls = 0
        last_proposed = len(result.proposed)
        if len(observed) < 2 or len({c for c in observed.values()}) < 1:
            if not run(space.random_instance(rng)):
                break
            continue
        X = [featurize(instance, space) for instance in observed]
        y = list(observed.values())
        forest = RandomForestRegressor(
            space, n_trees=config.n_trees, seed=rng.getrandbits(32)
        )
        try:
            forest.fit(X, y)
        except ValueError:
            if not run(space.random_instance(rng)):
                break
            continue

        best_cost = min(observed.values())
        incumbent = min(observed, key=lambda i: (observed[i], repr(i)))
        candidates: list[Instance] = []
        for __ in range(config.candidates_random):
            candidates.append(space.random_instance(rng))
        for __ in range(config.candidates_neighborhood):
            name = rng.choice(space.names)
            candidates.append(
                incumbent.with_value(name, rng.choice(space.domain(name)))
            )
        fresh = [c for c in candidates if c not in observed]
        if not fresh:
            if not run(space.random_instance(rng)):
                break
            continue
        scored = max(
            fresh,
            key=lambda c: _expected_improvement(
                *forest.predict(featurize(c, space)), best=best_cost
            ),
        )
        if not run(scored):
            break

    if observed:
        result.incumbent = min(observed, key=lambda i: (observed[i], repr(i)))
        result.incumbent_cost = observed[result.incumbent]
    result.instances_executed = session.new_executions - executed_before
    return result
