"""A from-scratch random-forest regressor over mixed parameter spaces.

SMAC's surrogate model is a random forest (Hutter et al., LION 2011)
because forests natively handle the categorical + ordinal configuration
spaces that break Gaussian-process kernels.  This implementation keeps
exactly the pieces SMAC needs: bootstrap-bagged regression trees with
random feature subsets, and a per-point predictive mean *and variance*
(spread across trees) for the expected-improvement acquisition.

Instances are featurized directly from the
:class:`~repro.core.types.ParameterSpace`: ordinal parameters become
their domain index (so threshold splits respect order), categorical
parameters split by equality on observed values.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from collections.abc import Sequence

from ..core.types import Instance, ParameterSpace

__all__ = ["RegressionTree", "RandomForestRegressor", "featurize"]


def featurize(instance: Instance, space: ParameterSpace) -> tuple[float, ...]:
    """Encode an instance as a numeric vector (domain indexes).

    Ordinal parameters map to their (order-respecting) domain index;
    categorical parameters also map to an index but trees must treat
    that axis with equality splits -- the tree consults the space for
    that distinction.
    """
    return tuple(
        float(space[name].index_of(instance[name])) for name in space.names
    )


@dataclass
class _Node:
    feature: int | None = None
    threshold: float = 0.0
    equal: bool = False  # equality split (categorical) vs <= split (ordinal)
    left: "_Node | None" = None  # satisfied branch
    right: "_Node | None" = None
    value: float = 0.0
    count: int = 0


class RegressionTree:
    """A CART-style regression tree with random feature subsets."""

    def __init__(
        self,
        space: ParameterSpace,
        max_depth: int = 12,
        min_samples_split: int = 4,
        feature_fraction: float = 0.7,
        rng: random.Random | None = None,
    ):
        self._space = space
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._feature_fraction = feature_fraction
        self._rng = rng or random.Random(0)
        self._root: _Node | None = None
        self._ordinal = [space[name].is_ordinal for name in space.names]

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> "RegressionTree":
        if len(X) != len(y) or not X:
            raise ValueError("X and y must be non-empty and aligned")
        self._root = self._build(list(range(len(X))), X, y, 0)
        return self

    def _build(
        self, indexes: list[int], X: Sequence[Sequence[float]], y: Sequence[float], depth: int
    ) -> _Node:
        values = [y[i] for i in indexes]
        mean = sum(values) / len(values)
        node = _Node(value=mean, count=len(indexes))
        if (
            depth >= self._max_depth
            or len(indexes) < self._min_samples_split
            or all(v == values[0] for v in values)
        ):
            return node

        n_features = len(X[0])
        k = max(1, int(round(n_features * self._feature_fraction)))
        features = self._rng.sample(range(n_features), k)
        best: tuple[float, int, float, bool] | None = None  # (sse, feat, thr, equal)
        total_count = len(indexes)
        total_sum = sum(values)
        total_sumsq = sum(v * v for v in values)
        for feature in features:
            # Sufficient statistics per observed feature value: split SSE
            # is then O(values) instead of O(values * rows).
            groups: dict[float, list[float]] = {}
            for i in indexes:
                stats = groups.setdefault(X[i][feature], [0.0, 0.0, 0.0])
                stats[0] += 1.0
                stats[1] += y[i]
                stats[2] += y[i] * y[i]
            if len(groups) < 2:
                continue

            def side_sse(count: float, total: float, sumsq: float) -> float:
                if count == 0:
                    return 0.0
                return sumsq - (total * total) / count

            if self._ordinal[feature]:
                ordered = sorted(groups)
                count = sum_ = sumsq = 0.0
                for value in ordered[:-1]:
                    stats = groups[value]
                    count += stats[0]
                    sum_ += stats[1]
                    sumsq += stats[2]
                    sse = side_sse(count, sum_, sumsq) + side_sse(
                        total_count - count, total_sum - sum_, total_sumsq - sumsq
                    )
                    if best is None or sse < best[0]:
                        best = (sse, feature, value, False)
            else:
                for value, stats in sorted(groups.items()):
                    sse = side_sse(*stats) + side_sse(
                        total_count - stats[0],
                        total_sum - stats[1],
                        total_sumsq - stats[2],
                    )
                    if best is None or sse < best[0]:
                        best = (sse, feature, value, True)
        if best is None or best[0] >= _sse(values) - 1e-12:
            return node

        __, feature, threshold, equal = best
        if equal:
            left_idx = [i for i in indexes if X[i][feature] == threshold]
        else:
            left_idx = [i for i in indexes if X[i][feature] <= threshold]
        left_set = set(left_idx)
        right_idx = [i for i in indexes if i not in left_set]
        node.feature = feature
        node.threshold = threshold
        node.equal = equal
        node.left = self._build(left_idx, X, y, depth + 1)
        node.right = self._build(right_idx, X, y, depth + 1)
        return node

    def predict_one(self, x: Sequence[float]) -> float:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        node = self._root
        while node.feature is not None:
            if node.equal:
                branch = node.left if x[node.feature] == node.threshold else node.right
            else:
                branch = node.left if x[node.feature] <= node.threshold else node.right
            assert branch is not None
            node = branch
        return node.value


def _sse(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values)


class RandomForestRegressor:
    """Bagged regression trees with cross-tree predictive variance."""

    def __init__(
        self,
        space: ParameterSpace,
        n_trees: int = 10,
        max_depth: int = 12,
        min_samples_split: int = 4,
        feature_fraction: float = 0.7,
        seed: int = 0,
    ):
        self._space = space
        self._n_trees = n_trees
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._feature_fraction = feature_fraction
        self._seed = seed
        self._trees: list[RegressionTree] = []

    def fit(
        self, X: Sequence[Sequence[float]], y: Sequence[float]
    ) -> "RandomForestRegressor":
        if len(X) != len(y) or not X:
            raise ValueError("X and y must be non-empty and aligned")
        rng = random.Random(self._seed)
        self._trees = []
        n = len(X)
        for t in range(self._n_trees):
            indexes = [rng.randrange(n) for __ in range(n)]
            sample_X = [X[i] for i in indexes]
            sample_y = [y[i] for i in indexes]
            tree = RegressionTree(
                self._space,
                max_depth=self._max_depth,
                min_samples_split=self._min_samples_split,
                feature_fraction=self._feature_fraction,
                rng=random.Random(rng.getrandbits(32)),
            )
            tree.fit(sample_X, sample_y)
            self._trees.append(tree)
        return self

    def predict(self, x: Sequence[float]) -> tuple[float, float]:
        """Predictive (mean, standard deviation) across trees."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        predictions = [tree.predict_one(x) for tree in self._trees]
        mean = sum(predictions) / len(predictions)
        variance = sum((p - mean) ** 2 for p in predictions) / len(predictions)
        return mean, math.sqrt(variance)

    def predict_instance(self, instance: Instance) -> tuple[float, float]:
        return self.predict(featurize(instance, self._space))
