"""Explanation Tables (El Gebaly et al., PVLDB 2014) -- explanation baseline.

Given a relation of categorical attributes and one binary outcome,
Explanation Tables greedily selects *patterns* (attribute-value
conjunctions with wildcards) that maximize the information gain of a
maximum-entropy estimate of the outcome.  The output table is a ranked
list of patterns, each annotated with the estimated outcome probability
for tuples matching it.

Following the BugDoc paper's reading, "the answers provided by
Explanation Tables represent a prediction of the pipeline instance
evaluation expressed as a real number, where 1.0 corresponds to a root
cause": the harness interprets patterns whose *observed* failure rate
is (near) 1.0 as asserted root causes.  The method has high precision
(patterns it scores at 1.0 really do fail consistently in the log) but
low recall -- it proposes no new instances, supports neither negation
nor inequality, and stops after ``max_patterns`` gains.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from ..core.history import ExecutionHistory
from ..core.predicates import Comparator, Conjunction, Predicate
from ..core.types import Instance, Outcome, ParameterSpace

__all__ = ["Pattern", "ExplanationTablesConfig", "ExplanationTablesResult", "explanation_tables"]


@dataclass(frozen=True)
class Pattern:
    """One explanation-table row.

    Attributes:
        conjunction: the non-wildcard attribute-value pairs.
        support: number of log tuples matching the pattern.
        observed_rate: fraction of matching tuples that failed.
        estimated_rate: the max-entropy model's rate after this pattern
            was folded in.
        gain: KL information gain the pattern contributed when chosen.
    """

    conjunction: Conjunction
    support: int
    observed_rate: float
    estimated_rate: float
    gain: float


@dataclass(frozen=True)
class ExplanationTablesConfig:
    """Greedy-selection knobs.

    Attributes:
        max_patterns: number of greedy iterations (table rows).
        max_arity: maximum attributes instantiated in one pattern.
        sample_size: failing tuples sampled per iteration to generate
            candidate patterns from (the paper's "LCA" candidate
            generation samples tuples and generalizes them).
        root_cause_rate: observed failure rate at or above which a
            pattern is asserted as a root cause by the harness.
        scaling_rounds: iterative-scaling sweeps after each selection.
    """

    max_patterns: int = 10
    max_arity: int = 3
    sample_size: int = 8
    root_cause_rate: float = 1.0
    scaling_rounds: int = 3


@dataclass
class ExplanationTablesResult:
    """The explanation table plus the root-cause reading of it."""

    patterns: list[Pattern] = field(default_factory=list)

    def asserted_causes(self, rate: float = 1.0) -> list[Conjunction]:
        """Patterns whose observed failure rate reaches ``rate``."""
        return [
            p.conjunction
            for p in self.patterns
            if p.observed_rate >= rate and not p.conjunction.is_trivial()
        ]


def _kl_gain(
    matching: list[int],
    outcomes: list[float],
    estimates: list[float],
) -> float:
    """Information gain of correcting the estimate on a pattern's extent."""
    if not matching:
        return 0.0
    observed = sum(outcomes[i] for i in matching) / len(matching)
    gain = 0.0
    for i in matching:
        estimate = min(max(estimates[i], 1e-9), 1.0 - 1e-9)
        target = min(max(observed, 1e-9), 1.0 - 1e-9)
        gain += target * math.log(target / estimate) + (1.0 - target) * math.log(
            (1.0 - target) / (1.0 - estimate)
        )
    return gain


def _candidate_patterns(
    sample: list[Instance], names: tuple[str, ...], max_arity: int
) -> set[frozenset[tuple[str, object]]]:
    """Generalizations of sampled failing tuples (wildcard subsets)."""
    candidates: set[frozenset[tuple[str, object]]] = set()
    for instance in sample:
        items = [(name, instance[name]) for name in names]
        for arity in range(1, min(max_arity, len(items)) + 1):
            for subset in itertools.combinations(items, arity):
                candidates.add(frozenset(subset))
    return candidates


def explanation_tables(
    history: ExecutionHistory,
    space: ParameterSpace,
    config: ExplanationTablesConfig | None = None,
) -> ExplanationTablesResult:
    """Build an explanation table for the history's outcome column.

    Args:
        history: the execution log (this method proposes no new runs).
        space: parameter space (attribute universe).
        config: greedy-selection knobs.
    """
    config = config or ExplanationTablesConfig()
    result = ExplanationTablesResult()
    instances = list(history.instances)
    if not instances:
        return result
    outcomes = [
        1.0 if history.outcome_of(instance) is Outcome.FAIL else 0.0
        for instance in instances
    ]
    overall = sum(outcomes) / len(outcomes)
    estimates = [overall] * len(instances)
    names = space.names

    chosen: set[frozenset[tuple[str, object]]] = set()
    # Deterministic "sampling": failing tuples with the worst current
    # estimate error (the informative ones), up to sample_size.
    for __ in range(config.max_patterns):
        errors = sorted(
            range(len(instances)),
            key=lambda i: -abs(outcomes[i] - estimates[i]),
        )
        failing_sample = [
            instances[i] for i in errors if outcomes[i] == 1.0
        ][: config.sample_size]
        if not failing_sample:
            break
        candidates = _candidate_patterns(failing_sample, names, config.max_arity)
        candidates -= chosen

        best_pattern: frozenset[tuple[str, object]] | None = None
        best_gain = 0.0
        best_matching: list[int] = []
        for candidate in candidates:
            matching = [
                i
                for i, instance in enumerate(instances)
                if all(instance[name] == value for name, value in candidate)
            ]
            gain = _kl_gain(matching, outcomes, estimates)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_pattern = candidate
                best_matching = matching
        if best_pattern is None:
            break

        chosen.add(best_pattern)
        observed = sum(outcomes[i] for i in best_matching) / len(best_matching)
        # Iterative scaling: align estimates with the observed rate on
        # the pattern extent (a few sweeps suffice for a flat lattice).
        for __scaling in range(config.scaling_rounds):
            current = sum(estimates[i] for i in best_matching) / len(best_matching)
            if current <= 0.0 or current >= 1.0:
                break
            for i in best_matching:
                if observed in (0.0, 1.0):
                    estimates[i] = observed
                else:
                    estimate = min(max(estimates[i], 1e-9), 1.0 - 1e-9)
                    current_safe = min(max(current, 1e-9), 1.0 - 1e-9)
                    odds = (estimate / (1 - estimate)) * (
                        (observed / (1 - observed))
                        / (current_safe / (1 - current_safe))
                    )
                    estimates[i] = odds / (1 + odds)

        conjunction = Conjunction(
            Predicate(name, Comparator.EQ, value) for name, value in best_pattern
        )
        result.patterns.append(
            Pattern(
                conjunction=conjunction,
                support=len(best_matching),
                observed_rate=observed,
                estimated_rate=sum(estimates[i] for i in best_matching)
                / len(best_matching),
                gain=best_gain,
            )
        )
    return result
