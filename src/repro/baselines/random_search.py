"""Random search instance generation (baseline).

The weakest generator in the paper's comparison ("the results were
always worse than those obtained using SMAC or BugDoc"): sample
configurations uniformly at random and execute them.  Kept in the
harness so that claim can be re-verified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.budget import BudgetExhausted
from ..core.session import DebugSession, InstanceUnavailable
from ..core.types import Instance

__all__ = ["RandomSearchResult", "random_search"]


@dataclass
class RandomSearchResult:
    """Instances proposed by random search, in execution order."""

    proposed: list[Instance] = field(default_factory=list)
    instances_executed: int = 0


def random_search(
    session: DebugSession, iterations: int, seed: int = 0
) -> RandomSearchResult:
    """Execute up to ``iterations`` uniformly random new instances."""
    rng = random.Random(seed)
    result = RandomSearchResult()
    executed_before = session.new_executions
    attempts = 0
    while len(result.proposed) < iterations and attempts < iterations * 10:
        attempts += 1
        candidate = session.space.random_instance(rng)
        if candidate in session.history:
            continue
        try:
            session.evaluate(candidate)
        except BudgetExhausted:
            break
        except InstanceUnavailable:
            continue
        result.proposed.append(candidate)
    result.instances_executed = session.new_executions - executed_before
    return result
