"""State-of-the-art comparison methods (substrates S11-S13).

* :func:`data_xray` -- hierarchical feature diagnosis (explains, does
  not generate).
* :func:`explanation_tables` -- greedy information-gain patterns
  (explains, does not generate).
* :func:`smac_search` -- random-forest SMBO flipped to hunt failures
  (generates, does not explain).
* :func:`random_search` -- uniform generation.
* :class:`RandomForestRegressor` -- the from-scratch surrogate model.
"""

from .data_xray import DataXRayConfig, DataXRayResult, data_xray
from .explanation_tables import (
    ExplanationTablesConfig,
    ExplanationTablesResult,
    Pattern,
    explanation_tables,
)
from .forest import RandomForestRegressor, RegressionTree, featurize
from .random_search import RandomSearchResult, random_search
from .smac import SMACConfig, SMACResult, smac_search

__all__ = [
    "DataXRayConfig",
    "DataXRayResult",
    "ExplanationTablesConfig",
    "ExplanationTablesResult",
    "Pattern",
    "RandomForestRegressor",
    "RandomSearchResult",
    "RegressionTree",
    "SMACConfig",
    "SMACResult",
    "data_xray",
    "explanation_tables",
    "featurize",
    "random_search",
    "smac_search",
]
