"""Longitudinal regression dashboard over compacted job summaries.

Compaction (``obs.retention``) turns raw event streams into per-job
``job_summaries`` rows; this module turns months of those into
*per-job-family trajectories*: for each workflow, time-bucketed series
of solver/span time (p50/p95), cache hit rate, queue latency, success
rate, and budget spend.  Two consumers:

* ``repro dashboard`` / ``GET /dashboard`` -- render the JSON document
  for humans and scripts;
* the committed snapshot under ``benchmarks/results/`` -- the document
  is canonical (sorted keys, floats rounded to 6 places, no wall-clock
  stamps), so two runs over the same store produce byte-identical JSON
  and regressions across PRs show up as a plain text diff.

Jobs not yet compacted still contribute: their summaries are computed
on the fly from raw events (identical code path to compaction), so the
dashboard never has a blind spot between sweeps.
"""

from __future__ import annotations

import json

from .metrics import percentile
from .retention import TERMINAL_STATUSES, summarize_job

__all__ = ["build_dashboard", "diff_dashboards", "render_dashboard"]

DEFAULT_BUCKET_SECONDS = 3600.0


def _family_summaries(store, workflow: str | None) -> list[dict]:
    """Every terminal job's summary: compacted rows as stored, raw jobs
    summarized on the fly (``compacted_at`` 0 marks the latter)."""
    summaries = {row["job_id"]: row for row in store.job_summary_rows(workflow)}
    for job in store.job_rows(workflow=workflow):
        job_id = job["job_id"]
        if job_id in summaries or str(job.get("status")) not in TERMINAL_STATUSES:
            continue
        rows = store.job_event_rows(job_id)
        if not rows:
            continue
        summary = summarize_job(job, rows, compacted_at=0.0)
        summary.update(job)
        summaries[job_id] = summary
    return sorted(
        summaries.values(),
        key=lambda s: (s.get("created_at") or 0.0, s["job_id"]),
    )


def _round(value):
    return None if value is None else round(float(value), 6)


def build_dashboard(
    store,
    workflow: str | None = None,
    bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
) -> dict:
    """The dashboard document: per-workflow time-bucketed trajectories.

    Buckets are keyed by ``floor(created_at / bucket_seconds)`` so the
    series is stable under re-runs; every metric within a bucket
    reduces over the jobs created in it.
    """
    families: dict[str, dict] = {}
    for summary in _family_summaries(store, workflow):
        family = str(summary.get("workflow"))
        created = float(summary.get("created_at") or 0.0)
        bucket_key = int(created // bucket_seconds) * int(bucket_seconds)
        buckets = families.setdefault(family, {})
        bucket = buckets.setdefault(
            bucket_key,
            {
                "jobs": 0,
                "succeeded": 0,
                "failed": 0,
                "cancelled": 0,
                "compacted": 0,
                "wall_seconds": [],
                "budget_spent": [],
                "queue_seconds": [],
                "cache_hits": 0.0,
                "cache_misses": 0.0,
                "spans": {},
            },
        )
        bucket["jobs"] += 1
        status = str(summary.get("status"))
        if status in bucket:
            bucket[status] += 1
        if float(summary.get("compacted_at") or 0.0) > 0:
            bucket["compacted"] += 1
        wall = summary.get("wall_seconds")
        if isinstance(wall, (int, float)):
            bucket["wall_seconds"].append(float(wall))
        budget = summary.get("budget_spent")
        if isinstance(budget, (int, float)):
            bucket["budget_spent"].append(float(budget))
        counters = summary.get("counters") or {}
        queue = counters.get("queue_seconds")
        if isinstance(queue, (int, float)):
            bucket["queue_seconds"].append(float(queue))
        bucket["cache_hits"] += float(counters.get("cache_hits", 0.0))
        bucket["cache_misses"] += float(counters.get("cache_misses", 0.0))
        for name, stats in (summary.get("span_stats") or {}).items():
            totals = bucket["spans"].setdefault(str(name), [])
            total = stats.get("total") if isinstance(stats, dict) else None
            if isinstance(total, (int, float)):
                totals.append(float(total))
    document: dict = {"bucket_seconds": bucket_seconds, "families": {}}
    for family in sorted(families):
        series = []
        for bucket_key in sorted(families[family]):
            bucket = families[family][bucket_key]
            lookups = bucket["cache_hits"] + bucket["cache_misses"]
            entry = {
                "bucket": bucket_key,
                "jobs": bucket["jobs"],
                "succeeded": bucket["succeeded"],
                "failed": bucket["failed"],
                "cancelled": bucket["cancelled"],
                "compacted": bucket["compacted"],
                "success_rate": _round(
                    bucket["succeeded"] / bucket["jobs"] if bucket["jobs"] else None
                ),
                "wall_p50": _round(percentile(bucket["wall_seconds"], 0.50)),
                "wall_p95": _round(percentile(bucket["wall_seconds"], 0.95)),
                "budget_mean": _round(
                    sum(bucket["budget_spent"]) / len(bucket["budget_spent"])
                    if bucket["budget_spent"]
                    else None
                ),
                "queue_p95": _round(percentile(bucket["queue_seconds"], 0.95)),
                "cache_hit_rate": _round(
                    bucket["cache_hits"] / lookups if lookups else None
                ),
                "spans": {
                    name: {
                        "jobs": len(totals),
                        "total_p50": _round(percentile(totals, 0.50)),
                        "total_p95": _round(percentile(totals, 0.95)),
                    }
                    for name, totals in sorted(bucket["spans"].items())
                },
            }
            series.append(entry)
        document["families"][family] = series
    return document


def render_dashboard(document: dict) -> str:
    """Canonical JSON: sorted keys, stable floats -- diffable across
    runs and committable as a snapshot."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def diff_dashboards(before: dict, after: dict) -> list[str]:
    """Human-readable per-family/bucket/metric differences (empty when
    the two documents are metric-identical)."""
    lines: list[str] = []
    families = sorted(
        set(before.get("families", {})) | set(after.get("families", {}))
    )
    for family in families:
        old = {b["bucket"]: b for b in before.get("families", {}).get(family, [])}
        new = {b["bucket"]: b for b in after.get("families", {}).get(family, [])}
        for bucket in sorted(set(old) | set(new)):
            if bucket not in old:
                lines.append(f"{family}@{bucket}: new bucket")
                continue
            if bucket not in new:
                lines.append(f"{family}@{bucket}: bucket gone")
                continue
            for key in sorted(set(old[bucket]) | set(new[bucket])):
                if old[bucket].get(key) != new[bucket].get(key):
                    lines.append(
                        f"{family}@{bucket}.{key}: "
                        f"{old[bucket].get(key)!r} -> {new[bucket].get(key)!r}"
                    )
    return lines
