"""Durable event persistence: the write-through sink and durable bus.

:class:`EventLogSink` turns a live :class:`~repro.exec.events.JobEvent`
stream into schema-v4 ``jobs``/``job_events`` rows without touching the
publish hot path: events are converted to plain row dicts and pushed
onto a bounded queue; a background flusher thread drains the queue and
batch-inserts.  Guarantees:

* **Order.**  Rows are enqueued from inside the bus lock (see
  ``EventBus._persist``), so queue order equals per-job seq order and
  batches always land seq-contiguous prefixes.
* **Prompt terminal flush.**  The flusher writes everything it drained
  on every wakeup, so a terminal event reaches the store within one
  drain cycle; ``flush()`` gives callers a synchronous barrier.
* **Never block, never break the job.**  A full queue drops the row
  (counted in :meth:`EventLogSink.stats`) rather than stalling publish;
  replay cuts at the first seq gap, so a dropped row can hide a tail
  but can never fake a complete stream.  Store errors are swallowed and
  counted -- telemetry must not take down debugging jobs.
* **Jobs-table lifecycle.**  A ``submitted`` row (seq 0) opens the
  job's ``jobs`` row (latest-wins: prior rows under the same id are
  purged), and the terminal row stamps status, report fingerprint,
  budget, and wall time.

:class:`DurableEventBus` is an :class:`~repro.exec.events.EventBus`
whose ``_persist`` hook feeds the sink and whose readers transparently
**replay** persisted prefixes: ``events()``/``log()`` on a job that has
no in-memory log (service restarted, or the log was discarded) serve
the store's prefix-complete rows first and only then decide whether to
wait for live events.
"""

from __future__ import annotations

import collections
import threading
import time

from ..exec.events import EventBus, JobEvent

__all__ = ["DurableEventBus", "EventLogSink", "event_to_row", "row_to_event"]


def event_to_row(event: JobEvent) -> dict:
    """The plain-dict row shape the provenance store accepts (v4)."""
    return {
        "job_id": event.job_id,
        "seq": event.seq,
        "kind": event.kind,
        "ts_wall": event.timestamp,
        "ts_monotonic": event.monotonic,
        "terminal": event.terminal,
        "payload": dict(event.payload),
    }


def row_to_event(row: dict) -> JobEvent:
    """Rebuild a :class:`JobEvent` from a persisted row."""
    return JobEvent(
        job_id=row["job_id"],
        kind=row["kind"],
        seq=int(row["seq"]),
        timestamp=float(row["ts_wall"]),
        payload=dict(row.get("payload") or {}),
        terminal=bool(row.get("terminal")),
        monotonic=float(row.get("ts_monotonic", 0.0)),
    )


class EventLogSink:
    """Bounded-queue, background-flushed event persistence.

    The producer side is built for the publish hot path (called under
    the bus lock, often from GIL-starved solver threads): one deque
    append and one flag check per event, nothing else.  Row conversion,
    JSON encoding, and store I/O all happen on the flusher thread,
    which sleeps a short *coalesce window* after each wakeup so a burst
    of events lands in one batch -- and, via
    ``store.persist_event_batch``, one transaction.  Commit cost
    dominates small writes; coalescing is the difference between
    telemetry costing a few percent and a few tens of percent.

    Args:
        store: a schema-v4 provenance store (anything exposing
            ``append_job_events`` / ``begin_job`` / ``finish_job``,
            ideally ``persist_event_batch``).
        maxsize: buffer bound; beyond it rows are dropped, not blocked
            on.
        coalesce_seconds: how long the flusher sleeps after a wakeup
            before draining, letting a burst accumulate.  Bounds how
            stale the store may run behind the live stream (barriers
            like ``flush()`` still complete within one window plus the
            write).
    """

    def __init__(
        self, store, maxsize: int = 4096, coalesce_seconds: float = 0.02
    ):
        self._store = store
        self._maxsize = maxsize
        self._coalesce = coalesce_seconds
        #: (tag, value) items; deque append/popleft are atomic, so the
        #: hot path never takes a lock beyond the wake flag's.
        self._buffer: collections.deque = collections.deque()
        self._wake = threading.Event()
        self._closed = threading.Event()
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._flushed = 0
        self._dropped = 0
        self._errors = 0
        self._thread = threading.Thread(
            target=self._run, name="event-log-sink", daemon=True
        )
        self._thread.start()

    @property
    def store(self):
        return self._store

    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            return {
                "flushed": self._flushed,
                "dropped": self._dropped,
                "errors": self._errors,
            }

    # -- Producer side -------------------------------------------------------
    def enqueue(self, event: JobEvent) -> None:
        """Hand one event to the flusher (called under the bus lock).

        Hot path: a bounds check, a deque append, and (at most) one
        wake-flag set.  After :meth:`close` the row is written
        synchronously instead: jobs still tearing down when the service
        shuts its sink must land their terminal events, even at the
        cost of latency.
        """
        if self._closed.is_set():
            self._write([event_to_row(event)])
            return
        if len(self._buffer) >= self._maxsize:
            with self._stats_lock:
                self._dropped += 1
            return
        self._buffer.append(("event", event))
        if not self._wake.is_set():
            self._wake.set()

    def flush(self, timeout: float | None = 10.0) -> bool:
        """Block until everything enqueued before this call is written."""
        if self._closed.is_set():
            return True  # synchronous mode: nothing is ever pending
        done = threading.Event()
        self._buffer.append(("flush", done))
        self._wake.set()
        return done.wait(timeout)

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain, stop the flusher, switch to synchronous writes."""
        with self._close_lock:
            if self._closed.is_set():
                return
            self._closed.set()
        done = threading.Event()
        self._buffer.append(("close", done))
        self._wake.set()
        done.wait(timeout)

    # -- Flusher -------------------------------------------------------------
    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self._coalesce > 0:
                time.sleep(self._coalesce)  # let a burst accumulate
            # Clear before draining: an append racing the drain re-sets
            # the flag, so its item is picked up next iteration at the
            # latest.
            self._wake.clear()
            items = []
            while True:
                try:
                    items.append(self._buffer.popleft())
                except IndexError:
                    break
            rows = []
            acks = []
            closing = False
            for tag, value in items:
                if tag == "event":
                    rows.append(event_to_row(value))
                else:
                    acks.append(value)
                    closing = closing or tag == "close"
            if rows:
                self._write(rows)
            for ack in acks:
                ack.set()
            if closing:
                return

    def _write(self, rows: list[dict]) -> None:
        try:
            if hasattr(self._store, "persist_event_batch"):
                # One transaction per batch: lifecycle + events under a
                # single commit (commit cost dominates small writes).
                self._store.persist_event_batch(rows)
            else:
                for row in rows:
                    if row["kind"] == "submitted" and row["seq"] == 0:
                        payload = row["payload"]
                        self._store.begin_job(
                            row["job_id"],
                            workflow=payload.get("workflow"),
                            algorithm=payload.get("algorithm"),
                            spec_fingerprint=payload.get("spec_fingerprint"),
                            created_at=row["ts_wall"],
                        )
                self._store.append_job_events(rows)
                for row in rows:
                    if row["terminal"]:
                        payload = row["payload"]
                        self._store.finish_job(
                            row["job_id"],
                            status=str(payload.get("status", "finished")),
                            report_fingerprint=payload.get(
                                "report_fingerprint"
                            ),
                            budget_spent=payload.get("budget_spent"),
                            wall_seconds=payload.get("wall_seconds"),
                            finished_at=row["ts_wall"],
                        )
            with self._stats_lock:
                self._flushed += len(rows)
        except Exception:
            with self._stats_lock:
                self._errors += 1


class DurableEventBus(EventBus):
    """An event bus whose logs survive the process.

    Publishing is the plain :class:`EventBus` path plus one queue push
    (inside the lock, so persistence order equals seq order); reading
    prefers the in-memory log and falls back to **prefix-complete
    replay** from the store:

    * job has a live in-memory log -> exactly the base-class behavior;
    * no in-memory log, store has a terminal prefix -> replay it and
      end (a restarted ``repro serve``/``debug --watch`` sees the
      finished job's complete stream);
    * no in-memory log, store knows the job but its log never closed
      (the previous incarnation crashed) -> replay the persisted prefix
      and end rather than wait for a terminal event that will never
      come;
    * store has never heard of the job -> base-class live wait.
    """

    def __init__(self, store, maxsize: int = 4096):
        super().__init__()
        self._store = store
        self._sink = EventLogSink(store, maxsize=maxsize)

    @property
    def sink(self) -> EventLogSink:
        return self._sink

    @property
    def store(self):
        return self._store

    def _persist(self, event: JobEvent) -> None:
        self._sink.enqueue(event)

    def flush(self, timeout: float | None = 10.0) -> bool:
        return self._sink.flush(timeout)

    def close(self, timeout: float | None = 10.0) -> None:
        self._sink.close(timeout)

    # -- Replaying readers ---------------------------------------------------
    def events(self, job_id, start=0, timeout=None):
        with self._lock:
            live = job_id in self._logs
        if live:
            yield from super().events(job_id, start=start, timeout=timeout)
            return
        self._sink.flush(timeout)
        rows = self._store.job_event_rows(job_id, start=start)
        for row in rows:
            yield row_to_event(row)
        if rows and rows[-1]["terminal"]:
            return
        if self._store.job_row(job_id) is not None:
            # A prior incarnation's job that never closed its log: the
            # persisted prefix is all there will ever be.
            return
        yield from super().events(job_id, start=start, timeout=timeout)

    def log(self, job_id):
        live = super().log(job_id)
        if live:
            return live
        self._sink.flush()
        return [row_to_event(row) for row in self._store.job_event_rows(job_id)]
