"""Observability: durable event logs, metrics, and process queries.

The ``obs`` layer sits between ``exec`` and ``service``: it may use the
event subsystem and the provenance store, but knows nothing about the
service (the service *uses* it).  Three pieces:

* :mod:`repro.obs.sink` -- the write-through persistence of job event
  streams (schema v4 ``jobs``/``job_events``) and the
  :class:`~repro.obs.sink.DurableEventBus` that replays persisted
  prefixes transparently after a restart.
* :mod:`repro.obs.metrics` -- a stdlib-only metrics registry
  (counters/gauges/histograms with per-thread accumulation) plus the
  :class:`~repro.obs.metrics.EventMetrics` progress-hook adapter that
  turns the neutral ``(kind, payload)`` stream into metrics.
* :mod:`repro.obs.query` -- the process-query engine behind
  ``repro query``: kind/payload predicates, SIGNAL-style sequence
  patterns, grouping, aggregates (rollup-served when possible), and
  trace-tree reconstruction over the persisted event table.
* :mod:`repro.obs.retention` -- the retention/compaction sweep that
  rolls terminal jobs' raw events into ``job_summaries`` rows (CAS-
  guarded, online-safe), plus the ``repro serve`` background thread.
* :mod:`repro.obs.trace` -- trace contexts minted at the submission
  edge and propagated through queue, scheduler, pool, and fleet.
* :mod:`repro.obs.dashboard` -- the longitudinal regression dashboard
  built from job summaries (canonical, diffable JSON).
"""

from .dashboard import build_dashboard, diff_dashboards, render_dashboard
from .metrics import EventMetrics, MetricsRegistry, percentile
from .query import Predicate, QueryEngine, sequence_matches
from .retention import RetentionPolicy, RetentionThread, compact, summarize_job
from .sink import DurableEventBus, EventLogSink, event_to_row, row_to_event
from .trace import TraceContext, child_trace_payload

__all__ = [
    "DurableEventBus",
    "EventLogSink",
    "EventMetrics",
    "MetricsRegistry",
    "Predicate",
    "QueryEngine",
    "RetentionPolicy",
    "RetentionThread",
    "TraceContext",
    "build_dashboard",
    "child_trace_payload",
    "compact",
    "diff_dashboards",
    "event_to_row",
    "percentile",
    "render_dashboard",
    "row_to_event",
    "sequence_matches",
    "summarize_job",
]
