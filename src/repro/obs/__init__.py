"""Observability: durable event logs, metrics, and process queries.

The ``obs`` layer sits between ``exec`` and ``service``: it may use the
event subsystem and the provenance store, but knows nothing about the
service (the service *uses* it).  Three pieces:

* :mod:`repro.obs.sink` -- the write-through persistence of job event
  streams (schema v4 ``jobs``/``job_events``) and the
  :class:`~repro.obs.sink.DurableEventBus` that replays persisted
  prefixes transparently after a restart.
* :mod:`repro.obs.metrics` -- a stdlib-only metrics registry
  (counters/gauges/histograms with per-thread accumulation) plus the
  :class:`~repro.obs.metrics.EventMetrics` progress-hook adapter that
  turns the neutral ``(kind, payload)`` stream into metrics.
* :mod:`repro.obs.query` -- the process-query engine behind
  ``repro query``: kind/payload predicates, SIGNAL-style sequence
  patterns, grouping, and aggregates over the persisted event table.
"""

from .metrics import EventMetrics, MetricsRegistry, percentile
from .query import Predicate, QueryEngine, sequence_matches
from .sink import DurableEventBus, EventLogSink, event_to_row, row_to_event

__all__ = [
    "DurableEventBus",
    "EventLogSink",
    "EventMetrics",
    "MetricsRegistry",
    "Predicate",
    "QueryEngine",
    "event_to_row",
    "percentile",
    "row_to_event",
    "sequence_matches",
]
