"""Retention + compaction: roll terminal jobs' raw events into summaries.

``job_events`` grows without bound under real traffic (every run of
every job appends rows).  Operating the telemetry tables over months of
history means *compacting*: once a terminal job's raw stream has aged
past the policy's bounds, its events fold into one ``job_summaries``
row (event counts by kind, span p50/p95, first/last timestamps, the
terminal payload, solver/cache counters) and the raw rows are deleted.
What survives compaction:

* the ``jobs`` row (identity, status, fingerprints) -- ``repro query
  jobs`` is unchanged;
* ``job_rollups`` (the incrementally maintained per-job aggregates) --
  ``repro query agg`` over ``span:``/``count:`` metrics is
  byte-identical before and after;
* ``event_rollups`` (the per-window ingest ledger);
* the new ``job_summaries`` row -- the dashboard's longitudinal input.

What does not: raw per-event rows, so ``events``/``seq``/``trace``
queries only see jobs still inside the retained window.

Safety against a live writer is the store's CAS guard
(:meth:`~repro.provenance.store.SQLiteProvenanceStore.compact_job`):
the decision taken here (job X, status S, finished_at T, summary built
from its events) is re-validated inside the write transaction, so a job
resubmitted mid-sweep (latest-wins purge) is skipped, never half
compacted.  Each job commits atomically -- a ``kill -9`` mid-sweep
leaves every job fully compacted or fully raw, and re-running
``compact`` converges (it is idempotent over already-compacted jobs,
which simply have no raw events left).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .metrics import percentile

__all__ = ["RetentionPolicy", "RetentionThread", "compact", "summarize_job"]

#: Job statuses eligible for compaction (only terminal streams roll up).
TERMINAL_STATUSES = ("succeeded", "failed", "cancelled")


@dataclass(frozen=True)
class RetentionPolicy:
    """When a terminal job's raw events become compactable.

    Attributes:
        max_age_seconds: compact jobs whose last event is older than
            this (None disables the age bound).
        max_raw_jobs: keep at most this many terminal jobs raw; the
            *oldest* beyond the bound compact regardless of age (None
            disables the count bound).
        statuses: terminal statuses the policy applies to.
        status_max_age: per-status age overrides, e.g. keep failures
            raw 10x longer for debugging: ``{"failed": 864000}``.
    """

    max_age_seconds: float | None = None
    max_raw_jobs: int | None = None
    statuses: tuple = TERMINAL_STATUSES
    status_max_age: dict = field(default_factory=dict)

    def age_bound(self, status: str) -> float | None:
        return self.status_max_age.get(status, self.max_age_seconds)


def summarize_job(
    job_row: dict, event_rows: list[dict], compacted_at: float
) -> dict:
    """Fold a job's raw event rows into its summary columns.

    The summary keeps what the longitudinal dashboard and post-hoc
    debugging need once the raw rows are gone: per-kind counts, span
    duration distributions (p50/p95/total per span name), first/last
    wall timestamps, the terminal event's payload verbatim, and the
    operational counters (cache hits, queue latency) mined from the
    stream.
    """
    kind_counts: dict[str, int] = {}
    span_seconds: dict[str, list[float]] = {}
    counters: dict[str, float] = {}
    terminal_payload = None
    first_ts = last_ts = None
    submitted_ts = started_ts = None
    for row in event_rows:
        ts = float(row.get("ts_wall", 0.0))
        first_ts = ts if first_ts is None else min(first_ts, ts)
        last_ts = ts if last_ts is None else max(last_ts, ts)
        kind = str(row.get("kind"))
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        payload = row.get("payload") or {}
        if kind == "submitted" and submitted_ts is None:
            submitted_ts = ts
        elif kind == "started" and started_ts is None:
            started_ts = ts
        elif kind == "span":
            name = payload.get("name")
            if isinstance(name, str):
                try:
                    seconds = float(payload.get("seconds", 0.0))
                except (TypeError, ValueError):
                    continue
                span_seconds.setdefault(name, []).append(seconds)
        elif kind == "metrics_snapshot":
            cache = payload.get("cache")
            if isinstance(cache, dict):
                for key in ("hits", "misses", "executions"):
                    value = cache.get(key)
                    if isinstance(value, (int, float)):
                        counters[f"cache_{key}"] = float(value)
        if row.get("terminal"):
            terminal_payload = dict(payload)
    if submitted_ts is not None and started_ts is not None:
        counters["queue_seconds"] = started_ts - submitted_ts
    span_stats = {
        name: {
            "count": len(values),
            "total": sum(values),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
        }
        for name, values in sorted(span_seconds.items())
    }
    return {
        "event_count": len(event_rows),
        "first_ts": first_ts,
        "last_ts": last_ts,
        "kind_counts": kind_counts,
        "span_stats": span_stats,
        "counters": counters,
        "terminal_payload": terminal_payload,
        "compacted_at": compacted_at,
    }


def compact(
    store,
    policy: RetentionPolicy,
    now: float | None = None,
    workflow: str | None = None,
    compact_all: bool = False,
) -> dict:
    """One retention sweep: compact every policy-eligible terminal job.

    ``compact_all=True`` ignores the age/count bounds and compacts
    every terminal job with raw events (the ``repro compact --all``
    maintenance path).  Returns a report dict: jobs examined /
    compacted / skipped (CAS losses), events deleted.
    """
    now = time.time() if now is None else now
    stats = {row["job_id"]: row for row in store.job_event_stats()}
    candidates = []
    terminal_raw = 0
    for job in store.job_rows(workflow=workflow):
        status = str(job.get("status"))
        if status not in policy.statuses:
            continue
        stat = stats.get(job["job_id"])
        if stat is None:
            continue  # already compacted (or never persisted events)
        terminal_raw += 1
        age = now - stat["last_ts"]
        bound = policy.age_bound(status)
        due = compact_all or (bound is not None and age >= bound)
        candidates.append((stat["last_ts"], job, due))
    candidates.sort(key=lambda item: item[0])
    if not compact_all and policy.max_raw_jobs is not None:
        overflow = terminal_raw - policy.max_raw_jobs
        if overflow > 0:
            candidates = [
                (ts, job, True) if index < overflow else (ts, job, due)
                for index, (ts, job, due) in enumerate(candidates)
            ]
    report = {"examined": terminal_raw, "compacted": 0, "skipped": 0, "events_deleted": 0}
    for __, job, due in candidates:
        if not due:
            continue
        event_rows = store.job_event_rows(job["job_id"])
        summary = summarize_job(job, event_rows, compacted_at=now)
        deleted = store.compact_job(
            job["job_id"],
            expected_status=str(job["status"]),
            expected_finished_at=job["finished_at"],
            summary=summary,
        )
        if deleted is None:
            # CAS guard lost: the job was resubmitted or re-finished
            # between the read above and the write.  Skip; a later
            # sweep sees the new incarnation.
            report["skipped"] += 1
        else:
            report["compacted"] += 1
            report["events_deleted"] += deleted
    return report


class RetentionThread:
    """Periodic background compaction inside ``repro serve``.

    Daemon thread; sweep failures are recorded (``stats()``) but never
    take the service down.  ``stop()`` wakes and joins it.
    """

    def __init__(
        self,
        store,
        policy: RetentionPolicy,
        interval_seconds: float = 300.0,
    ):
        self._store = store
        self._policy = policy
        self._interval = interval_seconds
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._stats = {"sweeps": 0, "compacted": 0, "events_deleted": 0, "errors": 0}
        self._thread = threading.Thread(
            target=self._loop, name="repro-retention", daemon=True
        )

    def start(self) -> "RetentionThread":
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self.sweep()

    def sweep(self) -> dict | None:
        """Run one sweep now (also used by tests); None on error."""
        try:
            report = compact(self._store, self._policy)
        except Exception:
            with self._lock:
                self._stats["errors"] += 1
            return None
        with self._lock:
            self._stats["sweeps"] += 1
            self._stats["compacted"] += report["compacted"]
            self._stats["events_deleted"] += report["events_deleted"]
        return report

    def stats(self) -> dict:
        with self._lock:
            return dict(self._stats)

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
