"""Process queries over persisted job event logs (SIGNAL-style).

The persisted ``job_events`` table is a *process log*: per-job totally
ordered event sequences with JSON payloads.  This module answers the
questions the SIGNAL process query language poses over such logs --
"which jobs confirmed a suspect and later refuted one?", "p95 solver
time by workload family?" -- with three primitives:

* **Predicates** (:class:`Predicate`): ``field OP value`` filters over
  an event's envelope (``kind``, ``job_id``, ``seq``, ``terminal``) or
  its payload (dotted paths reach nested objects, e.g.
  ``spans.solver.total_seconds``).  Values are parsed as JSON when
  possible, so ``budget=12`` compares numerically and ``status="done"``
  as a string.
* **Sequence patterns** (:func:`sequence_matches`): an ordered list of
  steps, each a kind plus optional predicates; a job matches when its
  events contain the steps *in order* (not necessarily adjacent) --
  SIGNAL's ``A ~> B`` eventually-follows operator, evaluated by a
  streaming automaton over the ``(job_id, seq)``-ordered scan.
* **Aggregates** (:meth:`QueryEngine.aggregate`): per-job metrics
  (span-duration sums, event counts, or ``jobs``-row columns) grouped
  by workload family / spec fingerprint / algorithm / status and
  reduced with count/sum/mean/min/max/p50/p95.

Everything streams over :meth:`~repro.provenance.store.
SQLiteProvenanceStore.iter_job_events`; no query materializes the
whole event table.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator

from .metrics import percentile

__all__ = ["Predicate", "QueryEngine", "sequence_matches"]

_ENVELOPE_FIELDS = {"job_id", "seq", "kind", "terminal", "ts_wall", "ts_monotonic"}

#: Operators, longest first so ``<=`` wins over ``<`` when parsing.
_OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


class Predicate:
    """One ``field OP value`` filter over an event row."""

    def __init__(self, field: str, op: str, value):
        if op not in _OPERATORS:
            raise ValueError(f"unknown operator {op!r}")
        self.field = field
        self.op = op
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self.field!r} {self.op} {self.value!r})"

    @classmethod
    def parse(cls, expression: str) -> "Predicate":
        """Parse ``field OP value`` (value JSON when possible).

        Examples: ``kind=suspect_confirmed``, ``seq>=10``,
        ``name=solver``, ``seconds>0.5``, ``spans.solver.count!=0``.
        """
        for op in _OPERATORS:
            index = expression.find(op)
            if index > 0:
                field = expression[:index].strip()
                raw = expression[index + len(op):].strip()
                try:
                    value = json.loads(raw)
                except (json.JSONDecodeError, ValueError):
                    value = raw  # bare words compare as strings
                return cls(field, op, value)
        raise ValueError(
            f"cannot parse predicate {expression!r} (expected field OP value)"
        )

    def _extract(self, row: dict):
        if self.field in _ENVELOPE_FIELDS:
            return row.get(self.field)
        node = row.get("payload") or {}
        for part in self.field.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def matches(self, row: dict) -> bool:
        actual = self._extract(row)
        expected = self.value
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if actual is None:
            return False
        try:
            return {
                "<": actual < expected,
                "<=": actual <= expected,
                ">": actual > expected,
                ">=": actual >= expected,
            }[self.op]
        except TypeError:
            return False  # incomparable types never match an ordering


def _parse_step(step) -> tuple[str, list[Predicate]]:
    """A pattern step: ``"kind"`` or ``"kind[pred,pred]"`` or a pair."""
    if isinstance(step, tuple):
        kind, predicates = step
        return kind, list(predicates)
    step = step.strip()
    if step.endswith("]") and "[" in step:
        kind, __, inner = step.partition("[")
        inner = inner[:-1]
        predicates = [
            Predicate.parse(part.strip())
            for part in inner.split(",")
            if part.strip()
        ]
        return kind.strip(), predicates
    return step, []


def sequence_matches(
    rows: Iterable[dict], pattern: Iterable
) -> Iterator[dict]:
    """Jobs whose event sequence contains the pattern steps in order.

    ``rows`` must be ordered by ``(job_id, seq)`` (the order
    ``iter_job_events`` yields).  Each step is a kind, optionally with
    predicates (``"suspect_confirmed"`` or ``"span[name=solver]"``).
    Yields one match dict per matching job -- the *first* witness:
    ``{"job_id": ..., "seqs": [seq of each matched step]}``.
    """
    steps = [_parse_step(step) for step in pattern]
    if not steps:
        return
    current_job: str | None = None
    position = 0
    seqs: list[int] = []
    for row in rows:
        if row["job_id"] != current_job:
            current_job = row["job_id"]
            position = 0
            seqs = []
        if position >= len(steps):
            continue  # job already matched; skip to the next job
        kind, predicates = steps[position]
        if row["kind"] == kind and all(p.matches(row) for p in predicates):
            seqs.append(row["seq"])
            position += 1
            if position == len(steps):
                yield {"job_id": current_job, "seqs": list(seqs)}


_STATS = {
    "count": len,
    "sum": sum,
    "mean": lambda values: sum(values) / len(values) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "p50": lambda values: percentile(values, 0.50),
    "p95": lambda values: percentile(values, 0.95),
}

_GROUP_FIELDS = ("workflow", "spec_fingerprint", "algorithm", "status")


class QueryEngine:
    """Queries over one schema-v4 provenance store."""

    def __init__(self, store):
        self._store = store

    # -- Raw scans -----------------------------------------------------------
    def jobs(self, workflow: str | None = None) -> list[dict]:
        rows = self._store.job_rows()
        if workflow is not None:
            rows = [row for row in rows if row["workflow"] == workflow]
        return rows

    def events(
        self,
        workflow: str | None = None,
        kinds: Iterable[str] | None = None,
        predicates: Iterable[Predicate] = (),
        limit: int | None = None,
    ) -> Iterator[dict]:
        """Filtered streaming scan (kind filter is pushed into SQL)."""
        predicates = list(predicates)
        yielded = 0
        for row in self._store.iter_job_events(workflow=workflow, kinds=kinds):
            if all(p.matches(row) for p in predicates):
                yield row
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    # -- Sequence patterns ---------------------------------------------------
    def sequence(
        self, pattern: Iterable, workflow: str | None = None
    ) -> list[dict]:
        """Jobs matching the ordered pattern (see :func:`sequence_matches`).

        Only the pattern's kinds are scanned -- SIGNAL's eventually-
        follows semantics ignore interleaved events, so restricting the
        scan changes nothing but the I/O.
        """
        steps = [_parse_step(step) for step in pattern]
        kinds = sorted({kind for kind, __ in steps})
        rows = self._store.iter_job_events(workflow=workflow, kinds=kinds)
        return list(sequence_matches(rows, steps))

    # -- Grouped aggregates --------------------------------------------------
    def _per_job_values(
        self, metric: str, workflow: str | None
    ) -> dict[str, float]:
        """One numeric value per job for ``metric``.

        Metric forms:

        * ``span:<name>`` -- summed seconds of that span per job;
        * ``count:<kind>`` -- events of that kind per job;
        * a ``jobs``-row numeric column (``wall_seconds``,
          ``budget_spent``) per job.
        """
        values: dict[str, float] = {}
        if metric.startswith("span:"):
            name = metric.split(":", 1)[1]
            rows = self._store.iter_job_events(
                workflow=workflow, kinds=["span"]
            )
            for row in rows:
                payload = row.get("payload") or {}
                if payload.get("name") != name:
                    continue
                try:
                    seconds = float(payload.get("seconds", 0.0))
                except (TypeError, ValueError):
                    continue
                values[row["job_id"]] = values.get(row["job_id"], 0.0) + seconds
            return values
        if metric.startswith("count:"):
            kind = metric.split(":", 1)[1]
            rows = self._store.iter_job_events(
                workflow=workflow, kinds=[kind]
            )
            for row in rows:
                values[row["job_id"]] = values.get(row["job_id"], 0.0) + 1.0
            return values
        for job in self.jobs(workflow):
            value = job.get(metric)
            if isinstance(value, (int, float)):
                values[job["job_id"]] = float(value)
        return values

    def aggregate(
        self,
        metric: str,
        stat: str = "p95",
        group_by: str | None = None,
        workflow: str | None = None,
    ) -> dict[str, dict]:
        """Grouped reduction of a per-job metric.

        Returns ``{group: {"jobs": n, "value": reduced}}``; the single
        group is ``"*"`` when ``group_by`` is None.  ``group_by`` may be
        any of ``workflow``/``spec_fingerprint``/``algorithm``/
        ``status`` (columns of the ``jobs`` table).
        """
        if stat not in _STATS:
            raise ValueError(
                f"unknown stat {stat!r} (choose from {sorted(_STATS)})"
            )
        if group_by is not None and group_by not in _GROUP_FIELDS:
            raise ValueError(
                f"unknown group field {group_by!r} "
                f"(choose from {_GROUP_FIELDS})"
            )
        values = self._per_job_values(metric, workflow)
        job_groups: dict[str, str] = {}
        if group_by is not None:
            for job in self.jobs(workflow):
                job_groups[job["job_id"]] = str(job.get(group_by))
        grouped: dict[str, list[float]] = {}
        for job_id, value in values.items():
            group = job_groups.get(job_id, "*") if group_by else "*"
            grouped.setdefault(group, []).append(value)
        reduce = _STATS[stat]
        return {
            group: {"jobs": len(members), "value": reduce(members)}
            for group, members in sorted(grouped.items())
        }
