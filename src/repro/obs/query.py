"""Process queries over persisted job event logs (SIGNAL-style).

The persisted ``job_events`` table is a *process log*: per-job totally
ordered event sequences with JSON payloads.  This module answers the
questions the SIGNAL process query language poses over such logs --
"which jobs confirmed a suspect and later refuted one?", "p95 solver
time by workload family?" -- with three primitives:

* **Predicates** (:class:`Predicate`): ``field OP value`` filters over
  an event's envelope (``kind``, ``job_id``, ``seq``, ``terminal``) or
  its payload (dotted paths reach nested objects, e.g.
  ``spans.solver.total_seconds``).  Values are parsed as JSON when
  possible, so ``budget=12`` compares numerically and ``status="done"``
  as a string.
* **Sequence patterns** (:func:`sequence_matches`): an ordered list of
  steps, each a kind plus optional predicates; a job matches when its
  events contain the steps *in order* (not necessarily adjacent) --
  SIGNAL's ``A ~> B`` eventually-follows operator, evaluated by a
  streaming automaton over the ``(job_id, seq)``-ordered scan.
* **Aggregates** (:meth:`QueryEngine.aggregate`): per-job metrics
  (span-duration sums, event counts, or ``jobs``-row columns) grouped
  by workload family / spec fingerprint / algorithm / status and
  reduced with count/sum/mean/min/max/p50/p95.

Everything streams over :meth:`~repro.provenance.store.
SQLiteProvenanceStore.iter_job_events`; no query materializes the
whole event table.
"""

from __future__ import annotations

import itertools
import json
from collections.abc import Iterable, Iterator

from .metrics import percentile

__all__ = ["Predicate", "QueryEngine", "sequence_matches"]

_ENVELOPE_FIELDS = {"job_id", "seq", "kind", "terminal", "ts_wall", "ts_monotonic"}

#: Operators, longest first so ``<=`` wins over ``<`` when parsing.
_OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


class Predicate:
    """One ``field OP value`` filter over an event row."""

    def __init__(self, field: str, op: str, value):
        if op not in _OPERATORS:
            raise ValueError(f"unknown operator {op!r}")
        self.field = field
        self.op = op
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self.field!r} {self.op} {self.value!r})"

    @classmethod
    def parse(cls, expression: str) -> "Predicate":
        """Parse ``field OP value`` (value JSON when possible).

        Examples: ``kind=suspect_confirmed``, ``seq>=10``,
        ``name=solver``, ``seconds>0.5``, ``spans.solver.count!=0``.
        """
        for op in _OPERATORS:
            index = expression.find(op)
            if index > 0:
                field = expression[:index].strip()
                raw = expression[index + len(op):].strip()
                try:
                    value = json.loads(raw)
                except (json.JSONDecodeError, ValueError):
                    value = raw  # bare words compare as strings
                return cls(field, op, value)
        raise ValueError(
            f"cannot parse predicate {expression!r} (expected field OP value)"
        )

    def _extract(self, row: dict):
        if self.field in _ENVELOPE_FIELDS:
            return row.get(self.field)
        node = row.get("payload") or {}
        for part in self.field.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def matches(self, row: dict) -> bool:
        actual = self._extract(row)
        expected = self.value
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if actual is None:
            return False
        try:
            return {
                "<": actual < expected,
                "<=": actual <= expected,
                ">": actual > expected,
                ">=": actual >= expected,
            }[self.op]
        except TypeError:
            return False  # incomparable types never match an ordering


def _parse_step(step) -> tuple[str, list[Predicate]]:
    """A pattern step: ``"kind"`` or ``"kind[pred,pred]"`` or a pair."""
    if isinstance(step, tuple):
        kind, predicates = step
        return kind, list(predicates)
    step = step.strip()
    if step.endswith("]") and "[" in step:
        kind, __, inner = step.partition("[")
        inner = inner[:-1]
        predicates = [
            Predicate.parse(part.strip())
            for part in inner.split(",")
            if part.strip()
        ]
        return kind.strip(), predicates
    return step, []


def sequence_matches(
    rows: Iterable[dict], pattern: Iterable
) -> Iterator[dict]:
    """Jobs whose event sequence contains the pattern steps in order.

    ``rows`` must be ordered by ``(job_id, seq)`` (the order
    ``iter_job_events`` yields).  Each step is a kind, optionally with
    predicates (``"suspect_confirmed"`` or ``"span[name=solver]"``).
    Yields one match dict per matching job -- the *first* witness:
    ``{"job_id": ..., "seqs": [seq of each matched step]}``.
    """
    steps = [_parse_step(step) for step in pattern]
    if not steps:
        return
    current_job: str | None = None
    position = 0
    seqs: list[int] = []
    for row in rows:
        if row["job_id"] != current_job:
            current_job = row["job_id"]
            position = 0
            seqs = []
        if position >= len(steps):
            continue  # job already matched; skip to the next job
        kind, predicates = steps[position]
        if row["kind"] == kind and all(p.matches(row) for p in predicates):
            seqs.append(row["seq"])
            position += 1
            if position == len(steps):
                yield {"job_id": current_job, "seqs": list(seqs)}


_STATS = {
    "count": len,
    "sum": sum,
    "mean": lambda values: sum(values) / len(values) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "p50": lambda values: percentile(values, 0.50),
    "p95": lambda values: percentile(values, 0.95),
}

_GROUP_FIELDS = ("workflow", "spec_fingerprint", "algorithm", "status")


class QueryEngine:
    """Queries over one schema-v6 provenance store.

    ``agg`` answers ``span:``/``count:`` metrics from the store's
    incrementally maintained ``job_rollups`` when possible (constant
    work per query instead of a raw-event rescan, and the only way to
    answer over jobs whose raw events were compacted away); every
    rollup-served query bumps ``rollup_hits``, every raw fallback
    ``rollup_misses``.  Pass ``use_rollups=False`` to force raw scans
    (the differential tests compare the two paths byte for byte).
    """

    def __init__(self, store, use_rollups: bool = True):
        self._store = store
        self._use_rollups = use_rollups
        self.rollup_hits = 0
        self.rollup_misses = 0

    # -- Raw scans -----------------------------------------------------------
    def jobs(
        self,
        workflow: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> list[dict]:
        try:
            return self._store.job_rows(
                workflow=workflow, limit=limit, offset=offset
            )
        except TypeError:
            # Stores predating the paged signature (e.g. in-memory test
            # doubles): filter and page in Python.
            rows = self._store.job_rows()
        if workflow is not None:
            rows = [row for row in rows if row["workflow"] == workflow]
        start = int(offset or 0)
        end = None if limit is None else start + int(limit)
        return rows[start:end]

    def events(
        self,
        workflow: str | None = None,
        kinds: Iterable[str] | None = None,
        predicates: Iterable[Predicate] = (),
        limit: int | None = None,
        offset: int | None = None,
    ) -> Iterator[dict]:
        """Filtered streaming scan (kind filter is pushed into SQL)."""
        predicates = list(predicates)
        yielded = 0
        skip = int(offset or 0)
        for row in self._store.iter_job_events(workflow=workflow, kinds=kinds):
            if all(p.matches(row) for p in predicates):
                if skip > 0:
                    skip -= 1
                    continue
                yield row
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    # -- Sequence patterns ---------------------------------------------------
    def sequence(
        self,
        pattern: Iterable,
        workflow: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> list[dict]:
        """Jobs matching the ordered pattern (see :func:`sequence_matches`).

        Only the pattern's kinds are scanned -- SIGNAL's eventually-
        follows semantics ignore interleaved events, so restricting the
        scan changes nothing but the I/O.  ``limit``/``offset`` page the
        match stream without materializing it first.
        """
        steps = [_parse_step(step) for step in pattern]
        kinds = sorted({kind for kind, __ in steps})
        rows = self._store.iter_job_events(workflow=workflow, kinds=kinds)
        matches = sequence_matches(rows, steps)
        start = int(offset or 0)
        stop = None if limit is None else start + int(limit)
        return list(itertools.islice(matches, start, stop))

    # -- Grouped aggregates --------------------------------------------------
    def _per_job_values(
        self, metric: str, workflow: str | None
    ) -> dict[str, float]:
        """One numeric value per job for ``metric``.

        Metric forms:

        * ``span:<name>`` -- summed seconds of that span per job;
        * ``count:<kind>`` -- events of that kind per job;
        * a ``jobs``-row numeric column (``wall_seconds``,
          ``budget_spent``) per job.
        """
        values: dict[str, float] = {}
        if metric.startswith(("span:", "count:")):
            if self._use_rollups and hasattr(self._store, "rollup_values"):
                self.rollup_hits += 1
                # ``+ 0.0`` mirrors the raw path's ``0.0 + first_value``
                # accumulation start so a -0.0 first sample renders
                # identically.
                return {
                    job_id: value + 0.0
                    for job_id, value in self._store.rollup_values(
                        metric, workflow=workflow
                    ).items()
                }
            self.rollup_misses += 1
        if metric.startswith("span:"):
            name = metric.split(":", 1)[1]
            rows = self._store.iter_job_events(
                workflow=workflow, kinds=["span"]
            )
            for row in rows:
                payload = row.get("payload") or {}
                if payload.get("name") != name:
                    continue
                try:
                    seconds = float(payload.get("seconds", 0.0))
                except (TypeError, ValueError):
                    continue
                values[row["job_id"]] = values.get(row["job_id"], 0.0) + seconds
            return values
        if metric.startswith("count:"):
            kind = metric.split(":", 1)[1]
            rows = self._store.iter_job_events(
                workflow=workflow, kinds=[kind]
            )
            for row in rows:
                values[row["job_id"]] = values.get(row["job_id"], 0.0) + 1.0
            return values
        for job in self.jobs(workflow):
            value = job.get(metric)
            if isinstance(value, (int, float)):
                values[job["job_id"]] = float(value)
        return values

    def aggregate(
        self,
        metric: str,
        stat: str = "p95",
        group_by: str | None = None,
        workflow: str | None = None,
    ) -> dict[str, dict]:
        """Grouped reduction of a per-job metric.

        Returns ``{group: {"jobs": n, "value": reduced}}``; the single
        group is ``"*"`` when ``group_by`` is None.  ``group_by`` may be
        any of ``workflow``/``spec_fingerprint``/``algorithm``/
        ``status`` (columns of the ``jobs`` table).
        """
        if stat not in _STATS:
            raise ValueError(
                f"unknown stat {stat!r} (choose from {sorted(_STATS)})"
            )
        if group_by is not None and group_by not in _GROUP_FIELDS:
            raise ValueError(
                f"unknown group field {group_by!r} "
                f"(choose from {_GROUP_FIELDS})"
            )
        values = self._per_job_values(metric, workflow)
        job_groups: dict[str, str] = {}
        if group_by is not None:
            for job in self.jobs(workflow):
                job_groups[job["job_id"]] = str(job.get(group_by))
        grouped: dict[str, list[float]] = {}
        for job_id, value in values.items():
            group = job_groups.get(job_id, "*") if group_by else "*"
            grouped.setdefault(group, []).append(value)
        reduce = _STATS[stat]
        return {
            group: {"jobs": len(members), "value": reduce(members)}
            for group, members in sorted(grouped.items())
        }

    # -- Trace reconstruction ------------------------------------------------
    def trace(self, trace_id: str) -> dict:
        """Rebuild one causal tree from every event stamped with
        ``trace_id``.

        Events are grouped into spans by their ``span_id`` payload
        field and linked by ``parent_id``; the result nests child spans
        (scheduler dispatches, pool/fleet worker executions -- possibly
        from other processes or machines) under the span that caused
        them.  Spans whose parent never logged an event (or ``None``)
        are roots.  Works over *raw* events only: compacted jobs keep
        their rollups and summary but lose per-event trace detail.
        """
        spans: dict[str, dict] = {}
        total = 0
        for row in self._store.iter_job_events():
            payload = row.get("payload") or {}
            if payload.get("trace_id") != trace_id:
                continue
            span_id = payload.get("span_id")
            if not isinstance(span_id, str):
                continue
            span = spans.get(span_id)
            if span is None:
                parent = payload.get("parent_id")
                span = spans[span_id] = {
                    "span_id": span_id,
                    "parent_id": parent if isinstance(parent, str) else None,
                    "first_ts": row["ts_wall"],
                    "last_ts": row["ts_wall"],
                    "events": [],
                    "children": [],
                }
            span["first_ts"] = min(span["first_ts"], row["ts_wall"])
            span["last_ts"] = max(span["last_ts"], row["ts_wall"])
            for key in ("worker", "host", "pid"):
                if key in payload and key not in span:
                    span[key] = payload[key]
            span["events"].append(
                {
                    "job_id": row["job_id"],
                    "seq": row["seq"],
                    "kind": row["kind"],
                    "ts_wall": row["ts_wall"],
                }
            )
            total += 1
        roots = []
        for span in spans.values():
            parent = spans.get(span["parent_id"]) if span["parent_id"] else None
            if parent is not None and parent is not span:
                parent["children"].append(span)
            else:
                roots.append(span)
        for span in spans.values():
            span["children"].sort(key=lambda s: (s["first_ts"], s["span_id"]))
        roots.sort(key=lambda s: (s["first_ts"], s["span_id"]))
        return {
            "trace_id": trace_id,
            "spans": len(spans),
            "events": total,
            "tree": roots,
        }
