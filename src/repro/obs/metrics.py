"""Stdlib-only metrics: counters, gauges, histograms, span accounting.

The registry is built for the hot path of a debugging service: the
algorithm threads that produce events must never contend on one global
lock per observation.  Each thread therefore accumulates into its own
*shard* (a ``threading.local`` slot); the only synchronized operations
are shard registration (once per thread) and :meth:`MetricsRegistry.
snapshot`, which merges the shards into one consistent-enough view.
Counters are summed across shards, histograms merge their count/sum/
min/max plus a bounded sample window (enough for p50/p95), and gauges
are last-write-wins under a lock (they are set rarely).

:class:`EventMetrics` adapts the registry to the neutral
``(kind, payload)`` progress hook shape used everywhere below the
service: it forwards every event unchanged and, on the side, counts
events per kind and accumulates ``span`` payloads (``{"name",
"seconds"}``) into per-job totals -- the payload of the job-end
``metrics_snapshot`` event.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

__all__ = ["EventMetrics", "MetricsRegistry", "percentile"]

#: Per-shard histogram sample window.  Old samples are overwritten in
#: ring order, so long-running services keep a recent, bounded view.
SAMPLE_WINDOW = 2048


def percentile(samples, q: float) -> float | None:
    """Linear-interpolated q-quantile (q in [0, 1]) of a sample list."""
    if not samples:
        return None
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


class _HistogramShard:
    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.samples) < SAMPLE_WINDOW:
            self.samples.append(value)
        else:  # ring overwrite: keep a recent bounded window
            self.samples[self.count % SAMPLE_WINDOW] = value


class _Shard:
    """One thread's private accumulation state."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, _HistogramShard] = {}


class MetricsRegistry:
    """Process-wide metrics with per-thread accumulation.

    ``counter``/``observe`` touch only the calling thread's shard (no
    lock on the hot path beyond first-use registration); ``gauge`` and
    ``snapshot`` synchronize.  Snapshots are merge-consistent rather
    than point-in-time atomic: a concurrent increment may or may not be
    visible, which is the usual (and sufficient) metrics contract.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: list[_Shard] = []
        self._gauges: dict[str, float] = {}

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    # -- Recording -----------------------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        counters = self._shard().counters
        counters[name] = counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (e.g. a span duration)."""
        histograms = self._shard().histograms
        shard = histograms.get(name)
        if shard is None:
            shard = histograms[name] = _HistogramShard()
        shard.observe(float(value))

    # -- Export --------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Merged view of every shard, JSON-friendly.

        Shape::

            {"counters": {name: total},
             "gauges": {name: value},
             "histograms": {name: {"count", "sum", "min", "max",
                                   "p50", "p95"}}}
        """
        with self._lock:
            shards = list(self._shards)
            gauges = dict(self._gauges)
        counters: dict[str, float] = {}
        merged: dict[str, list] = {}  # name -> [count, sum, min, max, samples]
        for shard in shards:
            for name, value in list(shard.counters.items()):
                counters[name] = counters.get(name, 0.0) + value
            for name, hist in list(shard.histograms.items()):
                entry = merged.setdefault(name, [0, 0.0, None, None, []])
                entry[0] += hist.count
                entry[1] += hist.total
                for index, pick in ((2, min), (3, max)):
                    bound = (hist.minimum, hist.maximum)[index - 2]
                    if bound is not None:
                        entry[index] = (
                            bound
                            if entry[index] is None
                            else pick(entry[index], bound)
                        )
                entry[4].extend(hist.samples)
        histograms = {
            name: {
                "count": count,
                "sum": total,
                "min": minimum,
                "max": maximum,
                "p50": percentile(samples, 0.50),
                "p95": percentile(samples, 0.95),
            }
            for name, (count, total, minimum, maximum, samples) in sorted(
                merged.items()
            )
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": histograms,
        }


class EventMetrics:
    """Progress-hook adapter: forward events, accumulate metrics.

    Wraps a neutral ``(kind, payload)`` publisher (typically
    ``EventBus.publisher(job_id)``) so everything the job emits is both
    delivered unchanged *and* folded into:

    * the shared :class:`MetricsRegistry` (``events.<kind>`` counters,
      ``span.<name>.seconds`` histograms), and
    * a per-job tally of event counts and span totals --
      :meth:`snapshot_payload` is the payload of the job-end
      ``metrics_snapshot`` event, which makes per-job wall-time
      breakdowns queryable from the durable log alone.
    """

    def __init__(self, publish, registry: MetricsRegistry | None = None):
        self._publish = publish
        self._registry = registry
        self._lock = threading.Lock()
        self._event_counts: dict[str, int] = {}
        self._spans: dict[str, list] = {}  # name -> [count, total_seconds]

    def __call__(
        self, kind: str, payload: Mapping[str, object] | None = None
    ) -> None:
        kind = str(getattr(kind, "value", kind))
        payload = dict(payload or {})
        span_name = None
        seconds = 0.0
        if kind == "span":
            span_name = str(payload.get("name", "?"))
            try:
                seconds = float(payload.get("seconds", 0.0))
            except (TypeError, ValueError):
                seconds = 0.0
        with self._lock:
            self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
            if span_name is not None:
                entry = self._spans.setdefault(span_name, [0, 0.0])
                entry[0] += 1
                entry[1] += seconds
        if self._registry is not None:
            self._registry.counter(f"events.{kind}")
            if span_name is not None:
                self._registry.observe(f"span.{span_name}.seconds", seconds)
        self._publish(kind, payload)

    def snapshot_payload(self) -> dict[str, dict]:
        """The per-job tally, shaped for the ``metrics_snapshot`` event."""
        with self._lock:
            return {
                "events": dict(sorted(self._event_counts.items())),
                "spans": {
                    name: {"count": count, "total_seconds": total}
                    for name, (count, total) in sorted(self._spans.items())
                },
            }
