"""End-to-end trace contexts for causal correlation across processes.

A :class:`TraceContext` is minted once per job at the submission edge
(HTTP ``/submit``, ``repro serve``, ``repro debug``) and then *carried*,
never re-minted: through :class:`~repro.service.jobs.JobSpec`, the
durable queue's payload codec, the scheduler's slices, the
``ProcessPool`` worker pipe, and the remote-fleet wire protocol.  Every
event published for the job is stamped with the context's three fields
(``trace_id``, ``span_id``, ``parent_id``), so ``repro query trace
<trace_id>`` can rebuild one causal tree spanning the service process,
pool workers, and fleet workers on other machines.

Layering note: ``exec`` sits *below* ``obs`` and therefore cannot
import this class.  On the wire and in the pool pipe a context travels
as the plain dict produced by :meth:`TraceContext.to_payload`; ``exec``
code treats it as an opaque mapping and derives child spans with
:func:`child_trace_payload`'s logic inlined locally (a dict in, a dict
out -- no type dependency).
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass

__all__ = ["TraceContext", "child_trace_payload"]

_TRACE_KEYS = ("trace_id", "span_id", "parent_id")


def _fresh_id(bits: int = 16) -> str:
    return uuid.uuid4().hex[:bits]


@dataclass(frozen=True)
class TraceContext:
    """One node of a causal tree: a trace-wide id plus this span's edge.

    ``trace_id`` names the whole tree (stable across every process a
    job touches); ``span_id`` names this node; ``parent_id`` is the
    ``span_id`` of the node that caused it (None at the root).
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a root context (done exactly once, at submission)."""
        return cls(trace_id=_fresh_id(32), span_id=_fresh_id())

    def child(self) -> "TraceContext":
        """Derive the context for work this span causes (a dispatch, a
        worker execution): same trace, fresh span, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_fresh_id(),
            parent_id=self.span_id,
        )

    def to_payload(self) -> dict:
        """The wire form: a plain JSON-safe dict (``parent_id`` omitted
        at the root to keep stamped events minimal)."""
        payload = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        return payload

    @classmethod
    def from_payload(cls, payload: dict | None) -> "TraceContext | None":
        """Rehydrate from the wire form; None (or junk) maps to None so
        untraced legacy payloads flow through unchanged."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        parent = payload.get("parent_id")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent if isinstance(parent, str) else None,
        )


def child_trace_payload(trace: dict | None) -> dict | None:
    """Dict-level :meth:`TraceContext.child` for payloads already on the
    wire (the form ``exec`` code mirrors locally)."""
    context = TraceContext.from_payload(trace)
    if context is None:
        return None
    return context.child().to_payload()
