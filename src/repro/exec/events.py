"""Job event subsystem: typed, ordered, loss-free progress streams.

A debugging job used to be opaque between ``submit`` and ``result``.
The :class:`EventBus` gives every job an append-only *event log*:
sessions publish ``budget_spent`` after each charged execution,
strategies publish ``round_started`` / ``suspect_confirmed`` /
``partial_causes`` through the neutral ``DebugSession.progress``
callable, and the service publishes the lifecycle transitions
(``submitted`` / ``started`` / ``finished``).

Ordering and completeness guarantees (tested in ``tests/test_exec.py``):

* **Per-job total order.**  Events of one job carry consecutive ``seq``
  numbers assigned under the bus lock; two events of the same job are
  never observed reordered.
* **Prefix-complete replay.**  :meth:`EventBus.events` iterates the
  job's log from the beginning no matter when it is called -- a
  subscriber that attaches after the job finished still sees every
  event exactly once.
* **Terminal close.**  The job's terminal event (``close=True``,
  published on success, failure, *and* cancellation) is the last event
  of its log; iterators drain the log and then stop.  No event is lost
  on completion, cancellation, or failure.
* Cross-job interleaving in :meth:`stream` follows publish order (one
  bus-wide monotonic order exists because publishing holds the lock),
  but only per-job order is part of the contract.

The bus is deliberately dependency-free (stdlib only at runtime) so the
service, the CLI, and bare sessions can all share it.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

__all__ = ["EventBus", "EventKind", "JobEvent"]


class EventKind(str, enum.Enum):
    """Well-known event kinds (the bus accepts any string kind).

    Inherits ``str`` so publishers may pass either the enum member or
    its value; stored events always carry the plain string.
    """

    SUBMITTED = "submitted"
    STARTED = "started"
    ROUND_STARTED = "round_started"
    SUSPECT_CONFIRMED = "suspect_confirmed"
    SUSPECT_REFUTED = "suspect_refuted"
    PARTIAL_CAUSES = "partial_causes"
    BUDGET_SPENT = "budget_spent"
    EXPLORATION = "exploration"
    FINISHED = "finished"
    # Fleet membership lifecycle (published by the remote pool under
    # its bound fleet job id; see repro.exec.remote.pool).
    WORKER_JOINED = "worker_joined"
    WORKER_SUSPECT = "worker_suspect"
    WORKER_EVICTED = "worker_evicted"
    WORKER_REJOINED = "worker_rejoined"
    WORKER_LEFT = "worker_left"
    WORKER_LOST = "worker_lost"
    RUN_REDISPATCHED = "run_redispatched"


@dataclass(frozen=True)
class JobEvent:
    """One immutable entry of a job's event log."""

    job_id: str
    kind: str
    seq: int
    timestamp: float
    payload: Mapping[str, object] = field(default_factory=dict)
    terminal: bool = False
    #: ``time.monotonic()`` at publish -- wall clocks can step backwards
    #: (NTP), so durable logs carry both clocks and queries over span
    #: durations use this one.
    monotonic: float = 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form (used by ``repro serve --events jsonl``)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "terminal": self.terminal,
            "data": dict(self.payload),
        }


class _JobLog:
    """Append-only event list + closed flag for one job."""

    __slots__ = ("events", "closed")

    def __init__(self) -> None:
        self.events: list[JobEvent] = []
        self.closed = False


#: Sentinel pushed to firehose queues on bus shutdown.
_STREAM_END = object()


class EventBus:
    """Publish/subscribe hub for job progress events.

    One bus serves a whole service: logs are keyed by ``job_id``.  Logs
    are retained until :meth:`discard` (mirroring the service's job
    table), so late subscribers replay complete streams.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._logs: dict[str, _JobLog] = {}
        #: job_id -> next seq of a *closed* log forgotten by ``discard``.
        #: Readers starting at or past that point return immediately
        #: instead of waiting for a terminal event that already passed.
        self._retired: dict[str, int] = {}
        self._streams: list[queue.SimpleQueue] = []
        self._shutdown = False
        #: job_id -> trace-context fields merged into every published
        #: payload (see ``bind_context``).  Plain dicts, not
        #: ``obs.trace.TraceContext`` -- exec sits below obs.
        self._contexts: dict[str, dict] = {}

    # -- Trace context -------------------------------------------------------
    def bind_context(self, job_id: str, context: Mapping[str, object] | None) -> None:
        """Attach trace fields stamped onto every event of ``job_id``.

        The fields merge via ``setdefault``: an event whose payload
        already carries its own ``trace_id``/``span_id`` (a child span
        published by a dispatcher or a remote worker) wins over the
        bound job-level context.  Binding ``None`` clears the context.
        """
        with self._changed:
            if context is None:
                self._contexts.pop(job_id, None)
            else:
                self._contexts[job_id] = dict(context)

    def bound_context(self, job_id: str) -> dict | None:
        """The context bound to ``job_id`` (a copy), or None."""
        with self._changed:
            context = self._contexts.get(job_id)
            return dict(context) if context is not None else None

    # -- Publishing ----------------------------------------------------------
    def publish(
        self,
        job_id: str,
        kind: str,
        payload: Mapping[str, object] | None = None,
        *,
        close: bool = False,
    ) -> JobEvent:
        """Append one event to ``job_id``'s log (atomically, in order).

        ``close=True`` marks the event terminal: it is the last event
        the log will accept, and iterators end after delivering it.
        Publishing to an already-closed log raises ``ValueError`` --
        losing an event silently would break the completeness guarantee,
        so late publishers must be a programming error.
        """
        kind = getattr(kind, "value", kind)
        with self._changed:
            log = self._logs.get(job_id)
            if log is None:
                log = self._logs[job_id] = _JobLog()
                # A reused job id (resubmission after discard) starts a
                # fresh log; the old tombstone no longer applies.
                self._retired.pop(job_id, None)
            if log.closed:
                raise ValueError(
                    f"event log for job {job_id!r} is closed "
                    f"(late {kind!r} event)"
                )
            merged = dict(payload or {})
            context = self._contexts.get(job_id)
            if context is not None:
                for key, value in context.items():
                    merged.setdefault(key, value)
            event = JobEvent(
                job_id=job_id,
                kind=str(kind),
                seq=len(log.events),
                timestamp=time.time(),
                payload=merged,
                terminal=close,
                monotonic=time.monotonic(),
            )
            log.events.append(event)
            if close:
                log.closed = True
            # Persistence hook runs under the lock so a durable sink's
            # queue order always matches seq order (subclasses enqueue
            # here; actual I/O happens on the sink's flusher thread).
            self._persist(event)
            for subscriber in self._streams:
                subscriber.put(event)
            self._changed.notify_all()
        return event

    def _persist(self, event: JobEvent) -> None:
        """Write-through hook (no-op here; see ``repro.obs.sink``)."""

    def publisher(self, job_id: str):
        """A ``(kind, payload)`` callable bound to one job.

        This is the shape of the neutral ``DebugSession.progress`` hook:
        the core layer calls it without importing this package.  Events
        arriving after the job's log closed are dropped (the session's
        last in-flight executions may complete after the terminal event
        is published on an abnormal teardown; their outcomes are still
        cached, but the closed stream stays closed).
        """

        def publish(kind: str, payload: Mapping[str, object] | None = None):
            try:
                self.publish(job_id, kind, payload)
            except (ValueError, RuntimeError):
                pass

        return publish

    # -- Consumption ---------------------------------------------------------
    def log(self, job_id: str) -> list[JobEvent]:
        """Snapshot of the job's events published so far."""
        with self._lock:
            log = self._logs.get(job_id)
            return list(log.events) if log is not None else []

    def closed(self, job_id: str) -> bool:
        """True once the job's terminal event was published."""
        with self._lock:
            log = self._logs.get(job_id)
            return log is not None and log.closed

    def events(
        self, job_id: str, start: int = 0, timeout: float | None = None
    ) -> Iterator[JobEvent]:
        """Iterate the job's events from ``seq >= start`` until terminal.

        Blocks for future events while the log is open; ends after the
        terminal event (or immediately drains a closed log).  With a
        ``timeout``, waiting longer than that between events raises
        ``TimeoutError`` -- iterators must not hang forever on a job
        that never closes its log.
        """
        position = start
        while True:
            with self._changed:
                log = self._logs.get(job_id)
                if log is None and job_id in self._retired:
                    # The closed log was discarded: no event at or past
                    # ``position`` will ever arrive, so return instead
                    # of waiting for a terminal that already passed.
                    # (The durable bus replays discarded prefixes from
                    # the store before reaching this path.)
                    return
                while log is None or (
                    position >= len(log.events) and not log.closed
                ):
                    if not self._changed.wait(timeout):
                        raise TimeoutError(
                            f"no event from job {job_id!r} within {timeout}s"
                        )
                    log = self._logs.get(job_id)
                if position >= len(log.events) and log.closed:
                    return
                batch = log.events[position:]
                position += len(batch)
            for event in batch:
                yield event
                if event.terminal:
                    return

    def stream(self) -> Iterator[JobEvent]:
        """Firehose: every event of every job, from subscription on.

        Unlike :meth:`events` this does not replay history; it yields
        events published after the *call* (subscription is eager, so
        nothing published between this call and the first ``next`` is
        lost), across all jobs, in publish order, until
        :meth:`shutdown`.  Callers typically break out once they have
        seen the terminal events they care about.
        """
        subscriber: queue.SimpleQueue = queue.SimpleQueue()
        with self._lock:
            if self._shutdown:
                return iter(())
            self._streams.append(subscriber)

        def iterate() -> Iterator[JobEvent]:
            try:
                while True:
                    event = subscriber.get()
                    if event is _STREAM_END:
                        return
                    yield event
            finally:
                with self._lock:
                    if subscriber in self._streams:
                        self._streams.remove(subscriber)

        return iterate()

    # -- Lifecycle -----------------------------------------------------------
    def discard(self, job_id: str) -> None:
        """Forget a job's log (long-lived services bound their memory).

        A closed log leaves a tombstone with its end sequence so late
        ``events()`` readers return immediately rather than blocking on
        a terminal event that was delivered before the discard.
        """
        with self._changed:
            log = self._logs.pop(job_id, None)
            self._contexts.pop(job_id, None)
            if log is not None and log.closed:
                self._retired[job_id] = len(log.events)
            self._changed.notify_all()

    def shutdown(self) -> None:
        """End every firehose stream and refuse new subscriptions.

        Per-job logs keep accepting publishes and replaying -- jobs
        still tearing down after a service shutdown must land their
        terminal events, and late ``events()`` readers must still see
        complete streams.  Only the live firehoses (which would
        otherwise block forever with nobody left to publish) are ended.
        """
        with self._changed:
            self._shutdown = True
            for subscriber in self._streams:
                subscriber.put(_STREAM_END)
            self._changed.notify_all()
