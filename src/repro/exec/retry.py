"""Unified retry policy for the local and remote execution pools.

PR 5's :class:`~repro.exec.pool.ProcessPool` grew two ad-hoc retry
integers (``crash_retries`` / ``timeout_retries``) with implicit
zero-delay retries.  The remote fleet needs the same fault taxonomy but
with *spaced* retries: immediately re-dispatching into a network blip
just loses again, so distributed-systems practice is exponential
backoff with jitter (decorrelating the retry storms of many concurrent
callers).  :class:`RetryPolicy` is the one shared description --
per-fault-class attempt budgets plus a backoff curve -- and
:class:`RetryState` is one run's mutable consumption of it.

Defaults preserve the historical ``ProcessPool`` behavior exactly:
one crash retry, zero timeout retries, zero delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "RetryState"]

#: Fault classes a policy budgets separately.  ``crash`` covers every
#: "the run's worker went away" fault (process death, connection loss,
#: heartbeat eviction); ``timeout`` covers runs that exceeded their
#: wall-clock cap (assumed deterministic hangs by default, hence the
#: zero default budget).
FAULT_KINDS = ("crash", "timeout")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how fast, a faulted run is retried.

    Args:
        crash_retries: retry budget for crash-class faults (worker
            death, connection loss, eviction).
        timeout_retries: retry budget for timed-out runs.
        base_delay: delay before the first retry, seconds.  0 (the
            default) retries immediately -- the historical behavior.
        factor: multiplier applied per successive retry of the same
            fault class (exponential backoff).
        max_delay: cap on any single computed delay.
        jitter: fraction of the computed delay added uniformly at
            random (``delay * uniform(0, jitter)``), decorrelating
            concurrent retriers.  0 disables.
        seed: optional RNG seed for deterministic jitter in tests.
    """

    crash_retries: int = 1
    timeout_retries: int = 0
    base_delay: float = 0.0
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.crash_retries < 0 or self.timeout_retries < 0:
            raise ValueError("retry counts must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def budget(self, kind: str) -> int:
        if kind == "crash":
            return self.crash_retries
        if kind == "timeout":
            return self.timeout_retries
        raise ValueError(f"unknown fault kind {kind!r}")

    def delay_for(self, kind: str, attempt: int, rng: random.Random) -> float:
        """The backoff delay before retry number ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * (self.factor**attempt))
        if self.jitter and delay:
            delay += rng.uniform(0.0, delay * self.jitter)
        return delay

    def start(self) -> "RetryState":
        """A fresh per-run consumption state of this policy."""
        return RetryState(self)


class RetryState:
    """One run's retry bookkeeping: budgets left and backoff position.

    ``next_delay(kind)`` consumes one retry of that fault class and
    returns the seconds to sleep before it, or ``None`` when the class's
    budget is exhausted (the caller then propagates the fault).
    """

    __slots__ = ("policy", "_left", "_used", "_rng")

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self._left = {kind: policy.budget(kind) for kind in FAULT_KINDS}
        self._used = {kind: 0 for kind in FAULT_KINDS}
        self._rng = random.Random(policy.seed)

    def next_delay(self, kind: str) -> float | None:
        if self._left[kind] <= 0:
            return None
        self._left[kind] -= 1
        attempt = self._used[kind]
        self._used[kind] += 1
        return self.policy.delay_for(kind, attempt, self._rng)

    @property
    def retries_used(self) -> int:
        return sum(self._used.values())
