"""Fleet wire protocol: length-prefixed JSON frames over stdlib sockets.

One frame is a 4-byte big-endian payload length followed by a UTF-8
JSON object carrying a ``type`` field.  JSON (not pickle) because the
two endpoints trust each other's *work*, not each other's *bytecode*:
a hostile or stale worker can at worst return a wrong outcome, never
execute arbitrary objects in the coordinator.

Message vocabulary (see ``docs/architecture.md`` for the full table):

========== =============== ====================================================
direction  type            payload
========== =============== ====================================================
w -> c     ``hello``       name, pid, host, protocol version
c -> w     ``welcome``     accepted name, heartbeat_interval
c -> w     ``reject``      reason (protocol mismatch, shutdown)
c -> w     ``run``         run_id, spec (wire form), workflow, instance,
                           optional trace (a trace-context dict)
w -> c     ``result``      run_id, status ok|error, outcome, cost, from_store,
                           detail, optional span (worker-minted child
                           trace + worker/host/pid) when the run was traced
w -> c     ``heartbeat``   name, inflight run_id or null, runner stats
w -> c     ``store``       request_id + a provenance point-op request
c -> w     ``store_reply`` request_id + the point-op reply
w -> c     ``leave``       name (graceful departure)
c -> w     ``bye``         coordinator shutdown
========== =============== ====================================================

Every message is *idempotent or deduplicated* at the receiver --
``hello`` re-registers, ``heartbeat`` only refreshes a timestamp,
duplicate ``run`` frames re-send the memoized result, duplicate
``result`` frames are dropped against the run-id tombstone set, and
``upsert`` converges by determinism -- so the fault layer
(:mod:`repro.exec.remote.faults`) may drop, delay, duplicate, or
reorder frames without violating protocol state.

:class:`Connection` wraps a connected socket with a send lock (many
threads send; exactly one thread receives) and EOF-as-None reads.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

from ...provenance.record import decode_value, encode_value

__all__ = [
    "Connection",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "connect",
    "decode_values",
    "encode_values",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame; a longer header is a desynced/garbage peer.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent a malformed or oversized frame."""


def encode_values(values) -> dict[str, str]:
    """Instance values -> typed-JSON scalar strings (wire-safe)."""
    return {name: encode_value(value) for name, value in dict(values).items()}


def decode_values(payload) -> dict[str, object]:
    """Inverse of :func:`encode_values`."""
    return {name: decode_value(text) for name, text in dict(payload).items()}


class Connection:
    """A framed-message view of one connected socket.

    Thread contract: any number of threads may :meth:`send` (serialized
    by an internal lock); exactly one thread calls :meth:`recv`.
    :meth:`close` may be called from any thread and unblocks a pending
    ``recv`` with ``None``.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets (socketpair)
            pass
        try:
            self.peer = sock.getpeername()
        except OSError:  # pragma: no cover
            self.peer = None

    def send(self, message: dict) -> None:
        """Frame and send one message; raises OSError when the peer is gone."""
        data = json.dumps(message, separators=(",", ":")).encode("utf-8")
        frame = _HEADER.pack(len(data)) + data
        with self._send_lock:
            if self._closed:
                raise OSError("connection closed")
            self._sock.sendall(frame)

    def recv(self) -> dict | None:
        """Receive one message; None on EOF or a closed/reset connection."""
        header = self._recv_exact(_HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME}")
        payload = self._recv_exact(length)
        if payload is None:
            return None
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"undecodable frame: {error}") from None
        if not isinstance(message, dict):
            raise ProtocolError(f"frame is {type(message).__name__}, not object")
        return message

    def _recv_exact(self, count: int) -> bytes | None:
        chunks = bytearray()
        while len(chunks) < count:
            try:
                chunk = self._sock.recv(count - len(chunks))
            except OSError:
                return None  # closed under us / reset: both mean peer gone
            if not chunk:
                return None
            chunks.extend(chunk)
        return bytes(chunks)

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(host: str, port: int, timeout: float = 10.0) -> Connection:
    """Dial a coordinator and return the framed connection."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)  # blocking from here on; close() unblocks
    return Connection(sock)
