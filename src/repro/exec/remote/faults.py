"""Network fault injection for the fleet protocol.

PR 5's fault harness injected *process* faults (``crash_on`` /
``hang_on`` in :mod:`repro.exec.synthetic`).  The distributed tier adds
the message-level failure modes of a real network, applied at the
:class:`~repro.exec.remote.protocol.Connection` seam so neither the
pool nor the worker contains a line of test-only code:

* **drop** -- the frame silently vanishes (lossy link, partition edge);
* **delay** -- the frame arrives late (congestion), implemented with a
  timer thread so later frames can overtake it (which also produces
  genuine reordering);
* **duplicate** -- the frame arrives twice (retransmission storms);
* **reorder** -- the frame is held back and sent after the next one;
* **partition / heal** -- every frame is dropped until healed (the
  asymmetric half of a network partition); and
* **kill** -- the underlying socket is torn down mid-conversation
  (mid-run worker death at the transport level).

Wrap either endpoint's connection (``FleetWorker(connection_wrapper=...)``
or ``RemoteWorkerPool(connection_filter=...)``); the protocol's
idempotence contract (see :mod:`repro.exec.remote.protocol`) is what
the chaos suite then gets to falsify.
"""

from __future__ import annotations

import random
import threading

from .protocol import Connection

__all__ = ["FaultPlan", "FaultyConnection"]

#: Handshake frames are exempt by default: a fleet that cannot ever say
#: hello is not a robustness scenario, it is a dead network.
_DEFAULT_SPARED = frozenset({"hello", "welcome", "reject"})


class FaultPlan:
    """Probabilities (per outbound frame) of each injected fault.

    Args:
        drop / delay / duplicate / reorder: independent probabilities,
            checked in that order (first match applies).
        delay_seconds: how late a delayed frame is sent.
        kinds: message types subject to faults; None means every type
            except ``spared`` ones.
        spared: message types never faulted (default: the handshake).
        max_faults: optional total cap, after which the plan passes
            everything through (keeps adversarial runs terminating).
        seed: RNG seed; the draw sequence is deterministic per plan
            (though thread interleaving may vary which frame draws).
    """

    def __init__(
        self,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay_seconds: float = 0.05,
        kinds: frozenset[str] | None = None,
        spared: frozenset[str] = _DEFAULT_SPARED,
        max_faults: int | None = None,
        seed: int = 0,
    ):
        self.drop = drop
        self.delay = delay
        self.duplicate = duplicate
        self.reorder = reorder
        self.delay_seconds = delay_seconds
        self.kinds = kinds
        self.spared = spared
        self.max_faults = max_faults
        self.seed = seed

    def applies_to(self, kind: str) -> bool:
        if kind in self.spared:
            return False
        return self.kinds is None or kind in self.kinds


class FaultyConnection:
    """A :class:`Connection` whose *sends* misbehave per a plan.

    Receives pass through untouched -- wrapping one endpoint's sends
    already covers both directions of any scenario (wrap the other
    endpoint for the symmetric half).  Fault counters are exposed in
    :attr:`faults` for assertions.
    """

    def __init__(self, conn: Connection, plan: FaultPlan):
        self._conn = conn
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._held: dict | None = None  # reorder buffer (one frame deep)
        self._partitioned = False
        self.faults = {
            "dropped": 0,
            "delayed": 0,
            "duplicated": 0,
            "reordered": 0,
            "partition_dropped": 0,
        }
        self.peer = conn.peer

    # -- Scenario controls ---------------------------------------------------
    def partition(self) -> None:
        """Black-hole every subsequent send until :meth:`heal`."""
        with self._lock:
            self._partitioned = True

    def heal(self) -> None:
        with self._lock:
            self._partitioned = False

    def kill(self) -> None:
        """Tear the transport down abruptly (mid-run connection death)."""
        self._conn.close()

    # -- Connection surface --------------------------------------------------
    def send(self, message: dict) -> None:
        kind = str(message.get("type", ""))
        with self._lock:
            if self._partitioned and kind not in self._plan.spared:
                self.faults["partition_dropped"] += 1
                return
            if not self._plan.applies_to(kind) or self._exhausted():
                fault = None
            else:
                fault = self._draw()
            if fault == "drop":
                self.faults["dropped"] += 1
                return
            if fault == "reorder":
                if self._held is None:
                    self._held = message
                    self.faults["reordered"] += 1
                    return
                fault = None  # buffer full: pass through, flush below
            held, self._held = self._held, None
        if fault == "delay":
            self.faults["delayed"] += 1
            timer = threading.Timer(
                self._plan.delay_seconds, self._send_quietly, [message]
            )
            timer.daemon = True
            timer.start()
        else:
            self._conn.send(message)
            if fault == "duplicate":
                self.faults["duplicated"] += 1
                self._send_quietly(message)
        if held is not None:
            self._send_quietly(held)

    def _draw(self) -> str | None:
        roll = self._rng.random()
        for name, probability in (
            ("drop", self._plan.drop),
            ("delay", self._plan.delay),
            ("duplicate", self._plan.duplicate),
            ("reorder", self._plan.reorder),
        ):
            if roll < probability:
                return name
            roll -= probability
        return None

    def _exhausted(self) -> bool:
        cap = self._plan.max_faults
        return cap is not None and sum(self.faults.values()) >= cap

    def _send_quietly(self, message: dict) -> None:
        try:
            self._conn.send(message)
        except OSError:
            pass  # connection died meanwhile; the fault stands

    def recv(self) -> dict | None:
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "FaultyConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
