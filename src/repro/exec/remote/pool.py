"""RemoteWorkerPool: the fleet coordinator behind the ProcessPool surface.

The coordinator listens on a stdlib TCP socket; :class:`FleetWorker`\\ s
dial in, say ``hello``, and become dispatch targets.  Callers see the
exact :class:`~repro.exec.pool.ProcessPool` surface -- ``run()``, the
``executor()`` / ``backend()`` / ``session()`` adapter trio, ``stats()``,
``shutdown()`` -- so a :class:`~repro.service.service.DebugService`
built on a fleet is a one-argument change.

Robustness model (the tentpole of this subsystem):

* **Liveness via heartbeats.**  Any frame refreshes a worker's
  ``last_seen``; the monitor marks a worker *suspect* after
  ``suspect_after`` seconds of silence and *evicts* it after
  ``evict_after``.  Eviction fails the worker's in-flight run with an
  internal worker-lost fault, which the caller's
  :class:`~repro.exec.retry.RetryPolicy` turns into a re-dispatch
  (exponential backoff + jitter) on another worker -- or locally.
* **Consensus-free elastic membership.**  Membership is coordinator-
  local soft state (the reconfiguration stance of Jehl et al.: no
  quorum is consulted to add or remove a worker).  Workers join and
  leave mid-job; a worker evicted by mistake (a healed partition)
  rejoins the moment any frame arrives -- same connection or a redial
  under the same name, latest registration wins.  No run is lost
  (eviction re-dispatches it) and none is double-charged (the session
  charges once per ``evaluate``; duplicate results are dropped against
  run-id tombstones, and a re-executed run converges through the
  provenance dedup, exactly as PR 5's crash story).
* **Graceful degradation.**  When the fleet drains (zero active or
  suspect members), runs execute locally through the same
  :class:`~repro.exec.remote.worker.SpecRunner` + provenance-dedup
  path, up to ``fallback_limit`` concurrent slots (the lever
  :meth:`scale_to` and the adaptive sizer adjust).

The coordinator is also the fleet's provenance server: worker ``store``
frames are answered from the local store (SQLite or in-memory) under
one lock -- the network-transport promotion of the shared-file dedup.
"""

from __future__ import annotations

import itertools
import secrets
import socket
import threading
import time
from collections.abc import Callable

from ...concurrency.scheduler import SharedScheduler
from ...core.session import DebugSession
from ...core.types import Instance, Outcome
from ...provenance.remote import RemoteProvenanceStore, handle_store_request
from ..pool import (
    PoolShutDown,
    ProcessExecutor,
    ProcessPoolBackend,
    RemoteRunError,
    RunTimedOut,
    WorkerCrashed,
    _worker_span,
)
from ..retry import RetryPolicy
from ..spec import ExecutorSpec
from . import protocol
from .worker import SpecRunner

__all__ = ["RemoteWorkerPool", "WorkerLost"]

_LOCAL = object()  # acquire() verdict: run on the local fallback path


class WorkerLost(RuntimeError):
    """Internal fault: the run's worker died, vanished, or was evicted.

    Retried under the crash budget; surfaces as
    :class:`~repro.exec.pool.WorkerCrashed` when that is exhausted, so
    callers (and the session's refund path) see the same exception
    taxonomy as the local pool.
    """


class _PendingRun:
    """Coordinator-side state of one dispatched run awaiting its result."""

    __slots__ = (
        "run_id",
        "worker_name",
        "done",
        "completed",
        "outcome",
        "cost",
        "from_store",
        "span",
        "error_kind",
        "detail",
    )

    def __init__(self, run_id: str, worker_name: str):
        self.run_id = run_id
        self.worker_name = worker_name
        self.done = threading.Event()
        self.completed = False
        self.outcome: str | None = None
        self.cost = 0.0
        self.from_store = False
        self.span: dict | None = None
        self.error_kind: str | None = None  # None | "lost" | "error"
        self.detail = ""

    # All completion paths run under the pool lock; first one wins.
    def complete_ok(
        self,
        outcome: str,
        cost: float,
        from_store: bool,
        span: dict | None = None,
    ) -> None:
        if self.completed:
            return
        self.completed = True
        self.outcome = outcome
        self.cost = cost
        self.from_store = from_store
        self.span = span if isinstance(span, dict) else None
        self.done.set()

    def complete_lost(self, detail: str) -> None:
        if self.completed:
            return
        self.completed = True
        self.error_kind = "lost"
        self.detail = detail
        self.done.set()

    def complete_error(self, detail: str) -> None:
        if self.completed:
            return
        self.completed = True
        self.error_kind = "error"
        self.detail = detail
        self.done.set()


class _RemoteWorker:
    """Coordinator-side handle of one fleet member."""

    __slots__ = (
        "name",
        "conn",
        "pid",
        "host",
        "state",
        "last_seen",
        "inflight",
        "runs",
        "joined_at",
        "remote_stats",
    )

    def __init__(self, name: str, conn, pid: int, host: str):
        self.name = name
        self.conn = conn
        self.pid = pid
        self.host = host
        self.state = "active"  # active | suspect | evicted | left | gone
        self.last_seen = time.monotonic()
        self.inflight: _PendingRun | None = None
        self.runs = 0
        self.joined_at = time.time()
        self.remote_stats: dict = {}


class RemoteWorkerPool:
    """Fault-tolerant fleet coordinator with the ProcessPool surface.

    Args:
        host / port: listening address; port 0 picks a free one (see
            :attr:`address` / :attr:`endpoint`).
        heartbeat_interval: cadence announced to joining workers.
        suspect_after: silence before a worker turns *suspect*
            (default ``2.5 x heartbeat_interval``).
        evict_after: silence before eviction re-dispatches the worker's
            in-flight run (default ``5 x heartbeat_interval``) -- the
            configurable grace of the liveness story.
        run_timeout: default per-run wall-clock cap; a timed-out run
            evicts its worker (hung pipeline) and retries under the
            timeout budget.
        retry_policy: shared :class:`~repro.exec.retry.RetryPolicy`.
            The fleet default spaces re-dispatches out with jittered
            exponential backoff (unlike the local pool's zero-delay
            default) because the fault may be the *network's*, and
            hammering it correlates retries across callers.
        store: provenance dedup tier -- a
            :class:`~repro.provenance.store.ProvenanceStore` instance
            or an SQLite path.  Served to workers over the wire and
            consulted by the local fallback path.
        local_fallback: execute in-process when the fleet is empty
            (True) instead of waiting for a member.
        fallback_limit: concurrent local-fallback slots (the
            :meth:`scale_to` lever).
        max_dispatch: sizing of the batch scheduler behind
            :meth:`backend` (the parallel fan-out width).
        acquire_timeout: cap on waiting for dispatch capacity.
        connection_filter: fault-injection seam -- wraps each accepted
            connection (see :mod:`repro.exec.remote.faults`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 1.0,
        suspect_after: float | None = None,
        evict_after: float | None = None,
        run_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        store=None,
        local_fallback: bool = True,
        fallback_limit: int = 4,
        max_dispatch: int = 8,
        acquire_timeout: float = 300.0,
        connection_filter: Callable | None = None,
    ):
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = (
            suspect_after
            if suspect_after is not None
            else heartbeat_interval * 2.5
        )
        self.evict_after = (
            evict_after if evict_after is not None else heartbeat_interval * 5.0
        )
        if self.evict_after < self.suspect_after:
            raise ValueError("evict_after must be >= suspect_after")
        self.run_timeout = run_timeout
        self.retry_policy = retry_policy or RetryPolicy(
            crash_retries=2,
            timeout_retries=1,
            base_delay=0.02,
            factor=2.0,
            max_delay=1.0,
            jitter=0.5,
        )
        self.local_fallback = local_fallback
        self.max_workers = max_dispatch  # adapter/scheduler sizing parity
        self._acquire_timeout = acquire_timeout
        self._connection_filter = connection_filter
        if isinstance(store, str):
            from ...provenance.store import SQLiteProvenanceStore

            store = SQLiteProvenanceStore(store)
        self._store = store
        self._store_lock = threading.Lock()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: dict[str, _RemoteWorker] = {}
        #: run_id -> awaited run.  A result whose run_id is absent here
        #: (late, duplicated, or already answered) is dropped -- the
        #: exactly-once gate of the protocol.
        self._pending: dict[str, _PendingRun] = {}
        self._fallback_limit = max(0, fallback_limit)
        self._local_running = 0
        self._shutdown = False
        self._run_prefix = secrets.token_hex(3)
        self._run_seq = itertools.count(1)
        self._name_seq = itertools.count(1)
        self._stats: dict[str, float] = {
            "runs": 0,
            "store_hits": 0,
            "local_runs": 0,
            "retries": 0,
            "redispatches": 0,
            "backoff_seconds": 0.0,
            "timeouts": 0,
            "workers_joined": 0,
            "workers_left": 0,
            "workers_lost": 0,
            "workers_evicted": 0,
            "workers_rejoined": 0,
            "suspects": 0,
            "suspect_recoveries": 0,
            "duplicate_results": 0,
        }
        self._bus = None
        self._fleet_job = "fleet"
        self._sizer = None
        self._batch_scheduler: SharedScheduler | None = None
        self._local_runner = SpecRunner(
            store=RemoteProvenanceStore(self._store_request)
            if self._store is not None
            else None
        )
        self._server = socket.create_server((host, port), backlog=16)
        self.address = self._server.getsockname()[:2]
        self._threads = [
            threading.Thread(
                target=self._accept_loop, name="fleet-accept", daemon=True
            ),
            threading.Thread(
                target=self._monitor_loop, name="fleet-monitor", daemon=True
            ),
        ]
        for thread in self._threads:
            thread.start()

    # -- Introspection -------------------------------------------------------
    @property
    def endpoint(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def live_workers(self) -> int:
        """Active members (the sizer's and adapters' capacity signal)."""
        with self._lock:
            return sum(
                1 for w in self._workers.values() if w.state == "active"
            )

    def workers(self) -> list[dict]:
        """Membership snapshot for stats/debugging."""
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "name": w.name,
                    "state": w.state,
                    "host": w.host,
                    "pid": w.pid,
                    "runs": w.runs,
                    "inflight": w.inflight.run_id if w.inflight else None,
                    "silence": round(now - w.last_seen, 3),
                }
                for w in self._workers.values()
            ]

    def stats(self) -> dict[str, object]:
        with self._lock:
            snapshot: dict[str, object] = dict(self._stats)
            snapshot["active_workers"] = sum(
                1 for w in self._workers.values() if w.state == "active"
            )
            snapshot["suspect_workers"] = sum(
                1 for w in self._workers.values() if w.state == "suspect"
            )
            snapshot["fallback_limit"] = self._fallback_limit
        snapshot["live_workers"] = snapshot["active_workers"]
        snapshot["max_workers"] = self.max_workers
        snapshot["workers"] = self.workers()
        snapshot["local_runner"] = dict(self._local_runner.stats)
        sizer = self._sizer
        if sizer is not None:
            snapshot["autoscale"] = sizer.stats()
        return snapshot

    def attach_sizer(self, sizer) -> None:
        """Surface an adaptive sizer's decision trail in :meth:`stats`."""
        self._sizer = sizer

    def bind_events(self, bus, job_id: str = "fleet") -> None:
        """Publish fleet lifecycle events to an event bus under ``job_id``.

        The service binds its (durable) bus here so membership changes
        land in the same queryable log as job progress.
        """
        self._bus = bus
        self._fleet_job = job_id

    def _publish(self, kind: str, **payload) -> None:
        bus = self._bus
        if bus is None:
            return
        try:
            bus.publish(self._fleet_job, kind, payload)
        except Exception:
            pass  # telemetry must never corrupt dispatch

    # -- Elastic capacity ----------------------------------------------------
    def scale_to(self, target: int) -> int:
        """Adjust local-fallback capacity (the coordinator cannot spawn
        remote machines; members join on their own).  Returns the delta."""
        with self._cond:
            before = self._fallback_limit
            self._fallback_limit = max(0, min(int(target), 64))
            if self._fallback_limit > before:
                self._cond.notify_all()
            return self._fallback_limit - before

    # -- Accept / serve ------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, __ = self._server.accept()
            except OSError:
                return  # server socket closed: shutdown
            conn = protocol.Connection(sock)
            if self._connection_filter is not None:
                conn = self._connection_filter(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="fleet-serve",
                daemon=True,
            ).start()

    def _serve_connection(self, conn) -> None:
        try:
            hello = conn.recv()
        except protocol.ProtocolError:
            conn.close()
            return
        if not hello or hello.get("type") != "hello":
            conn.close()
            return
        if int(hello.get("protocol", 0)) != protocol.PROTOCOL_VERSION:
            try:
                conn.send({"type": "reject", "reason": "protocol mismatch"})
            except OSError:
                pass
            conn.close()
            return
        name = str(hello.get("name") or f"worker-{next(self._name_seq)}")
        worker = _RemoteWorker(
            name, conn, int(hello.get("pid", 0)), str(hello.get("host", "?"))
        )
        rejoined = False
        with self._cond:
            if self._shutdown:
                conn.close()
                return
            existing = self._workers.get(name)
            if existing is not None:
                # Latest registration wins (consensus-free: no quorum
                # arbitrates identity).  A live duplicate is superseded.
                rejoined = existing.state in ("evicted", "gone", "suspect")
                stale = existing.inflight
                existing.inflight = None
                if stale is not None:
                    stale.complete_lost(f"worker {name} re-registered")
                if existing.conn is not conn:
                    existing.conn.close()
            self._workers[name] = worker
            self._stats["workers_joined"] += 1
            if rejoined:
                self._stats["workers_rejoined"] += 1
            self._cond.notify_all()
        self._publish(
            "worker_rejoined" if rejoined else "worker_joined",
            worker=name,
            host=worker.host,
            pid=worker.pid,
        )
        try:
            conn.send(
                {
                    "type": "welcome",
                    "name": name,
                    "heartbeat_interval": self.heartbeat_interval,
                }
            )
        except OSError:
            self._worker_lost(worker, "welcome send failed")
            return
        self._read_frames(worker)

    def _read_frames(self, worker: _RemoteWorker) -> None:
        left = False
        while True:
            try:
                message = worker.conn.recv()
            except protocol.ProtocolError:
                break
            if message is None:
                break
            self._saw(worker)
            kind = message.get("type")
            if kind == "result":
                self._handle_result(worker, message)
            elif kind == "heartbeat":
                worker.remote_stats = message.get("stats") or {}
            elif kind == "store":
                self._handle_store(worker, message)
            elif kind == "leave":
                left = True
                break
        if left:
            with self._cond:
                if self._workers.get(worker.name) is worker:
                    worker.state = "left"
                    self._stats["workers_left"] += 1
                    stale = worker.inflight
                    worker.inflight = None
                    if stale is not None:
                        stale.complete_lost(f"worker {worker.name} left")
                    self._cond.notify_all()
            self._publish("worker_left", worker=worker.name)
            worker.conn.close()
        else:
            self._worker_lost(worker, "connection lost")

    def _saw(self, worker: _RemoteWorker) -> None:
        """Any frame is proof of life; undo suspicion or eviction."""
        worker.last_seen = time.monotonic()
        if worker.state not in ("suspect", "evicted"):
            return
        rejoined = False
        with self._cond:
            if self._workers.get(worker.name) is not worker:
                return
            if worker.state == "suspect":
                worker.state = "active"
                self._stats["suspect_recoveries"] += 1
                self._cond.notify_all()
            elif worker.state == "evicted":
                # A healed partition: the member is back, same socket.
                worker.state = "active"
                self._stats["workers_rejoined"] += 1
                rejoined = True
                self._cond.notify_all()
        if rejoined:
            self._publish("worker_rejoined", worker=worker.name)

    def _handle_result(self, worker: _RemoteWorker, message: dict) -> None:
        run_id = str(message.get("run_id"))
        with self._cond:
            pending = self._pending.get(run_id)
            if pending is None or pending.completed:
                # Late (tombstoned), duplicated, or already-redispatched-
                # and-answered: drop.  Exactly-once is enforced here.
                self._stats["duplicate_results"] += 1
            elif message.get("status") == "ok":
                pending.complete_ok(
                    str(message.get("outcome")),
                    float(message.get("cost", 0.0)),
                    bool(message.get("from_store")),
                    message.get("span"),
                )
                worker.runs += 1
            else:
                pending.complete_error(str(message.get("detail", "unknown")))
            if worker.inflight is pending and pending is not None:
                worker.inflight = None
                self._cond.notify_all()

    def _handle_store(self, worker: _RemoteWorker, message: dict) -> None:
        request_id = message.get("request_id")
        reply = self._store_request(message)
        try:
            worker.conn.send(
                {"type": "store_reply", "request_id": request_id, **reply}
            )
        except OSError:
            pass  # worker gone; its round-trip times out as a miss

    def _store_request(self, request: dict) -> dict:
        if self._store is None:
            return {"found": False, "ok": False}
        with self._store_lock:
            return handle_store_request(self._store, request)

    # -- Failure detection ---------------------------------------------------
    def _worker_lost(self, worker: _RemoteWorker, reason: str) -> None:
        with self._cond:
            if self._workers.get(worker.name) is not worker:
                worker.conn.close()
                return
            if worker.state in ("left", "gone"):
                return
            worker.state = "gone"
            self._stats["workers_lost"] += 1
            stale = worker.inflight
            worker.inflight = None
            if stale is not None:
                stale.complete_lost(f"worker {worker.name}: {reason}")
            self._cond.notify_all()
        self._publish("worker_lost", worker=worker.name, reason=reason)
        worker.conn.close()

    def _evict_worker(
        self, worker: _RemoteWorker, reason: str, close: bool
    ) -> None:
        with self._cond:
            if self._workers.get(worker.name) is not worker:
                return
            if worker.state not in ("active", "suspect"):
                return
            worker.state = "evicted"
            self._stats["workers_evicted"] += 1
            stale = worker.inflight
            worker.inflight = None
            if stale is not None:
                stale.complete_lost(f"worker {worker.name} evicted: {reason}")
            self._cond.notify_all()
        self._publish("worker_evicted", worker=worker.name, reason=reason)
        if close:
            # A hung worker's socket is torn down; a partitioned one
            # keeps its connection so an in-band heal can rejoin.
            worker.conn.close()

    def _monitor_loop(self) -> None:
        tick = max(0.01, self.heartbeat_interval / 2.0)
        while not self._shutdown:
            time.sleep(tick)
            suspects: list[_RemoteWorker] = []
            evictees: list[_RemoteWorker] = []
            now = time.monotonic()
            with self._lock:
                if self._shutdown:
                    return
                for worker in self._workers.values():
                    silence = now - worker.last_seen
                    if worker.state == "active" and silence >= self.suspect_after:
                        if silence >= self.evict_after:
                            evictees.append(worker)
                        else:
                            worker.state = "suspect"
                            self._stats["suspects"] += 1
                            suspects.append(worker)
                    elif (
                        worker.state == "suspect"
                        and silence >= self.evict_after
                    ):
                        evictees.append(worker)
            for worker in suspects:
                self._publish(
                    "worker_suspect",
                    worker=worker.name,
                    silence=round(now - worker.last_seen, 3),
                )
            for worker in evictees:
                self._evict_worker(worker, "heartbeat silence", close=False)

    # -- Dispatch ------------------------------------------------------------
    def run(
        self,
        spec: ExecutorSpec,
        workflow: str,
        instance: Instance,
        timeout: float | None = None,
    ) -> Outcome:
        """Execute one instance on the fleet (thread-safe).

        Worker loss (crash, disconnect, eviction) re-dispatches the run
        under the retry policy's crash budget with backoff; timeouts
        use the timeout budget.  Exhaustion raises the local pool's
        exception types, so ``DebugSession.evaluate`` refunds the
        budget charge identically.
        """
        outcome, __, __, __ = self.run_traced(
            spec, workflow, instance, timeout=timeout
        )
        return outcome

    def run_traced(
        self,
        spec: ExecutorSpec,
        workflow: str,
        instance: Instance,
        timeout: float | None = None,
        trace: dict | None = None,
    ) -> tuple[Outcome, float, bool, dict | None]:
        """:meth:`run` plus provenance: ``(outcome, cost_seconds,
        from_store, span)``.  ``trace`` rides the ``run`` wire frame;
        a traced result frame carries the worker-minted child span
        (``{"trace": ..., "worker": ..., "host": ..., "pid": ...}``).
        """
        if timeout is None:
            timeout = self.run_timeout
        wire_spec = spec.to_wire()
        wire_instance = protocol.encode_values(instance.as_dict())
        retry = self.retry_policy.start()
        attempt = 0
        while True:
            attempt += 1
            try:
                outcome_value, cost, from_store, span = self._attempt(
                    spec, wire_spec, workflow, wire_instance, timeout, trace
                )
            except WorkerLost as error:
                delay = retry.next_delay("crash")
                if delay is None:
                    raise WorkerCrashed(str(error)) from None
                self._note_retry(delay, attempt, str(error))
            except RunTimedOut:
                with self._lock:
                    self._stats["timeouts"] += 1
                delay = retry.next_delay("timeout")
                if delay is None:
                    raise
                self._note_retry(delay, attempt, "run timed out")
            else:
                with self._lock:
                    self._stats["runs"] += 1
                    if from_store:
                        self._stats["store_hits"] += 1
                return Outcome(outcome_value), cost, from_store, span

    def _note_retry(self, delay: float, attempt: int, detail: str) -> None:
        with self._lock:
            self._stats["retries"] += 1
            self._stats["redispatches"] += 1
            self._stats["backoff_seconds"] += delay
        self._publish(
            "run_redispatched", attempt=attempt, delay=delay, detail=detail
        )
        if delay > 0:
            time.sleep(delay)

    def _attempt(
        self,
        spec: ExecutorSpec,
        wire_spec: dict,
        workflow: str,
        wire_instance: dict,
        timeout: float | None,
        trace: dict | None = None,
    ) -> tuple[str, float, bool, dict | None]:
        worker, pending = self._acquire()
        if worker is _LOCAL:
            try:
                outcome_value, cost, from_store = self._local_runner.run(
                    spec, workflow, protocol.decode_values(wire_instance)
                )
                # Degraded-mode runs still produce a span (minted here:
                # the "worker" is this process).
                return outcome_value, cost, from_store, _worker_span(trace)
            finally:
                with self._cond:
                    self._local_running -= 1
                    self._stats["local_runs"] += 1
                    self._cond.notify_all()
        assert pending is not None
        try:
            try:
                frame = {
                    "type": "run",
                    "run_id": pending.run_id,
                    "spec": wire_spec,
                    "workflow": workflow,
                    "instance": wire_instance,
                }
                if trace is not None:
                    frame["trace"] = trace
                worker.conn.send(frame)
            except OSError:
                self._worker_lost(worker, "dispatch send failed")
            finished = pending.done.wait(timeout)
            if not finished:
                with self._cond:
                    timed_out = not pending.completed
                    if timed_out:
                        # Claim the pending run as timed out *before*
                        # evicting: eviction completes in-flight runs as
                        # "lost", which would misfile this fault under
                        # the crash budget instead of the timeout one.
                        pending.completed = True
                        pending.done.set()
                if timed_out:
                    # Hung worker or a black-holed conversation: evict
                    # (tearing the socket down) and raise the timeout.
                    self._evict_worker(worker, "run timeout", close=True)
                    raise RunTimedOut(
                        timeout if timeout is not None else 0.0
                    )
        finally:
            with self._cond:
                self._pending.pop(pending.run_id, None)
                if worker.inflight is pending:
                    worker.inflight = None
                    self._cond.notify_all()
        if pending.error_kind == "lost":
            raise WorkerLost(pending.detail)
        if pending.error_kind == "error":
            raise RemoteRunError(pending.detail)
        assert pending.outcome is not None
        return pending.outcome, pending.cost, pending.from_store, pending.span

    def _acquire(self):
        """Reserve a dispatch target: an active idle worker, or the
        local-fallback slot when the fleet has drained."""
        deadline = time.monotonic() + self._acquire_timeout
        with self._cond:
            while True:
                if self._shutdown:
                    raise PoolShutDown("remote worker pool is shut down")
                candidates = [
                    w
                    for w in self._workers.values()
                    if w.state == "active" and w.inflight is None
                ]
                if candidates:
                    worker = min(candidates, key=lambda w: w.runs)
                    run_id = f"{self._run_prefix}-{next(self._run_seq)}"
                    pending = _PendingRun(run_id, worker.name)
                    self._pending[run_id] = pending
                    worker.inflight = pending
                    return worker, pending
                fleet_alive = any(
                    w.state in ("active", "suspect")
                    for w in self._workers.values()
                )
                if (
                    self.local_fallback
                    and not fleet_alive
                    and self._local_running < self._fallback_limit
                ):
                    self._local_running += 1
                    return _LOCAL, None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no dispatch capacity within {self._acquire_timeout}s"
                    )
                self._cond.wait(min(remaining, 0.05))

    # -- Session-facing adapters (ProcessPool parity) ------------------------
    def executor(
        self,
        spec: ExecutorSpec,
        workflow: str = "remote",
        timeout: float | None = None,
        trace: dict | None = None,
        emit: Callable | None = None,
    ) -> ProcessExecutor:
        """An :class:`~repro.core.types.Executor` view over this pool."""
        return ProcessExecutor(
            self, spec, workflow=workflow, timeout=timeout, trace=trace, emit=emit
        )

    _backend_ids = itertools.count(1)

    def backend(self, job_id: str | None = None) -> ProcessPoolBackend:
        """A batch :class:`~repro.core.session.ExecutionBackend` view."""
        if job_id is None:
            job_id = f"remote-batch-{next(self._backend_ids)}"
        return ProcessPoolBackend(self, job_id=job_id)

    def _dispatch_scheduler(self) -> SharedScheduler:
        with self._lock:
            if self._shutdown:
                raise PoolShutDown("remote worker pool is shut down")
            if self._batch_scheduler is None:
                self._batch_scheduler = SharedScheduler(
                    workers=self.max_workers, name="remote-batch"
                )
            return self._batch_scheduler

    def session(
        self,
        spec: ExecutorSpec,
        space,
        workflow: str = "remote",
        history=None,
        budget=None,
        parallel: bool = True,
        timeout: float | None = None,
        progress: Callable | None = None,
    ) -> DebugSession:
        """A ready-wired session executing on the fleet."""
        return DebugSession(
            self.executor(spec, workflow=workflow, timeout=timeout),
            space,
            history=history,
            budget=budget,
            backend=self.backend() if parallel else None,
            progress=progress,
        )

    # -- Lifecycle -----------------------------------------------------------
    def wait_for_workers(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` members are active (startup helper)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                active = sum(
                    1 for w in self._workers.values() if w.state == "active"
                )
                if active >= count:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))

    def shutdown(self) -> None:
        """Dismiss the fleet; subsequent runs raise :class:`PoolShutDown`."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            workers = list(self._workers.values())
            pendings = list(self._pending.values())
            scheduler = self._batch_scheduler
            self._batch_scheduler = None
            for pending in pendings:
                pending.complete_lost("pool shutdown")
            self._cond.notify_all()
        try:
            self._server.close()
        except OSError:  # pragma: no cover
            pass
        for worker in workers:
            try:
                worker.conn.send({"type": "bye"})
            except OSError:
                pass
            worker.conn.close()
        if scheduler is not None:
            scheduler.shutdown()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "RemoteWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
