"""Fleet worker: joins a coordinator, executes dispatched runs.

A :class:`FleetWorker` is the remote counterpart of one
:class:`~repro.exec.pool.ProcessPool` worker process, reachable over
the fleet protocol instead of a pipe.  It dials the coordinator, says
``hello``, and then serves ``run`` frames until told ``bye`` -- from a
separate machine, a separate process (``repro worker --connect``), or
an in-process thread (the test and benchmark harnesses, where dozens of
workers join and leave a fleet in milliseconds).

Three threads cooperate per worker:

* the **reader** owns the connection lifecycle: it routes inbound
  frames (``run`` -> execution queue, ``store_reply`` -> the waiting
  provenance round-trip, ``bye`` -> shutdown) and runs the reconnect
  loop when the transport dies;
* the **executor** drains the run queue serially (one run in flight per
  worker, mirroring the local pool's one-run-per-process) through a
  :class:`SpecRunner`; and
* the **heartbeat** ticks liveness at the coordinator-announced
  interval.

Provenance dedup goes through a
:class:`~repro.provenance.remote.RemoteProvenanceStore` whose transport
is a ``store``/``store_reply`` round-trip on the same connection -- the
network-backend promotion of PR 5's shared-SQLite-file dedup.  Store
trouble (timeout, partition) reads as a cache miss: determinism makes
the re-execution converge.

Idempotence duties (the receiver half of the protocol contract): a
duplicated ``run`` frame re-sends the memoized result instead of
re-executing, and results are remembered across reconnects so a
redispatch that raced a partition heal cannot double-execute.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from collections import OrderedDict
from queue import Empty, Queue

from ...core.types import Instance, Outcome
from ...provenance.record import ProvenanceRecord
from ...provenance.remote import RemoteProvenanceStore
from ..pool import _worker_span
from ..spec import ExecutorSpec
from . import protocol

__all__ = ["FleetWorker", "SpecRunner"]

_STOP = object()


class SpecRunner:
    """Build-memoized, dedup-aware executor of (spec, instance) runs.

    The single execution body shared by fleet workers and the
    coordinator's local-fallback path: memoize the built executor by
    spec fingerprint (so re-dispatched and repeated runs skip the
    build), consult the provenance store before executing, write the
    fresh outcome through after.  Store errors are an optimization
    loss, never a failure.
    """

    def __init__(self, store=None):
        self._store = store
        self._executors: dict[str, object] = {}
        self._lock = threading.Lock()
        self.stats = {"executions": 0, "store_hits": 0, "builds": 0}

    def run(
        self, spec: ExecutorSpec, workflow: str, values: dict
    ) -> tuple[str, float, bool]:
        """Execute one instance; returns (outcome value, cost, from_store)."""
        fingerprint = spec.fingerprint
        with self._lock:
            executor = self._executors.get(fingerprint)
        if executor is None:
            executor = spec.build()
            with self._lock:
                self._executors.setdefault(fingerprint, executor)
                self.stats["builds"] += 1
        instance = Instance(values)
        if self._store is not None:
            try:
                record = self._store.lookup(workflow, instance)
            except Exception:
                record = None  # store trouble reads as a miss
            if record is not None:
                with self._lock:
                    self.stats["store_hits"] += 1
                return record.outcome.value, record.cost, True
        started = time.perf_counter()
        outcome = executor(instance)
        cost = time.perf_counter() - started
        if not isinstance(outcome, Outcome):
            raise TypeError(
                f"executor returned {type(outcome).__name__}, not Outcome"
            )
        with self._lock:
            self.stats["executions"] += 1
        if self._store is not None:
            try:
                self._store.upsert(
                    ProvenanceRecord(
                        workflow=workflow,
                        instance=instance,
                        outcome=outcome,
                        cost=cost,
                        created_at=time.time(),
                    )
                )
            except Exception:
                pass  # lost write-through must not fail the run
        return outcome.value, cost, False


class FleetWorker:
    """One fleet member: connects, heartbeats, executes, survives blips.

    Args:
        host / port: the coordinator's listening address.
        name: stable fleet identity; rejoining under the same name
            resumes the old membership slot.  Defaults to
            ``hostname-pid-N``.
        heartbeat_interval: override the coordinator-announced cadence
            (tests); None accepts the ``welcome`` value.
        reconnect_attempts: how many times a dead transport is redialed
            before the worker gives up (elastic leave).
        reconnect_delay: base delay between redials (doubled per try).
        max_runs: exit after this many executed runs (drain scenarios,
            ``repro worker --max-runs``).
        connection_wrapper: fault-injection seam -- maps the fresh
            :class:`~repro.exec.remote.protocol.Connection` to the
            connection actually used (see
            :mod:`repro.exec.remote.faults`).
        store_timeout: provenance round-trip budget before a lookup
            degrades to a miss.
    """

    _name_counter = itertools.count(1)

    def __init__(
        self,
        host: str,
        port: int,
        name: str | None = None,
        heartbeat_interval: float | None = None,
        reconnect_attempts: int = 0,
        reconnect_delay: float = 0.2,
        max_runs: int | None = None,
        connection_wrapper=None,
        store_timeout: float = 5.0,
    ):
        self.host = host
        self.port = port
        self.name = name or (
            f"{socket.gethostname()}-{os.getpid()}-{next(self._name_counter)}"
        )
        self._heartbeat_override = heartbeat_interval
        self._heartbeat_interval = heartbeat_interval or 0.5
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.max_runs = max_runs
        self._wrapper = connection_wrapper
        self._store_timeout = store_timeout
        self._conn = None
        self._conn_lock = threading.Lock()
        self._stop = threading.Event()
        self._heartbeats_paused = threading.Event()
        self._runs: Queue = Queue()
        self._reply_lock = threading.Lock()
        self._pending_replies: dict[str, tuple[threading.Event, dict]] = {}
        self._request_ids = itertools.count(1)
        self._results: OrderedDict[str, dict] = OrderedDict()
        self._inflight: str | None = None
        self._executed = 0
        self.runner = SpecRunner(
            store=RemoteProvenanceStore(self._store_roundtrip)
        )
        self._threads: list[threading.Thread] = []
        self.connected = threading.Event()

    # -- Lifecycle -----------------------------------------------------------
    def start(self) -> "FleetWorker":
        """Connect and serve on background threads; returns self.

        Raises on a failed *initial* connection (joining a fleet that
        is not there is a caller error); later transport deaths go
        through the reconnect loop instead.
        """
        self._set_conn(self._connect_once())
        for target, tag in (
            (self._reader_loop, "read"),
            (self._executor_loop, "exec"),
            (self._heartbeat_loop, "beat"),
        ):
            thread = threading.Thread(
                target=target, name=f"fleet-{self.name}-{tag}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def run_forever(self) -> None:
        """Blocking entry point (the ``repro worker`` CLI body)."""
        self.start()
        for thread in self._threads:
            if thread.name.endswith("-read"):
                thread.join()
        self.stop()

    def stop(self, leave: bool = True) -> None:
        """Graceful departure: announce ``leave``, stop threads."""
        if self._stop.is_set():
            return
        self._stop.set()
        if leave:
            self._send({"type": "leave", "name": self.name})
        self._runs.put(_STOP)
        with self._conn_lock:
            conn = self._conn
        if conn is not None:
            conn.close()
        self.connected.clear()

    def kill(self) -> None:
        """Abrupt death: tear the transport down mid-whatever (tests)."""
        self._stop.set()
        self._runs.put(_STOP)
        with self._conn_lock:
            conn = self._conn
        if conn is not None:
            conn.close()
        self.connected.clear()

    def join(self, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    # -- Test controls -------------------------------------------------------
    def pause_heartbeats(self) -> None:
        """Simulate a silent (but connected) worker; coordinator-side
        suspicion and eviction follow."""
        self._heartbeats_paused.set()

    def resume_heartbeats(self) -> None:
        self._heartbeats_paused.clear()

    @property
    def connection(self):
        with self._conn_lock:
            return self._conn

    @property
    def executed(self) -> int:
        return self._executed

    # -- Connection management ----------------------------------------------
    def _connect_once(self):
        conn = protocol.connect(self.host, self.port)
        if self._wrapper is not None:
            conn = self._wrapper(conn)
        conn.send(
            {
                "type": "hello",
                "name": self.name,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "protocol": protocol.PROTOCOL_VERSION,
            }
        )
        reply = conn.recv()
        if not reply or reply.get("type") != "welcome":
            conn.close()
            reason = (reply or {}).get("reason", "no welcome")
            raise ConnectionError(f"fleet rejected {self.name}: {reason}")
        if self._heartbeat_override is None:
            self._heartbeat_interval = float(
                reply.get("heartbeat_interval", self._heartbeat_interval)
            )
        return conn

    def _set_conn(self, conn) -> None:
        with self._conn_lock:
            self._conn = conn
        self.connected.set()

    def _reconnect(self) -> bool:
        """Redial with exponential spacing; False when giving up."""
        self.connected.clear()
        for attempt in range(self.reconnect_attempts):
            if self._stop.is_set():
                return False
            time.sleep(self.reconnect_delay * (2**attempt))
            try:
                self._set_conn(self._connect_once())
                return True
            except OSError:
                continue
        return False

    # -- Threads -------------------------------------------------------------
    def _reader_loop(self) -> None:
        while not self._stop.is_set():
            with self._conn_lock:
                conn = self._conn
            message = conn.recv() if conn is not None else None
            if message is None:
                if self._stop.is_set() or not self._reconnect():
                    break
                continue
            kind = message.get("type")
            if kind == "run":
                self._runs.put(message)
            elif kind == "store_reply":
                self._resolve_reply(message)
            elif kind == "bye":
                break
        self._stop.set()
        self._runs.put(_STOP)
        self.connected.clear()

    def _executor_loop(self) -> None:
        while True:
            try:
                item = self._runs.get(timeout=1.0)
            except Empty:
                if self._stop.is_set():
                    return
                continue
            if item is _STOP:
                return
            self._execute(item)
            if self.max_runs is not None and self._executed >= self.max_runs:
                self.stop()
                return

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_interval):
            if self._heartbeats_paused.is_set():
                continue
            self._send(
                {
                    "type": "heartbeat",
                    "name": self.name,
                    "inflight": self._inflight,
                    "stats": dict(self.runner.stats),
                }
            )

    # -- Execution -----------------------------------------------------------
    def _execute(self, message: dict) -> None:
        run_id = str(message.get("run_id"))
        cached = self._results.get(run_id)
        if cached is not None:
            self._send(cached)  # duplicated run frame: idempotent re-reply
            return
        self._inflight = run_id
        try:
            spec = ExecutorSpec.from_wire(message["spec"])
            values = protocol.decode_values(message["instance"])
            value, cost, from_store = self.runner.run(
                spec, str(message.get("workflow", "remote")), values
            )
            result = {
                "type": "result",
                "run_id": run_id,
                "status": "ok",
                "outcome": value,
                "cost": cost,
                "from_store": from_store,
            }
            # A traced run frame gets a worker-minted child span back:
            # same trace_id, fresh span parented on the dispatch span,
            # tagged with where it actually ran.
            span = _worker_span(message.get("trace"))
            if span is not None:
                span["worker"] = self.name
                result["span"] = span
            self._executed += 1
        except Exception as error:
            result = {
                "type": "result",
                "run_id": run_id,
                "status": "error",
                "detail": repr(error),
            }
        finally:
            self._inflight = None
        self._results[run_id] = result
        while len(self._results) > 256:
            self._results.popitem(last=False)
        self._send(result)

    # -- Provenance transport ------------------------------------------------
    def _store_roundtrip(self, request: dict) -> dict:
        request_id = f"{self.name}-{next(self._request_ids)}"
        event = threading.Event()
        slot: dict = {}
        with self._reply_lock:
            self._pending_replies[request_id] = (event, slot)
        try:
            self._send_raising(
                {"type": "store", "request_id": request_id, **request}
            )
            if not event.wait(self._store_timeout):
                raise TimeoutError(
                    f"no store reply within {self._store_timeout}s"
                )
        finally:
            with self._reply_lock:
                self._pending_replies.pop(request_id, None)
        return slot.get("reply", {})

    def _resolve_reply(self, message: dict) -> None:
        request_id = str(message.get("request_id"))
        with self._reply_lock:
            waiter = self._pending_replies.pop(request_id, None)
        if waiter is None:
            return  # duplicated or late reply: drop
        event, slot = waiter
        slot["reply"] = message
        event.set()

    # -- Sending -------------------------------------------------------------
    def _send(self, message: dict) -> None:
        try:
            self._send_raising(message)
        except OSError:
            pass  # transport down; the reader's reconnect loop owns recovery

    def _send_raising(self, message: dict) -> None:
        with self._conn_lock:
            conn = self._conn
        if conn is None:
            raise OSError("not connected")
        conn.send(message)
