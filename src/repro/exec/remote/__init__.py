"""Distributed execution tier: the remote worker fleet.

The local :class:`~repro.exec.pool.ProcessPool` scales to one machine's
cores; this package scales the same contract across machines.  A
:class:`~repro.exec.remote.pool.RemoteWorkerPool` coordinator listens
on a stdlib TCP socket, :class:`~repro.exec.remote.worker.FleetWorker`
members join it (``repro worker --connect host:port``), and runs are
dispatched over a small length-prefixed JSON protocol
(:mod:`~repro.exec.remote.protocol`) with heartbeats, retry/backoff
re-dispatch, and consensus-free elastic membership.  The
:mod:`~repro.exec.remote.faults` layer injects message-level network
faults at the connection seam for the chaos suite and benchmark.

Invariant carried over from PR 5 and enforced by
``tests/test_remote.py`` + ``benchmarks/bench_remote_fleet.py``: under
dropped/delayed/duplicated/reordered frames, mid-run worker death,
heartbeat-loss eviction, and partition-and-rejoin, every report stays
byte-identical to the serial in-process path and budgets stay
paper-exact (no run lost, none double-charged).
"""

from .faults import FaultPlan, FaultyConnection
from .pool import RemoteWorkerPool, WorkerLost
from .protocol import Connection, ProtocolError, connect
from .worker import FleetWorker, SpecRunner

__all__ = [
    "Connection",
    "FaultPlan",
    "FaultyConnection",
    "FleetWorker",
    "ProtocolError",
    "RemoteWorkerPool",
    "SpecRunner",
    "WorkerLost",
    "connect",
]
