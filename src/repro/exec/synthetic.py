"""Synthetic CPU-bound pipelines for the process-backend bench and tests.

The pipeline is a deterministic stand-in for the paper's expensive
black boxes: the outcome depends only on the instance (a planted
conjunction fails), and each run burns a configurable amount of work --
``mode="cpu"`` holds the GIL in a hashing loop (so in-process threads
cannot overlap it, which is exactly the gap the process pool closes),
``mode="sleep"`` blocks without CPU (the repo's established
latency-simulation mode, useful on single-core machines).

Fault injection is worker-side and file-coordinated so it works across
process boundaries: ``crash_on`` / ``hang_on`` name a parameter-value
assignment that triggers the fault, and an optional ``once_path``
sentinel file makes the fault one-shot -- the first matching run
creates the file and faults; the retry (on a replacement worker, or any
later attempt) sees the file and runs normally.  That is the shape the
differential tests need: an injected crash or hang must not change the
final report, only the pool's recovery counters.

Everything here is importable by name in a fresh interpreter, which is
the :class:`~repro.exec.spec.ExecutorSpec` spawn-safety contract.
"""

from __future__ import annotations

import hashlib
import os
import time

from ..core.types import Instance, Outcome, Parameter, ParameterKind, ParameterSpace

__all__ = ["build_space", "build_pipeline", "default_fail_when"]


def build_space(n_params: int = 4, domain: int = 5) -> ParameterSpace:
    """``n_params`` ordinal parameters ``p0..``, each with domain 0..domain-1."""
    return ParameterSpace(
        [
            Parameter(f"p{i}", tuple(range(domain)), ParameterKind.ORDINAL)
            for i in range(n_params)
        ]
    )


def default_fail_when(n_params: int = 4) -> dict[str, int]:
    """The planted root cause: ``p0 = 1 AND p1 = 2`` (fits any domain>=3)."""
    del n_params
    return {"p0": 1, "p1": 2}


def _matches(instance: Instance, assignment: dict[str, int] | None) -> bool:
    if not assignment:
        return False
    return all(instance.get(name) == value for name, value in assignment.items())


def _burn_cpu(iterations: int) -> bytes:
    """Deterministic GIL-holding work: chained small-block sha256."""
    digest = b"repro-process-backend"
    for _ in range(iterations):
        digest = hashlib.sha256(digest).digest()
    return digest


class SyntheticPipeline:
    """Deterministic executor with configurable work and fault injection."""

    def __init__(
        self,
        fail_when: dict[str, int],
        work_iterations: int,
        sleep_seconds: float,
        mode: str,
        crash_on: dict[str, int] | None,
        crash_once_path: str | None,
        crash_exit_code: int,
        hang_on: dict[str, int] | None,
        hang_once_path: str | None,
        hang_seconds: float,
    ):
        self.fail_when = fail_when
        self.work_iterations = work_iterations
        self.sleep_seconds = sleep_seconds
        self.mode = mode
        self.crash_on = crash_on
        self.crash_once_path = crash_once_path
        self.crash_exit_code = crash_exit_code
        self.hang_on = hang_on
        self.hang_once_path = hang_once_path
        self.hang_seconds = hang_seconds

    def _fault_armed(self, once_path: str | None) -> bool:
        """True when the fault should fire; one-shot via the sentinel file.

        ``O_CREAT | O_EXCL`` makes the create atomic across processes:
        exactly one matching run wins the race and faults.
        """
        if once_path is None:
            return True
        try:
            os.close(os.open(once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return False
        return True

    def __call__(self, instance: Instance) -> Outcome:
        if _matches(instance, self.crash_on) and self._fault_armed(
            self.crash_once_path
        ):
            # Hard death, not an exception: models a segfaulting or
            # OOM-killed pipeline that takes its worker down with it.
            os._exit(self.crash_exit_code)
        if _matches(instance, self.hang_on) and self._fault_armed(
            self.hang_once_path
        ):
            time.sleep(self.hang_seconds)
        if self.mode == "cpu":
            if self.work_iterations:
                _burn_cpu(self.work_iterations)
        elif self.mode == "sleep":
            if self.sleep_seconds:
                time.sleep(self.sleep_seconds)
        else:
            raise ValueError(f"unknown work mode {self.mode!r}")
        return Outcome.FAIL if _matches(instance, self.fail_when) else Outcome.SUCCEED


def build_pipeline(
    fail_when: object = None,
    work_iterations: int = 0,
    sleep_seconds: float = 0.0,
    mode: str = "cpu",
    crash_on: object = None,
    crash_once_path: str | None = None,
    crash_exit_code: int = 13,
    hang_on: object = None,
    hang_once_path: str | None = None,
    hang_seconds: float = 3600.0,
) -> SyntheticPipeline:
    """ExecutorSpec-friendly factory (all arguments JSON-able).

    ``fail_when`` / ``crash_on`` / ``hang_on`` accept dicts or the
    frozen pair-tuples an :class:`~repro.exec.spec.ExecutorSpec` ships.
    """
    return SyntheticPipeline(
        fail_when=_as_assignment(fail_when) or default_fail_when(),
        work_iterations=int(work_iterations),
        sleep_seconds=float(sleep_seconds),
        mode=mode,
        crash_on=_as_assignment(crash_on),
        crash_once_path=crash_once_path,
        crash_exit_code=int(crash_exit_code),
        hang_on=_as_assignment(hang_on),
        hang_once_path=hang_once_path,
        hang_seconds=float(hang_seconds),
    )


def _as_assignment(value: object) -> dict[str, int] | None:
    """Normalize dicts / frozen pair-tuples / None to a plain dict."""
    if value is None:
        return None
    if isinstance(value, dict):
        return dict(value)
    return {name: val for name, val in value}  # type: ignore[union-attr]
