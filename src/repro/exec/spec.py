"""ExecutorSpec: a picklable, spawn-safe pipeline configuration.

A worker *process* cannot receive the parent's executor closure -- it
must rebuild the pipeline on its side of the fork/spawn boundary.  An
:class:`ExecutorSpec` is the shippable description: a ``module:qualname``
*builder* reference plus JSON-able keyword arguments.  The worker
imports the builder and calls it once, memoizing the built executor by
the spec's content fingerprint, so a warm worker pays the build cost
once per distinct pipeline.

Two construction paths cover the repo's pipelines:

* :meth:`ExecutorSpec.from_builder` references any importable factory
  (``repro.workloads.ml_pipeline:make_executor``, a benchmark module's
  top-level function, ...).
* :meth:`ExecutorSpec.from_workflow` serializes a declarative
  :class:`~repro.pipeline.workflow.Workflow` through
  :mod:`repro.pipeline.serialization` (the VisTrails-style structure
  JSON); module callables travel as import paths resolved into a
  :class:`~repro.pipeline.serialization.ModuleRegistry` on the worker.

The spawn-safety contract: everything a spec references must be
importable in a fresh interpreter (top-level functions of real modules;
no lambdas, no closures, no ``__main__``-only state beyond what
``multiprocessing`` ships for the main module).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import threading
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from ..core.types import Executor, Outcome
from ..pipeline.evaluation import WorkflowExecutor, threshold_evaluation
from ..pipeline.serialization import ModuleRegistry, workflow_from_json, workflow_to_json
from ..pipeline.workflow import Workflow

__all__ = [
    "ExecutorSpec",
    "clear_artifact_cache",
    "artifact_cache_stats",
    "resolve_reference",
]


def resolve_reference(reference: str):
    """Import ``"module:qualname"`` and return the named object.

    Raises:
        ValueError: for a malformed reference.
        ImportError / AttributeError: when the module or attribute is
            missing -- surfaced verbatim so worker-side build failures
            name the exact broken reference.
    """
    module_name, _, qualname = reference.partition(":")
    if not module_name or not qualname:
        raise ValueError(
            f"executor reference {reference!r} must be 'module:qualname'"
        )
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class ExecutorSpec:
    """A serializable recipe for building an :class:`Executor`.

    Attributes:
        builder: ``module:qualname`` of a factory whose call returns an
            executor (``instance -> Outcome``).
        kwargs: JSON-able keyword arguments for the factory, stored as a
            canonical sorted tuple so equal specs hash equal.
    """

    builder: str
    kwargs: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if ":" not in self.builder:
            raise ValueError(
                f"builder {self.builder!r} must be 'module:qualname'"
            )
        if not isinstance(self.kwargs, tuple):
            object.__setattr__(
                self, "kwargs", _canonical_kwargs(dict(self.kwargs))
            )

    # -- Construction --------------------------------------------------------
    @classmethod
    def from_builder(cls, builder: str, **kwargs: object) -> "ExecutorSpec":
        """Spec for an importable zero-or-keyword-argument factory."""
        return cls(builder=builder, kwargs=_canonical_kwargs(kwargs))

    @classmethod
    def from_workflow(
        cls,
        workflow: Workflow,
        registry: Mapping[str, str],
        threshold: float | None = None,
        evaluation: str | None = None,
        crash_is_fail: bool = True,
    ) -> "ExecutorSpec":
        """Ship a declarative workflow (structure as JSON, code as paths).

        Args:
            workflow: the pipeline; serialized with
                :func:`~repro.pipeline.serialization.workflow_to_json`.
            registry: module-function name -> ``module:qualname`` import
                path, resolved worker-side into a
                :class:`~repro.pipeline.serialization.ModuleRegistry`.
            threshold: succeed iff the sink value is ``>=`` this (the
                paper's F-measure example).  Mutually exclusive with
                ``evaluation``.
            evaluation: ``module:qualname`` of a result -> Outcome
                callable for arbitrary evaluation procedures.
            crash_is_fail: forward to
                :class:`~repro.pipeline.evaluation.WorkflowExecutor`.
        """
        if (threshold is None) == (evaluation is None):
            raise ValueError("pass exactly one of threshold / evaluation")
        return cls.from_builder(
            f"{__name__}:build_workflow_executor",
            workflow_json=workflow_to_json(workflow, indent=None),
            registry=dict(registry),
            threshold=threshold,
            evaluation=evaluation,
            crash_is_fail=crash_is_fail,
        )

    # -- Identity ------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content hash: the worker-side executor memo key."""
        payload = json.dumps(
            [self.builder, [[k, v] for k, v in self.kwargs]],
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    # -- Wire transport ------------------------------------------------------
    def to_wire(self) -> dict[str, object]:
        """A JSON-able form for socket transport (no pickling).

        Only JSON-able kwargs survive the wire (true for both
        construction classmethods); nested tuples serialize as arrays
        and :meth:`from_wire` re-freezes them, so the fingerprint is
        preserved exactly across the round-trip.
        """
        return {
            "builder": self.builder,
            "kwargs": [[name, value] for name, value in self.kwargs],
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "ExecutorSpec":
        """Rebuild a spec from :meth:`to_wire` output (post-JSON)."""
        return cls(
            builder=str(payload["builder"]),
            kwargs=tuple(
                (str(name), _freeze(value))
                for name, value in payload["kwargs"]  # type: ignore[union-attr]
            ),
        )

    # -- Worker-side build ---------------------------------------------------
    def build(self) -> Executor:
        """Import the builder and construct the executor (worker side)."""
        factory = resolve_reference(self.builder)
        executor = factory(**dict(self.kwargs))
        if not callable(executor):
            raise TypeError(
                f"builder {self.builder!r} returned non-callable "
                f"{type(executor).__name__}"
            )
        return executor


def _canonical_kwargs(kwargs: Mapping[str, object]) -> tuple[tuple[str, object], ...]:
    """Sorted, hashable kwargs tuple (nested dicts/lists stay as-is for
    transport; only the top level needs canonical order for equality)."""
    return tuple(
        (name, _freeze(value)) for name, value in sorted(kwargs.items())
    )


def _freeze(value: object) -> object:
    """Recursively convert JSON containers to hashable tuples."""
    if isinstance(value, Mapping):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


# Worker-side warm cache for from_workflow data artifacts.  A worker
# that re-builds the same spec (a re-dispatched run after eviction, a
# repeated fingerprint after an executor-memo reset, N specs differing
# only in threshold) skips re-parsing the workflow JSON and re-importing
# the registry paths.  Safe to share: Workflow.execute builds all its
# per-run state locally (its only mutation is an idempotent topo-order
# memo), and each build still gets a private WorkflowExecutor.
_ARTIFACT_LOCK = threading.Lock()
_WORKFLOW_ARTIFACTS: dict[tuple[str, tuple[tuple[str, str], ...]], Workflow] = {}
_ARTIFACT_STATS = {"hits": 0, "misses": 0}
_ARTIFACT_CACHE_MAX = 64


def artifact_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the workflow-artifact warm cache."""
    with _ARTIFACT_LOCK:
        stats = dict(_ARTIFACT_STATS)
        stats["entries"] = len(_WORKFLOW_ARTIFACTS)
    return stats


def clear_artifact_cache() -> None:
    """Drop cached workflow artifacts (tests; memory pressure)."""
    with _ARTIFACT_LOCK:
        _WORKFLOW_ARTIFACTS.clear()
        _ARTIFACT_STATS["hits"] = 0
        _ARTIFACT_STATS["misses"] = 0


def build_workflow_executor(
    workflow_json: str,
    registry: object,
    threshold: float | None = None,
    evaluation: str | None = None,
    crash_is_fail: bool = True,
) -> Executor:
    """Worker-side factory for :meth:`ExecutorSpec.from_workflow`."""
    # The registry arrives either as a plain mapping (direct call) or as
    # the frozen pair-tuple an ExecutorSpec ships; dict() handles both,
    # including the empty tuple an empty registry freezes to.
    paths = (
        dict(registry)
        if isinstance(registry, Mapping)
        else {name: path for name, path in registry}  # type: ignore[union-attr]
    )
    cache_key = (
        hashlib.sha256(workflow_json.encode("utf-8")).hexdigest(),
        tuple(sorted((str(k), str(v)) for k, v in paths.items())),
    )
    with _ARTIFACT_LOCK:
        workflow = _WORKFLOW_ARTIFACTS.get(cache_key)
        if workflow is not None:
            _ARTIFACT_STATS["hits"] += 1
    if workflow is None:
        resolved = ModuleRegistry(
            {name: resolve_reference(path) for name, path in paths.items()}
        )
        workflow = workflow_from_json(workflow_json, resolved)
        with _ARTIFACT_LOCK:
            _ARTIFACT_STATS["misses"] += 1
            if len(_WORKFLOW_ARTIFACTS) >= _ARTIFACT_CACHE_MAX:
                _WORKFLOW_ARTIFACTS.pop(next(iter(_WORKFLOW_ARTIFACTS)))
            _WORKFLOW_ARTIFACTS[cache_key] = workflow
    if evaluation is not None:
        evaluate: Callable[[object], Outcome] = resolve_reference(evaluation)
    else:
        assert threshold is not None
        evaluate = threshold_evaluation(threshold)
    return WorkflowExecutor(workflow, evaluate, crash_is_fail=crash_is_fail)
