"""Adaptive pool sizing from scheduler queue depth.

``--workers N`` is a guess frozen at startup; the scheduler's queue
depth is the live truth.  :class:`AdaptiveSizer` closes the loop: a
background thread samples a depth source (normally
:attr:`~repro.concurrency.scheduler.SharedScheduler.pending`) and calls
the pool's ``scale_to`` mechanism -- growing eagerly when demand
outruns capacity, shrinking only after the queue has stayed empty for
``shrink_after`` consecutive ticks (hysteresis: debugging workloads
arrive in bursts, and re-spawning a worker costs a process start).

Every non-hold decision lands in a bounded trail surfaced through the
pool's ``stats()["autoscale"]`` (the sizer attaches itself), so an
operator can read *why* the pool is its current size, not just what
size it is.  Works against both pools through the same two-method
contract: ``scale_to(target) -> delta`` plus the ``live_workers`` /
``max_workers`` capacity signals.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable

__all__ = ["AdaptiveSizer"]


class AdaptiveSizer:
    """Grow/shrink a pool from a live queue-depth signal.

    Args:
        pool: anything with ``scale_to(int) -> int``, ``live_workers``,
            ``max_workers``, and (optionally) ``attach_sizer``.
        depth: zero-argument callable returning the current queued+
            running demand (e.g. ``lambda: scheduler.pending``).
        min_workers / max_workers: sizing bounds; default 0 /
            ``pool.max_workers``.
        interval: sampling period, seconds.
        shrink_after: consecutive zero-depth ticks before shrinking.
        trail: retained decision count.
        start: spawn the sampling thread immediately (False for tests
            driving :meth:`tick` manually).
    """

    def __init__(
        self,
        pool,
        depth: Callable[[], int],
        min_workers: int | None = None,
        max_workers: int | None = None,
        interval: float = 0.25,
        shrink_after: int = 8,
        trail: int = 64,
        start: bool = True,
    ):
        self._pool = pool
        self._depth = depth
        self.min_workers = (
            min_workers
            if min_workers is not None
            else getattr(pool, "min_workers", 0)
        )
        self.max_workers = (
            max_workers if max_workers is not None else pool.max_workers
        )
        if not 0 <= self.min_workers <= self.max_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")
        self.interval = interval
        self.shrink_after = shrink_after
        self._idle_ticks = 0
        self._lock = threading.Lock()
        self._trail: deque = deque(maxlen=trail)
        self._stats = {"ticks": 0, "scale_ups": 0, "scale_downs": 0}
        self._started = time.monotonic()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        attach = getattr(pool, "attach_sizer", None)
        if attach is not None:
            attach(self)
        if start:
            self._thread = threading.Thread(
                target=self._loop, name="pool-autoscale", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:
                # A sizing hiccup (e.g. a spawn failure) must not kill
                # the control loop; the next tick re-observes.
                continue

    def tick(self) -> dict | None:
        """One observe-decide-act cycle; returns the decision, if any."""
        depth = int(self._depth())
        live = self._pool.live_workers
        action = None
        target = live
        if depth > live and live < self.max_workers:
            target = min(self.max_workers, depth)
            action = "grow"
            self._idle_ticks = 0
        elif depth == 0:
            self._idle_ticks += 1
            if self._idle_ticks >= self.shrink_after and live > self.min_workers:
                target = self.min_workers
                action = "shrink"
                self._idle_ticks = 0
        else:
            self._idle_ticks = 0
        with self._lock:
            self._stats["ticks"] += 1
        if action is None:
            return None
        delta = self._pool.scale_to(target)
        decision = {
            "at": round(time.monotonic() - self._started, 3),
            "depth": depth,
            "live": live,
            "target": target,
            "action": action,
            "delta": delta,
        }
        with self._lock:
            if action == "grow":
                self._stats["scale_ups"] += 1
            else:
                self._stats["scale_downs"] += 1
            self._trail.append(decision)
        return decision

    def stats(self) -> dict[str, object]:
        """Counters plus the bounded decision trail (most recent last)."""
        with self._lock:
            snapshot: dict[str, object] = dict(self._stats)
            snapshot["decisions"] = list(self._trail)
        snapshot["min_workers"] = self.min_workers
        snapshot["max_workers"] = self.max_workers
        return snapshot

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def __enter__(self) -> "AdaptiveSizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
