"""Process-level execution subsystem (substrate S5): pools and events.

Two gaps the thread-based service layer left open are closed here:

* **CPU-bound pipelines gained nothing from threads** -- every run
  executed in-process under the GIL, and one misbehaving pipeline
  (a hang, an ``os._exit``) could stall or kill the whole service.
  :mod:`~repro.exec.pool` ships pipeline configurations
  (:class:`~repro.exec.spec.ExecutorSpec`, built on
  :mod:`repro.pipeline.serialization`) to a warm, elastic pool of
  spawn-safe worker *processes* with per-run timeouts, crash detection,
  and worker replacement.  A dead or hung worker maps to a
  deterministic failed run (or a bounded retry); the session's budget
  accounting stays exactly the paper's because an uncompleted run is
  refunded, never charged.

* **Jobs were opaque until they finished.**  :mod:`~repro.exec.events`
  provides the job event subsystem: sessions and strategies publish
  typed progress events (round started, suspect confirmed, budget
  spent, partial causes) on an :class:`~repro.exec.events.EventBus`,
  surfaced as ``JobHandle.events()`` / ``JobHandle.progress()`` and as
  ``repro serve --events jsonl`` / ``repro debug --watch``.

On top of those, the distributed tier (:mod:`~repro.exec.remote`)
extends the same pool contract across machines -- a socket protocol
with heartbeats, a :class:`~repro.exec.remote.RemoteWorkerPool`
coordinator with retry/backoff re-dispatch and consensus-free elastic
membership, and a network fault-injection layer -- while
:mod:`~repro.exec.retry` unifies both pools' retry policy and
:mod:`~repro.exec.autoscale` sizes them from live queue depth.

Layering: ``exec/`` sits above ``core``/``concurrency``/``provenance``/
``pipeline`` and below ``service`` (enforced by
``tools/check_layering.py``); ``core`` reaches it only through the
neutral ``DebugSession.progress`` callable.
"""

from .autoscale import AdaptiveSizer
from .events import EventBus, EventKind, JobEvent
from .pool import (
    PoolShutDown,
    ProcessExecutor,
    ProcessPool,
    ProcessPoolBackend,
    RemoteRunError,
    RunTimedOut,
    WorkerCrashed,
)
from .remote import (
    FaultPlan,
    FaultyConnection,
    FleetWorker,
    RemoteWorkerPool,
    SpecRunner,
    WorkerLost,
)
from .retry import RetryPolicy, RetryState
from .spec import ExecutorSpec

__all__ = [
    "AdaptiveSizer",
    "EventBus",
    "EventKind",
    "ExecutorSpec",
    "FaultPlan",
    "FaultyConnection",
    "FleetWorker",
    "JobEvent",
    "PoolShutDown",
    "ProcessExecutor",
    "ProcessPool",
    "ProcessPoolBackend",
    "RemoteRunError",
    "RemoteWorkerPool",
    "RetryPolicy",
    "RetryState",
    "RunTimedOut",
    "SpecRunner",
    "WorkerCrashed",
    "WorkerLost",
]
