"""ProcessPool: warm, elastic, crash-tolerant pipeline worker processes.

The thread-based service executes every pipeline in-process: CPU-bound
pipelines serialize on the GIL, and a pipeline that hangs or takes the
interpreter down (``os._exit``, a segfaulting native extension) stalls
or kills the whole service.  This module moves execution behind a
process boundary:

* **Workers** are spawn-started (never forked: the service is heavily
  threaded, and forking a threaded parent is undefined behavior-adjacent
  everywhere and broken on macOS).  Each worker receives
  :class:`~repro.exec.spec.ExecutorSpec` payloads, builds the executor
  once per distinct spec fingerprint, and then serves ``run`` requests
  over its private pipe.
* **The pool is warm and elastic**: ``prewarm`` workers start eagerly,
  more spawn on demand up to ``max_workers``, and workers idle longer
  than ``idle_timeout`` are retired down to ``min_workers``
  (:meth:`ProcessPool.reap_idle`, called opportunistically on release).
* **Crash detection and replacement**: a worker that dies mid-run
  (pipe EOF / dead process) is discarded and replaced; the run is
  retried on a fresh worker up to ``crash_retries`` times and then
  surfaces as :class:`WorkerCrashed`.  A run exceeding its timeout gets
  its (possibly hung) worker killed and surfaces as :class:`RunTimedOut`
  after ``timeout_retries`` retries.  Either way the failure is
  *deterministic and contained*: the session charged the run at entry
  and refunds it on the raised error (``DebugSession.evaluate``'s
  BaseException refund), so the paper-exact budget accounting is never
  corrupted by a replaced worker -- the fault-tolerant-reconfiguration
  stance of Jehl et al. applied to budget state.
* **Cross-process dedup**: with a ``store_path``, every worker consults
  the SQLite provenance store (the persistent tier of the service's
  ``ExecutionCache``) before executing and writes fresh outcomes
  through, so runs deduplicate across worker processes and across
  services sharing one database.

Worker lifecycle state machine (see ``docs/architecture.md``)::

    SPAWNING --ready--> IDLE --acquire--> BUSY --ok--> IDLE
        |                 |                 |--crash---> DISCARDED (replaced on demand)
        '--spawn failure  '--idle_timeout   '--timeout-> KILLED    (replaced on demand)
            -> error          -> RETIRED
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import socket
import threading
import time
import uuid
from collections.abc import Callable, Sequence

from ..concurrency.scheduler import SharedScheduler
from ..core.session import DebugSession
from ..core.types import Instance, Outcome
from .retry import RetryPolicy
from .spec import ExecutorSpec

__all__ = [
    "PoolShutDown",
    "ProcessExecutor",
    "ProcessPool",
    "ProcessPoolBackend",
    "RemoteRunError",
    "RunTimedOut",
    "WorkerCrashed",
]

_READY_TIMEOUT = 60.0  # spawn + import budget for a fresh worker
_JOIN_TIMEOUT = 2.0


def _child_trace(trace: dict | None) -> dict | None:
    """Derive a child trace-context dict: same ``trace_id``, fresh
    ``span_id``, parented on the given span.

    Mirrors ``repro.obs.trace.TraceContext.child`` without importing it
    -- ``exec`` sits *below* ``obs`` in the layering, so trace contexts
    cross this layer as plain JSON-safe dicts.
    """
    if not isinstance(trace, dict) or not isinstance(trace.get("trace_id"), str):
        return None
    child = {"trace_id": trace["trace_id"], "span_id": uuid.uuid4().hex[:16]}
    parent = trace.get("span_id")
    if isinstance(parent, str):
        child["parent_id"] = parent
    return child


def _worker_span(trace: dict | None) -> dict | None:
    """The span record a worker attaches to a traced reply: a child
    context minted *in the worker* plus where it ran."""
    child = _child_trace(trace)
    if child is None:
        return None
    return {"trace": child, "host": socket.gethostname(), "pid": os.getpid()}


class WorkerCrashed(RuntimeError):
    """A worker process died while serving a run (after any retries)."""

    def __init__(self, detail: str):
        super().__init__(f"worker process crashed: {detail}")


class RunTimedOut(RuntimeError):
    """A run exceeded its per-run timeout (after any retries)."""

    def __init__(self, timeout: float):
        super().__init__(f"pipeline run exceeded {timeout}s timeout")
        self.timeout = timeout


class RemoteRunError(RuntimeError):
    """The pipeline itself raised inside the worker (worker survives)."""

    def __init__(self, detail: str):
        super().__init__(f"pipeline raised in worker: {detail}")


class PoolShutDown(RuntimeError):
    """The pool rejected a run because it is shut down."""


def _worker_main(conn, store_path: str | None) -> None:
    """Worker process body: build executors on demand, serve runs.

    Messages in: ``("run", fingerprint, spec, workflow, values_dict)``
    (optionally extended with a sixth trace-context dict) or ``None``
    (shutdown).  Messages out: ``("ready", pid)`` once, then per run
    ``("ok", outcome_value, cost, from_store)`` -- extended with a
    fifth span record when the run was traced -- or
    ``("error", detail)``.  A pipeline that kills the process mid-run
    simply never answers -- the parent detects the EOF/dead process.
    """
    conn.send(("ready", os.getpid()))
    executors: dict[str, object] = {}
    store = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        __, fingerprint, spec, workflow, values = message[:5]
        trace = message[5] if len(message) > 5 else None
        span = _worker_span(trace)
        try:
            executor = executors.get(fingerprint)
            if executor is None:
                executor = executors[fingerprint] = spec.build()
            instance = Instance(values)
            if store_path is not None and store is None:
                from ..provenance.store import SQLiteProvenanceStore

                store = SQLiteProvenanceStore(store_path)
            if store is not None:
                try:
                    record = store.lookup(workflow, instance)
                except Exception:
                    record = None  # store trouble reads as a miss
                if record is not None:
                    reply = ("ok", record.outcome.value, record.cost, True)
                    conn.send(reply + (span,) if span else reply)
                    continue
            started = time.perf_counter()
            outcome = executor(instance)
            cost = time.perf_counter() - started
            if not isinstance(outcome, Outcome):
                raise TypeError(
                    f"executor returned {type(outcome).__name__}, not Outcome"
                )
            if store is not None:
                from ..provenance.record import ProvenanceRecord

                try:
                    store.upsert(
                        ProvenanceRecord(
                            workflow=workflow,
                            instance=instance,
                            outcome=outcome,
                            cost=cost,
                            created_at=time.time(),
                        )
                    )
                except Exception:
                    pass  # lost write-through must not fail the run
            reply = ("ok", outcome.value, cost, False)
            conn.send(reply + (span,) if span else reply)
        except Exception as error:
            try:
                conn.send(("error", repr(error)))
            except (BrokenPipeError, OSError):
                return


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("worker_id", "process", "conn", "runs")

    def __init__(self, ctx, worker_id: int, store_path: str | None):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.worker_id = worker_id
        self.conn = parent_conn
        self.runs = 0
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, store_path),
            name=f"repro-exec-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # parent keeps only its end; EOF then means death
        if not self.conn.poll(_READY_TIMEOUT):
            self.kill()
            raise WorkerCrashed(
                f"worker {worker_id} not ready within {_READY_TIMEOUT}s"
            )
        kind, __ = self.conn.recv()
        assert kind == "ready"

    def run(
        self,
        spec: ExecutorSpec,
        workflow: str,
        instance: Instance,
        timeout: float | None,
        trace: dict | None = None,
    ) -> tuple[Outcome, float, bool, dict | None]:
        """One round-trip; raises WorkerCrashed / RunTimedOut / RemoteRunError."""
        try:
            self.conn.send(
                (
                    "run",
                    spec.fingerprint,
                    spec,
                    workflow,
                    instance.as_dict(),
                    trace,
                )
            )
            if not self.conn.poll(timeout):
                raise RunTimedOut(timeout if timeout is not None else 0.0)
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            raise WorkerCrashed(
                f"worker {self.worker_id} (pid {self.process.pid}, "
                f"exitcode {self.process.exitcode}): {error!r}"
            ) from None
        self.runs += 1
        if reply[0] == "error":
            raise RemoteRunError(reply[1])
        __, outcome_value, cost, from_store = reply[:4]
        span = reply[4] if len(reply) > 4 else None
        return Outcome(outcome_value), cost, from_store, span

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - platform quirks
            pass
        self.process.join(_JOIN_TIMEOUT)
        self.conn.close()

    def stop(self) -> None:
        """Polite shutdown: ask, wait briefly, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(_JOIN_TIMEOUT)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


class ProcessPool:
    """Warm, elastic pool of spawn-safe pipeline worker processes.

    Args:
        max_workers: hard cap on live worker processes.
        min_workers: floor the idle reaper will not shrink below.
        prewarm: workers started eagerly at construction (warm pool);
            capped to ``max_workers``.
        idle_timeout: seconds an idle worker may linger beyond
            ``min_workers`` before :meth:`reap_idle` retires it.
        run_timeout: default per-run wall-clock cap; None disables.
            A timed-out run's worker is killed and replaced (a hung
            pipeline cannot occupy a slot forever).
        crash_retries: how many times a run whose worker *died* is
            retried on a fresh worker before :class:`WorkerCrashed`
            propagates.  Deterministic pipelines make the retry safe;
            the budget is charged once either way (errors refund).
        timeout_retries: same for timed-out runs (default 0: a hang is
            assumed deterministic, so retrying would just double the
            stall).
        retry_policy: a full :class:`~repro.exec.retry.RetryPolicy`
            (attempt budgets + exponential backoff + jitter) shared
            with the remote pool.  Overrides the two integer shorthands
            when given; the default policy built from them preserves
            the historical zero-delay behavior exactly.
        store_path: optional SQLite provenance database path; workers
            then dedupe runs through the persistent tier (lookup before
            execute, write-through after).
        acquire_timeout: cap on waiting for a free worker slot (guards
            against pool-sizing deadlocks; generous default).
    """

    def __init__(
        self,
        max_workers: int = 4,
        min_workers: int = 0,
        prewarm: int = 0,
        idle_timeout: float = 30.0,
        run_timeout: float | None = None,
        crash_retries: int = 1,
        timeout_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        store_path: str | None = None,
        acquire_timeout: float = 300.0,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if not 0 <= min_workers <= max_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")
        if retry_policy is None:
            retry_policy = RetryPolicy(
                crash_retries=crash_retries, timeout_retries=timeout_retries
            )
        self.max_workers = max_workers
        self.min_workers = min_workers
        self.idle_timeout = idle_timeout
        self.run_timeout = run_timeout
        self.retry_policy = retry_policy
        self.crash_retries = retry_policy.crash_retries
        self.timeout_retries = retry_policy.timeout_retries
        self.store_path = store_path
        self._acquire_timeout = acquire_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._condition = threading.Condition(threading.Lock())
        self._idle: list[tuple[_Worker, float]] = []  # LIFO: last is warmest
        self._live = 0
        self._next_id = 0
        self._shutdown = False
        self._stats = {
            "runs": 0,
            "store_hits": 0,
            "spawned": 0,
            "retired": 0,
            "crashes": 0,
            "timeouts": 0,
            "retries": 0,
            "replaced": 0,
            "backoff_seconds": 0.0,
        }
        self._batch_scheduler: SharedScheduler | None = None
        self._sizer = None  # AdaptiveSizer attaches itself (stats surface)
        for __ in range(min(prewarm, max_workers)):
            with self._condition:
                worker_id = self._reserve_slot_locked()
            worker = self._spawn_reserved(worker_id)
            with self._condition:
                self._idle.append((worker, time.monotonic()))

    # -- Introspection -------------------------------------------------------
    @property
    def live_workers(self) -> int:
        with self._condition:
            return self._live

    @property
    def idle_workers(self) -> int:
        with self._condition:
            return len(self._idle)

    def stats(self) -> dict[str, object]:
        with self._condition:
            snapshot: dict[str, object] = dict(self._stats)
            snapshot["live_workers"] = self._live
            snapshot["idle_workers"] = len(self._idle)
        snapshot["max_workers"] = self.max_workers
        sizer = self._sizer
        if sizer is not None:
            snapshot["autoscale"] = sizer.stats()
        return snapshot

    def attach_sizer(self, sizer) -> None:
        """Surface an :class:`~repro.exec.autoscale.AdaptiveSizer`'s
        decision trail through this pool's :meth:`stats`."""
        self._sizer = sizer

    # -- Worker lifecycle ----------------------------------------------------
    def _reserve_slot_locked(self) -> int:
        """Claim one live slot under the lock; returns the worker id.

        Reserving (the ``_live`` increment) and spawning are separate
        steps so the ``max_workers`` cap is enforced atomically while
        the slow process start happens outside the lock -- concurrent
        acquires cannot overshoot the cap.
        """
        worker_id = self._next_id
        self._next_id += 1
        self._live += 1
        self._stats["spawned"] += 1
        return worker_id

    def _spawn_reserved(self, worker_id: int) -> _Worker:
        """Spawn the worker for an already-reserved slot (no lock held)."""
        try:
            return _Worker(self._ctx, worker_id, self.store_path)
        except BaseException:
            with self._condition:
                self._live -= 1
                self._condition.notify()
            raise

    def _acquire(self) -> _Worker:
        deadline = time.monotonic() + self._acquire_timeout
        with self._condition:
            while True:
                if self._shutdown:
                    raise PoolShutDown("process pool is shut down")
                while self._idle:
                    worker, __ = self._idle.pop()
                    if worker.alive():
                        return worker
                    # An idle worker died in place (e.g. OOM-killed):
                    # drop it and keep looking.
                    self._live -= 1
                    self._stats["crashes"] += 1
                    self._stats["replaced"] += 1
                if self._live < self.max_workers:
                    worker_id = self._reserve_slot_locked()
                    break  # slot claimed; spawn outside the lock
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no worker slot within {self._acquire_timeout}s"
                    )
                self._condition.wait(min(remaining, 1.0))
        return self._spawn_reserved(worker_id)

    def _release(self, worker: _Worker) -> None:
        with self._condition:
            if self._shutdown:
                self._live -= 1
                self._condition.notify()
            else:
                self._idle.append((worker, time.monotonic()))
                self._condition.notify()
                worker = None  # type: ignore[assignment]
        if worker is not None:
            worker.stop()
            return
        self.reap_idle()

    def _discard(self, worker: _Worker, *, timed_out: bool) -> None:
        """Kill a crashed or hung worker and free its slot."""
        worker.kill()
        with self._condition:
            self._live -= 1
            self._stats["replaced"] += 1
            if timed_out:
                self._stats["timeouts"] += 1
            else:
                self._stats["crashes"] += 1
            self._condition.notify()

    def reap_idle(self) -> int:
        """Retire idle workers past ``idle_timeout`` down to ``min_workers``.

        Called opportunistically after every release; tests and
        long-lived owners may call it directly.  Returns the number of
        workers retired.
        """
        now = time.monotonic()
        retired: list[_Worker] = []
        with self._condition:
            keep: list[tuple[_Worker, float]] = []
            for worker, since in self._idle:  # oldest first
                excess = self._live - len(retired) > self.min_workers
                if excess and now - since >= self.idle_timeout:
                    retired.append(worker)
                else:
                    keep.append((worker, since))
            self._idle = keep
            self._live -= len(retired)
            self._stats["retired"] += len(retired)
            if retired:
                self._condition.notify_all()
        for worker in retired:
            worker.stop()
        return len(retired)

    def scale_to(self, target: int) -> int:
        """Move the live-worker count toward ``target`` (the autoscale
        mechanism; policy lives in :mod:`repro.exec.autoscale`).

        Growing prewarms idle workers up to ``min(target, max_workers)``;
        shrinking retires *idle* workers (busy ones finish their runs)
        down to ``max(target, min_workers)``, ignoring ``idle_timeout``.
        Returns the signed delta actually applied.
        """
        grown = 0
        while True:
            with self._condition:
                if self._shutdown or self._live >= min(target, self.max_workers):
                    break
                worker_id = self._reserve_slot_locked()
            worker = self._spawn_reserved(worker_id)
            with self._condition:
                self._idle.append((worker, time.monotonic()))
                self._condition.notify()
            grown += 1
        if grown:
            return grown
        retired: list[_Worker] = []
        with self._condition:
            floor = max(target, self.min_workers)
            while self._idle and self._live - len(retired) > floor:
                worker, __ = self._idle.pop(0)  # oldest first
                retired.append(worker)
            self._live -= len(retired)
            self._stats["retired"] += len(retired)
            if retired:
                self._condition.notify_all()
        for worker in retired:
            worker.stop()
        return -len(retired)

    # -- Running -------------------------------------------------------------
    def run(
        self,
        spec: ExecutorSpec,
        workflow: str,
        instance: Instance,
        timeout: float | None = None,
    ) -> Outcome:
        """Execute one instance on a worker process (thread-safe).

        Retries crashed (and optionally timed-out) runs on replacement
        workers within the configured bounds, then raises.  The caller
        -- normally ``DebugSession.evaluate`` -- treats the raise as an
        uncompleted run and refunds its budget charge.
        """
        outcome, __, __, __ = self.run_traced(
            spec, workflow, instance, timeout=timeout
        )
        return outcome

    def run_traced(
        self,
        spec: ExecutorSpec,
        workflow: str,
        instance: Instance,
        timeout: float | None = None,
        trace: dict | None = None,
    ) -> tuple[Outcome, float, bool, dict | None]:
        """:meth:`run` plus provenance: ``(outcome, cost_seconds,
        from_store, span)``.  ``trace`` (a trace-context dict) rides the
        worker pipe; a traced reply carries the worker-minted child span
        (``{"trace": ..., "host": ..., "pid": ...}``), else None.
        """
        if timeout is None:
            timeout = self.run_timeout
        retry = self.retry_policy.start()
        while True:
            worker = self._acquire()
            try:
                outcome, cost, from_store, span = worker.run(
                    spec, workflow, instance, timeout, trace
                )
            except RunTimedOut:
                self._discard(worker, timed_out=True)
                self._backoff(retry, "timeout")
            except WorkerCrashed:
                self._discard(worker, timed_out=False)
                self._backoff(retry, "crash")
            except BaseException:
                # RemoteRunError and friends: the worker answered and is
                # healthy; only the pipeline failed.
                self._release(worker)
                raise
            else:
                self._release(worker)
                with self._condition:
                    self._stats["runs"] += 1
                    if from_store:
                        self._stats["store_hits"] += 1
                return outcome, cost, from_store, span

    def _backoff(self, retry, kind: str) -> None:
        """Consume one retry of ``kind`` (re-raising when exhausted) and
        sleep out its backoff delay."""
        delay = retry.next_delay(kind)
        if delay is None:
            raise
        with self._condition:
            self._stats["retries"] += 1
            self._stats["backoff_seconds"] += delay
        if delay > 0:
            time.sleep(delay)

    # -- Session-facing adapters ---------------------------------------------
    def executor(
        self,
        spec: ExecutorSpec,
        workflow: str = "process",
        timeout: float | None = None,
        trace: dict | None = None,
        emit: Callable | None = None,
    ) -> "ProcessExecutor":
        """An :class:`~repro.core.types.Executor` view over this pool."""
        return ProcessExecutor(
            self, spec, workflow=workflow, timeout=timeout, trace=trace, emit=emit
        )

    _backend_ids = itertools.count(1)

    def backend(self, job_id: str | None = None) -> "ProcessPoolBackend":
        """An :class:`~repro.core.session.ExecutionBackend` over this pool.

        Each backend gets its own queue in the pool-owned dispatch
        scheduler (distinct default job ids), so concurrent sessions'
        batches interleave fairly.
        """
        if job_id is None:
            job_id = f"process-batch-{next(self._backend_ids)}"
        return ProcessPoolBackend(self, job_id=job_id)

    def _dispatch_scheduler(self) -> SharedScheduler:
        """The pool-owned thread scheduler batch backends fan out on.

        One scheduler serves every backend of this pool (backends are
        distinguished by their per-job queues), created lazily and torn
        down with the pool -- no per-session thread pools to leak.
        """
        with self._condition:
            if self._shutdown:
                raise PoolShutDown("process pool is shut down")
            if self._batch_scheduler is None:
                self._batch_scheduler = SharedScheduler(
                    workers=self.max_workers, name="process-batch"
                )
            return self._batch_scheduler

    def session(
        self,
        spec: ExecutorSpec,
        space,
        workflow: str = "process",
        history=None,
        budget=None,
        parallel: bool = True,
        timeout: float | None = None,
        progress: Callable | None = None,
    ) -> DebugSession:
        """A ready-wired :class:`~repro.core.session.DebugSession`.

        ``parallel=True`` attaches a :class:`ProcessPoolBackend` so
        speculative batches (Section 4.3) fan out across worker
        processes; ``parallel=False`` keeps the session serial (fully
        deterministic) while still executing each run out-of-process.
        """
        return DebugSession(
            self.executor(spec, workflow=workflow, timeout=timeout),
            space,
            history=history,
            budget=budget,
            backend=self.backend() if parallel else None,
            progress=progress,
        )

    # -- Lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every worker; subsequent runs raise :class:`PoolShutDown`."""
        with self._condition:
            if self._shutdown:
                return
            self._shutdown = True
            idle = [worker for worker, __ in self._idle]
            self._idle.clear()
            self._live -= len(idle)
            scheduler = self._batch_scheduler
            self._batch_scheduler = None
            self._condition.notify_all()
        if scheduler is not None:
            scheduler.shutdown()
        for worker in idle:
            worker.stop()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ProcessExecutor:
    """Route single executor calls to the process pool.

    The in-process analogue is
    :class:`~repro.concurrency.scheduler.ScheduledExecutor`; here every
    call ships ``(spec, workflow, instance)`` to a worker process and
    blocks for the outcome, so a serial session transparently executes
    out-of-process and a scheduler-driven service can point its worker
    threads at one of these to bridge threads -> processes.
    """

    def __init__(
        self,
        pool: ProcessPool,
        spec: ExecutorSpec,
        workflow: str = "process",
        timeout: float | None = None,
        trace: dict | None = None,
        emit: Callable | None = None,
    ):
        self._pool = pool
        self._spec = spec
        self._workflow = workflow
        self._timeout = timeout
        self._trace = trace
        self._emit = emit

    @property
    def pool(self) -> ProcessPool:
        return self._pool

    @property
    def spec(self) -> ExecutorSpec:
        return self._spec

    def __call__(self, instance: Instance) -> Outcome:
        if self._trace is None:
            return self._pool.run(
                self._spec, self._workflow, instance, timeout=self._timeout
            )
        # Traced dispatch: the executor mints a per-run child span
        # (parented on the job's context), ships it across the process
        # boundary, and publishes both edges of the hop -- the dispatch
        # from this process and the completion with the worker-minted
        # grandchild span (which carries the worker's host/pid).  Both
        # events set their trace fields explicitly, so the bus's bound
        # job context does not overwrite them (setdefault merge).
        dispatch = _child_trace(self._trace)
        if self._emit is not None and dispatch is not None:
            self._emit(
                "run_dispatched",
                {**dispatch, "workflow": self._workflow},
            )
        outcome, cost, from_store, span = self._pool.run_traced(
            self._spec,
            self._workflow,
            instance,
            timeout=self._timeout,
            trace=dispatch,
        )
        if self._emit is not None:
            payload = {
                "workflow": self._workflow,
                "outcome": outcome.value,
                "seconds": cost,
                "from_store": bool(from_store),
            }
            if isinstance(span, dict):
                trace = span.get("trace")
                if isinstance(trace, dict):
                    payload.update(trace)
                for key in ("worker", "host", "pid"):
                    if key in span:
                        payload[key] = span[key]
            elif dispatch is not None:
                payload.update(dispatch)
            self._emit("run_completed", payload)
        return outcome


class ProcessPoolBackend:
    """Per-session :class:`~repro.core.session.ExecutionBackend` view.

    Batch tasks are session closures (they charge the budget and record
    history in the parent), so they cannot cross the process boundary
    themselves; the backend fans them out on the *pool-owned*
    :class:`~repro.concurrency.scheduler.SharedScheduler` thread pool
    (one per pool, sized to it, torn down with it), and each task's
    inner executor call is what crosses into a worker process.
    Budget-aware ``skip`` hooks are honored exactly like the in-process
    scheduler backend.
    """

    def __init__(self, pool: ProcessPool, job_id: str = "process-batch"):
        self._pool = pool
        self.job_id = job_id
        self._scheduler = pool._dispatch_scheduler()

    @property
    def parallel(self) -> bool:
        return True

    @property
    def pool(self) -> ProcessPool:
        return self._pool

    def run_batch(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        requests = [
            self._scheduler.submit(
                self.job_id, task, skip=getattr(task, "skip", None)
            )
            for task in tasks
        ]
        return [request.result() for request in requests]
