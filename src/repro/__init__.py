"""repro: a full reproduction of BugDoc (Lourenço, Freire & Shasha, SIGMOD 2020).

BugDoc automatically infers minimal definitive root causes of failures
in black-box computational pipelines by iteratively creating and
executing new pipeline instances.  This package provides:

* :mod:`repro.core` -- the debugging algorithms (Shortcut, Stacked
  Shortcut, Debugging Decision Trees) and the root-cause model;
* :mod:`repro.pipeline` -- a workflow engine and execution engines,
  including the parallel dispatcher;
* :mod:`repro.provenance` -- execution-history capture and stores;
* :mod:`repro.service` -- the concurrent debugging job service: a
  shared scheduler, a cross-session execution cache, and the
  :class:`~repro.service.DebugService` front end;
* :mod:`repro.exec` -- the process-level execution subsystem: a warm,
  elastic pool of spawn-safe pipeline worker processes
  (:class:`~repro.exec.ProcessPool`) and the job progress event bus
  (:class:`~repro.exec.EventBus`);
* :mod:`repro.baselines` -- Data X-Ray, Explanation Tables, SMAC, and
  random search, reimplemented for comparison;
* :mod:`repro.synth` -- the synthetic pipeline benchmark of Section 5.1;
* :mod:`repro.workloads` -- the real-world case-study pipelines of
  Section 5.3 (ML classification, Data Polygamy, GAN training,
  DBSherlock) as laptop-scale simulators;
* :mod:`repro.eval` -- the paper's evaluation protocol and metrics.

Quickstart::

    from repro.core import BugDoc, Algorithm
    from repro.workloads import ml_pipeline

    executor = ml_pipeline.make_executor()
    history = ml_pipeline.table1_history(executor)
    bugdoc = BugDoc(executor, ml_pipeline.make_space(), history=history)
    report = bugdoc.find_one(Algorithm.SHORTCUT)
    print(report.explanation)   # library_version = '2.0'
"""

from . import (
    baselines,
    core,
    eval,
    exec,
    extensions,
    pipeline,
    provenance,
    service,
    synth,
    workloads,
)
from .core import (
    Algorithm,
    BugDoc,
    BugDocReport,
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    Disjunction,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
)

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "BugDoc",
    "BugDocReport",
    "Comparator",
    "Conjunction",
    "DDTConfig",
    "DebugSession",
    "Disjunction",
    "ExecutionHistory",
    "Instance",
    "InstanceBudget",
    "Outcome",
    "Parameter",
    "ParameterKind",
    "ParameterSpace",
    "Predicate",
    "__version__",
    "baselines",
    "core",
    "eval",
    "exec",
    "extensions",
    "pipeline",
    "provenance",
    "service",
    "synth",
    "workloads",
]
