"""Neutral concurrency primitives shared across the package layers.

This package sits at the *bottom* of the layering: it may import only
the standard library, so both :mod:`repro.pipeline` (the execution
engines) and :mod:`repro.service` (the multi-tenant job service) can
build on the same primitives without creating an import cycle --
``pipeline`` no longer reaches *up* into ``service`` for them, and
``service`` stays free to depend on ``pipeline``.

* :mod:`~repro.concurrency.singleflight` -- a keyed memoizer with
  single-flight execution (concurrent requests for one uncached key run
  the producer exactly once) and an optional LRU bound.
* :mod:`~repro.concurrency.scheduler` -- a fair, elastic worker pool
  multiplexing many clients' requests, with budget-aware skips and
  optional weighted fairness.
"""

from .scheduler import (
    ScheduledExecutor,
    SchedulerBackend,
    SchedulerStats,
    SharedScheduler,
)
from .singleflight import CacheStats, SingleFlightCache

__all__ = [
    "CacheStats",
    "ScheduledExecutor",
    "SchedulerBackend",
    "SchedulerStats",
    "SharedScheduler",
    "SingleFlightCache",
]
