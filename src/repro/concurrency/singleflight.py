"""Keyed memoization with single-flight execution.

:class:`SingleFlightCache` is the primitive under both the service
layer's cross-session :class:`~repro.service.cache.ExecutionCache` and
the pipeline layer's :class:`~repro.pipeline.runner.CachingExecutor`.
It knows nothing about workflows, instances, or provenance: keys are
arbitrary hashables and values are produced by caller-supplied thunks.

Single-flight semantics: when several threads ask for the same uncached
key concurrently, exactly one of them (the *leader*) runs the producer;
the others block until the leader finishes and then share its value.
If the leader's execution raises, the flight is abandoned and one
waiter takes over as the new leader -- a transient failure never
poisons the cache and never fails bystander callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "SingleFlightCache"]


@dataclass
class CacheStats:
    """Counters describing how much work a cache saved.

    Attributes:
        hits: requests served from the in-memory tier.
        persistent_hits: requests served from a persistent tier (used by
            the service layer's two-tier cache; always 0 for a bare
            :class:`SingleFlightCache`).
        misses: requests that required an inner execution.
        executions: inner executions actually performed (>= misses is
            impossible; < misses happens only via persistent hits).
        coalesced: requests that joined an in-flight execution instead
            of starting their own (the single-flight savings).
        failures: inner executions that raised.
        evictions: memory-tier entries dropped by the LRU bound.
    """

    hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    executions: int = 0
    coalesced: int = 0
    failures: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.persistent_hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of requests that did not execute the producer."""
        total = self.requests
        if total == 0:
            return 0.0
        return 1.0 - (self.executions / total)

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "executions": self.executions,
            "coalesced": self.coalesced,
            "failures": self.failures,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _Flight:
    """One in-progress execution that concurrent callers may join."""

    __slots__ = ("done", "outcome", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.outcome: object = None
        self.error: BaseException | None = None


class SingleFlightCache:
    """A minimal keyed memoizer with single-flight execution.

    Args:
        max_entries: optional LRU bound on stored values for long-lived
            services.  Only settled values are evicted -- in-flight
            executions are tracked separately, so single-flight
            semantics are unaffected: a request for an evicted key is an
            ordinary miss whose re-execution concurrent callers join.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._lock = threading.Lock()
        self._values: OrderedDict[object, object] = OrderedDict()
        self._flights: dict[object, _Flight] = {}
        self._max_entries = max_entries
        self.stats = CacheStats()

    @property
    def max_entries(self) -> int | None:
        return self._max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._values

    def peek(self, key: object) -> object | None:
        """The cached value for ``key``, or None (no execution, no stats)."""
        with self._lock:
            return self._values.get(key)

    def put(self, key: object, value: object) -> None:
        """Seed the cache (e.g. from prior provenance) free of charge."""
        with self._lock:
            self._insert(key, value)

    def _insert(self, key: object, value: object) -> None:
        """Store a value and apply the LRU bound.  Caller holds the lock."""
        self._values[key] = value
        self._values.move_to_end(key)
        if self._max_entries is not None:
            while len(self._values) > self._max_entries:
                self._values.popitem(last=False)
                self.stats.evictions += 1

    def get_or_execute(self, key: object, produce):
        """Return the cached value for ``key``, executing ``produce`` at
        most once across all concurrent callers.

        A failed leader hands the flight to one blocked waiter (which
        re-runs ``produce``); the exception propagates only to the
        caller whose execution raised.
        """
        counted = False  # each logical request books exactly one stat
        while True:
            with self._lock:
                if key in self._values:
                    if not counted:
                        self.stats.hits += 1
                    self._values.move_to_end(key)
                    return self._values[key]
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
                    if not counted:
                        self.stats.misses += 1
                        counted = True
                else:
                    leader = False
                    if not counted:
                        self.stats.coalesced += 1
                        counted = True
            if leader:
                try:
                    value = produce()
                except BaseException:
                    with self._lock:
                        self.stats.failures += 1
                        # Abandon the flight: the next waiter to wake
                        # becomes the new leader on its retry loop.
                        self._flights.pop(key, None)
                    flight.error = RuntimeError("leader execution failed")
                    flight.done.set()
                    raise
                with self._lock:
                    self.stats.executions += 1
                    self._insert(key, value)
                    self._flights.pop(key, None)
                flight.outcome = value
                flight.done.set()
                return value
            flight.done.wait()
            if flight.error is None:
                # The coalesced request was served by the leader.  The
                # flight carries the value directly: with a bounded
                # cache the entry may already have been evicted by the
                # time this waiter wakes.
                with self._lock:
                    if key in self._values:
                        self._values.move_to_end(key)
                return flight.outcome
            # Leader failed: loop and contend to become the new leader.
