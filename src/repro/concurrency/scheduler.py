"""Shared scheduler: one worker pool multiplexing many clients.

The paper's prototype "contains a dispatching component that runs in a
single thread and spawns multiple pipeline instances in parallel" with
"five execution engine workers" (Section 5).  The seed repo reproduced
that *within* one session; this module generalizes it to a shared pool:
every client (a debugging job, a parallel session) enqueues its
instance-execution requests here, and a single elastic pool of worker
threads drains them with

* **fairness** -- requests are queued per job and dispatched round-robin
  across jobs, so one job's thousand-instance batch cannot starve a
  job that needs two instances;
* **weighted fairness** (optional, off by default) -- jobs may carry an
  integer priority weight; a job with weight ``w`` is served up to
  ``w`` consecutive requests per round-robin turn.  With the flag off
  (or with all weights at 1) dispatch order is exactly the unweighted
  FIFO round-robin;
* **budget awareness** -- a request may carry a ``skip`` predicate
  (typically "this job's budget is exhausted and the instance is not a
  free history hit"); skipped requests resolve immediately without
  occupying a worker;
* **elasticity** -- workers are spawned lazily up to the configured
  limit and exit after an idle timeout, so short-lived sessions (the
  test-suite creates thousands) do not leak threads.

This module is deliberately neutral: it lives below both
:mod:`repro.pipeline` and :mod:`repro.service` and imports only the
standard library.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from collections.abc import Callable, Sequence

__all__ = [
    "SharedScheduler",
    "SchedulerBackend",
    "ScheduledExecutor",
    "SchedulerStats",
]

_DEFAULT_IDLE_TIMEOUT = 2.0

# Which scheduler (if any) the current thread is a worker of.  Lets
# ScheduledExecutor run inline when already on a worker slot instead of
# deadlocking on a nested submit.
_worker_context = threading.local()


class _Request:
    """One unit of work: run ``thunk`` on a pool worker, deliver the result."""

    __slots__ = ("job_id", "thunk", "skip", "done", "value", "error", "skipped")

    def __init__(
        self,
        job_id: str,
        thunk: Callable[[], object],
        skip: Callable[[], bool] | None = None,
    ):
        self.job_id = job_id
        self.thunk = thunk
        self.skip = skip
        self.done = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None
        self.skipped = False

    def result(self) -> object:
        self.done.wait()
        if self.error is not None:
            raise self.error
        return self.value


class SchedulerStats:
    """Aggregate dispatch counters (all fields monotonically increase)."""

    def __init__(self) -> None:
        self.submitted = 0
        self.dispatched = 0
        self.skipped = 0
        self.errors = 0
        self.dispatched_by_job: dict[str, int] = {}
        self.dispatched_by_worker: dict[int, int] = {}

    def snapshot(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "dispatched": self.dispatched,
            "skipped": self.skipped,
            "errors": self.errors,
            "dispatched_by_job": dict(self.dispatched_by_job),
            "dispatched_by_worker": dict(self.dispatched_by_worker),
        }


class SharedScheduler:
    """Fair, elastic dispatcher shared by every job of a service.

    Args:
        workers: maximum concurrent pipeline executions.  This is the
            service-wide cap; jobs share it no matter how many are
            active (the Figure 6 prototype used five).
        idle_timeout: seconds an idle worker thread lingers before
            exiting.  Workers respawn on demand, so this only trades a
            little thread-start latency against leaked-thread count.
        name: prefix for worker thread names (diagnostics).
        weighted_fairness: enable priority-weighted round-robin.  Off by
            default; when off, per-job priorities are ignored and the
            pop order is exactly the historical FIFO round-robin.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        workers: int = 5,
        idle_timeout: float = _DEFAULT_IDLE_TIMEOUT,
        name: str | None = None,
        weighted_fairness: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.weighted_fairness = weighted_fairness
        self._idle_timeout = idle_timeout
        self._name = name or f"scheduler-{next(self._ids)}"
        # Two wait queues over ONE lock: workers block on _condition for
        # new work; wait_quiescent callers block on _settled.  Separate
        # conditions keep submit's single notify() from waking a
        # quiescence waiter instead of an idle worker.
        lock = threading.Lock()
        self._condition = threading.Condition(lock)
        self._settled = threading.Condition(lock)
        self._queues: dict[str, deque[_Request]] = {}
        self._ring: deque[str] = deque()  # job ids with pending requests
        self._priorities: dict[str, int] = {}
        self._credits: dict[str, int] = {}
        self._unsettled: dict[str, int] = {}  # submitted, not yet resolved
        self._pending = 0
        self._live_workers = 0
        self._idle_workers = 0
        self._free_slots = set(range(workers))
        self._shutdown = False
        self.stats = SchedulerStats()

    # -- Priorities ----------------------------------------------------------
    def set_priority(self, job_id: str, weight: int) -> None:
        """Give ``job_id`` a round-robin weight (takes effect with
        ``weighted_fairness``; a weight of 1 is the unweighted default).
        """
        if weight < 1:
            raise ValueError("priority weight must be at least 1")
        with self._condition:
            self._priorities[job_id] = weight

    def clear_priority(self, job_id: str) -> None:
        """Forget a job's weight (long-lived schedulers call this on job
        completion so per-job state does not accrete)."""
        with self._condition:
            self._priorities.pop(job_id, None)
            self._credits.pop(job_id, None)

    # -- Submission ----------------------------------------------------------
    def submit(
        self,
        job_id: str,
        thunk: Callable[[], object],
        skip: Callable[[], bool] | None = None,
    ) -> _Request:
        """Enqueue one thunk for ``job_id``; returns a waitable request."""
        request = _Request(job_id, thunk, skip)
        with self._condition:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            queue = self._queues.get(job_id)
            if queue is None:
                queue = self._queues[job_id] = deque()
            if not queue:
                self._ring.append(job_id)
            queue.append(request)
            self._pending += 1
            self._unsettled[job_id] = self._unsettled.get(job_id, 0) + 1
            self.stats.submitted += 1
            self._spawn_if_needed()
            self._condition.notify()
        return request

    def run_batch(
        self,
        job_id: str,
        thunks: Sequence[Callable[[], object]],
        skip: Callable[[], bool] | None = None,
    ) -> list[object]:
        """Submit a batch and wait for every element (order preserved)."""
        requests = [self.submit(job_id, thunk, skip) for thunk in thunks]
        return [request.result() for request in requests]

    # -- Job-facing adapters -------------------------------------------------
    def backend(self, job_id: str) -> "SchedulerBackend":
        """An :class:`~repro.core.session.ExecutionBackend` view for one job."""
        return SchedulerBackend(self, job_id)

    def executor(self, job_id: str, inner) -> "ScheduledExecutor":
        """Wrap ``inner`` so each call runs on the shared pool."""
        return ScheduledExecutor(self, job_id, inner)

    # -- Introspection -------------------------------------------------------
    def stats_snapshot(self) -> dict[str, object]:
        """A self-consistent copy of the dispatch counters.

        Taken under the scheduler lock, so invariants like
        ``dispatched + skipped <= submitted`` hold in the snapshot even
        while workers are running (the bare ``stats`` object mutates
        live).
        """
        with self._condition:
            return self.stats.snapshot()

    @property
    def pending(self) -> int:
        with self._condition:
            return self._pending

    def wait_quiescent(
        self, job_id: str, timeout: float | None = None
    ) -> bool:
        """Block until none of ``job_id``'s requests are queued or
        executing; returns False on timeout.

        A caller that abandons outstanding requests (e.g. a cancelled
        batch unwinding on its first error) uses this to let in-flight
        siblings settle before reading shared state they mutate --
        otherwise a request still mid-execution on a worker could be
        observed half-done.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._settled:
            while self._unsettled.get(job_id, 0) > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._settled.wait(remaining)
        return True

    def _settle(self, request: _Request) -> None:
        """Book a request as resolved (caller holds the shared lock)."""
        count = self._unsettled.get(request.job_id, 0) - 1
        if count > 0:
            self._unsettled[request.job_id] = count
        else:
            self._unsettled.pop(request.job_id, None)
            self._settled.notify_all()  # wake wait_quiescent callers

    @property
    def live_workers(self) -> int:
        with self._condition:
            return self._live_workers

    # -- Lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        """Reject new work and resolve queued requests with an error.

        In-flight thunks finish; workers exit once their queues drain.
        """
        with self._condition:
            self._shutdown = True
            error = RuntimeError("scheduler shut down")
            for queue in self._queues.values():
                while queue:
                    request = queue.popleft()
                    request.error = error
                    self._settle(request)
                    request.done.set()
            self._queues.clear()
            self._ring.clear()
            self._credits.clear()
            self._pending = 0
            self._condition.notify_all()

    def __enter__(self) -> "SharedScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- Internals -----------------------------------------------------------
    def _spawn_if_needed(self) -> None:
        """Spawn a worker if work is pending and the pool is not full.

        Caller must hold ``self._condition``.
        """
        if self._pending > self._idle_workers and self._live_workers < self.workers:
            slot = min(self._free_slots)
            self._free_slots.remove(slot)
            self._live_workers += 1
            thread = threading.Thread(
                target=self._worker_loop,
                args=(slot,),
                name=f"{self._name}-worker-{slot}",
                daemon=True,
            )
            thread.start()

    def _pop_next(self) -> _Request | None:
        """Round-robin pop: next request of the next job in the ring.

        With ``weighted_fairness``, a job at the front of the ring keeps
        its position until its priority-weight credits are spent, so a
        job with weight ``w`` is served up to ``w`` consecutive requests
        per turn.  Caller must hold ``self._condition``.
        """
        while self._ring:
            job_id = self._ring.popleft()
            queue = self._queues.get(job_id)
            if not queue:
                self._queues.pop(job_id, None)
                self._credits.pop(job_id, None)
                continue
            request = queue.popleft()
            self._pending -= 1
            if queue:
                if self.weighted_fairness:
                    credits = self._credits.get(job_id)
                    if credits is None:
                        credits = self._priorities.get(job_id, 1)
                    credits -= 1
                    if credits > 0:
                        self._credits[job_id] = credits
                        self._ring.appendleft(job_id)  # keep the turn
                    else:
                        self._credits.pop(job_id, None)
                        self._ring.append(job_id)  # rotate: others go first
                else:
                    self._ring.append(job_id)  # rotate: other jobs go first
            else:
                # Drop drained per-job queues so a long-lived scheduler
                # does not accrete state for every job it ever served.
                del self._queues[job_id]
                self._credits.pop(job_id, None)
            return request
        return None

    def _retire_worker(self, slot: int) -> None:
        """Return a worker's slot to the free pool (caller holds lock)."""
        self._live_workers -= 1
        self._free_slots.add(slot)

    def _worker_loop(self, slot: int) -> None:
        _worker_context.scheduler = self
        while True:
            with self._condition:
                request = self._pop_next()
                while request is None:
                    if self._shutdown:
                        self._retire_worker(slot)
                        return
                    self._idle_workers += 1
                    signaled = self._condition.wait(timeout=self._idle_timeout)
                    self._idle_workers -= 1
                    request = self._pop_next()
                    if request is None and not signaled:
                        # Idle too long and still nothing queued: shrink.
                        self._retire_worker(slot)
                        return
            self._execute(request, slot)

    def _execute(self, request: _Request, slot: int) -> None:
        if request.skip is not None:
            try:
                should_skip = request.skip()
            except Exception:
                should_skip = False
            if should_skip:
                with self._condition:
                    self.stats.skipped += 1
                    self._settle(request)
                request.skipped = True
                request.done.set()
                return
        try:
            request.value = request.thunk()
        except BaseException as error:  # delivered to the waiter, not lost
            request.error = error
        with self._condition:
            self.stats.dispatched += 1
            if request.error is not None:
                self.stats.errors += 1
            self.stats.dispatched_by_job[request.job_id] = (
                self.stats.dispatched_by_job.get(request.job_id, 0) + 1
            )
            self.stats.dispatched_by_worker[slot] = (
                self.stats.dispatched_by_worker.get(slot, 0) + 1
            )
            self._settle(request)
        request.done.set()


class SchedulerBackend:
    """Per-job :class:`~repro.core.session.ExecutionBackend` over a scheduler.

    A :class:`~repro.core.session.DebugSession` configured with this
    backend fans its speculative batches (Section 4.3) out to the
    *shared* pool instead of a private one, so the service-wide worker
    cap and fairness policy apply to intra-job parallelism too.
    """

    def __init__(self, scheduler: SharedScheduler, job_id: str):
        self._scheduler = scheduler
        self.job_id = job_id

    @property
    def parallel(self) -> bool:
        return True

    @property
    def scheduler(self) -> SharedScheduler:
        return self._scheduler

    def run_batch(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        requests = [
            self._scheduler.submit(
                self.job_id, task, skip=getattr(task, "skip", None)
            )
            for task in tasks
        ]
        return [request.result() for request in requests]


class ScheduledExecutor:
    """Route single executor calls through the shared pool.

    Serial sessions (whose algorithms evaluate one instance at a time
    and depend on strict ordering for determinism) still benefit from
    the shared pool: each execution occupies one worker slot, so N
    concurrent jobs with serial sessions are collectively throttled and
    fairly interleaved by the scheduler.

    Calls made *from* one of this scheduler's own worker threads (e.g.
    a batch task evaluating its instance) run inline -- the thread
    already holds a worker slot, and a nested submit could deadlock a
    fully-occupied pool.
    """

    def __init__(self, scheduler: SharedScheduler, job_id: str, inner):
        self._scheduler = scheduler
        self._inner = inner
        self.job_id = job_id

    def __call__(self, instance):
        if getattr(_worker_context, "scheduler", None) is self._scheduler:
            return self._inner(instance)
        request = self._scheduler.submit(
            self.job_id, lambda: self._inner(instance)
        )
        return request.result()
