"""From-scratch classifiers for the Figure 1 machine-learning pipeline.

The paper's running example compares logistic regression, decision
trees, and gradient boosting across datasets under two versions of the
ML library, where version 2.0 contains an injected bug.  No third-party
ML library is available offline, so the estimators are implemented here
with numpy:

* :class:`LogisticRegressionClassifier` -- multinomial softmax
  regression trained with full-batch gradient descent;
* :class:`DecisionTreeClassifier` -- CART with Gini impurity;
* :class:`GradientBoostingClassifier` -- one-vs-rest boosted regression
  stumps on squared error of class indicators (a compact but genuine
  boosting implementation).

The *library version* is modeled explicitly: ``LibraryFacade`` exposes
``fit_predict`` keyed by estimator name and version string, and version
"2.0" injects the bug the debugging experiments hunt -- labels are
silently permuted during training, crippling every estimator exactly as
a broken release would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LogisticRegressionClassifier",
    "DecisionTreeClassifier",
    "GradientBoostingClassifier",
    "LibraryFacade",
    "cross_val_f1",
    "macro_f1",
    "ESTIMATOR_NAMES",
]

ESTIMATOR_NAMES = ("logistic_regression", "decision_tree", "gradient_boosting")


class LogisticRegressionClassifier:
    """Multinomial softmax regression, full-batch gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 200, l2: float = 1e-3):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        n_samples, n_features = X.shape
        n_classes = int(y.max()) + 1
        mean = X.mean(axis=0)
        scale = X.std(axis=0) + 1e-9
        self._mean, self._scale = mean, scale
        Xs = (X - mean) / scale
        W = np.zeros((n_features, n_classes))
        b = np.zeros(n_classes)
        onehot = np.eye(n_classes)[y]
        for __ in range(self.epochs):
            logits = Xs @ W + b
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probabilities = exp / exp.sum(axis=1, keepdims=True)
            gradient = Xs.T @ (probabilities - onehot) / n_samples + self.l2 * W
            W -= self.learning_rate * gradient
            b -= self.learning_rate * (probabilities - onehot).mean(axis=0)
        self._weights, self._bias = W, b
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("classifier is not fitted")
        Xs = (X - self._mean) / self._scale
        return np.argmax(Xs @ self._weights + self._bias, axis=1)


class DecisionTreeClassifier:
    """CART with Gini impurity and threshold splits."""

    def __init__(self, max_depth: int = 12, min_samples_split: int = 2):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self._tree: dict | None = None
        self._n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        self._n_classes = int(y.max()) + 1
        self._tree = self._build(X, y, 0)
        return self

    def _gini(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        counts = np.bincount(y, minlength=self._n_classes)
        proportions = counts / len(y)
        return float(1.0 - np.sum(proportions**2))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> dict:
        majority = int(np.bincount(y, minlength=self._n_classes).argmax())
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or len(np.unique(y)) == 1
        ):
            return {"leaf": majority}
        best_gain, best = 0.0, None
        parent_gini = self._gini(y)
        for feature in range(X.shape[1]):
            values = np.unique(X[:, feature])
            if len(values) < 2:
                continue
            # Candidate thresholds: midpoints of up to 16 quantile cuts.
            if len(values) > 16:
                cuts = np.quantile(values, np.linspace(0.05, 0.95, 16))
            else:
                cuts = (values[:-1] + values[1:]) / 2.0
            for threshold in np.unique(cuts):
                mask = X[:, feature] <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == len(y):
                    continue
                gain = parent_gini - (
                    n_left / len(y) * self._gini(y[mask])
                    + (len(y) - n_left) / len(y) * self._gini(y[~mask])
                )
                if gain > best_gain:
                    best_gain, best = gain, (feature, float(threshold), mask)
        if best is None:
            return {"leaf": majority}
        feature, threshold, mask = best
        return {
            "feature": feature,
            "threshold": threshold,
            "left": self._build(X[mask], y[mask], depth + 1),
            "right": self._build(X[~mask], y[~mask], depth + 1),
        }

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        out = np.empty(len(X), dtype=np.int64)
        for i, row in enumerate(X):
            node = self._tree
            while "leaf" not in node:
                node = (
                    node["left"]
                    if row[node["feature"]] <= node["threshold"]
                    else node["right"]
                )
            out[i] = node["leaf"]
        return out


class _Stump:
    """Depth-1 regression tree (boosting weak learner)."""

    __slots__ = ("feature", "threshold", "left_value", "right_value")

    def fit(self, X: np.ndarray, residuals: np.ndarray) -> "_Stump":
        best_sse = np.inf
        self.feature, self.threshold = 0, 0.0
        self.left_value = self.right_value = float(residuals.mean())
        for feature in range(X.shape[1]):
            values = np.unique(X[:, feature])
            if len(values) < 2:
                continue
            cuts = (
                np.quantile(values, np.linspace(0.1, 0.9, 8))
                if len(values) > 8
                else (values[:-1] + values[1:]) / 2.0
            )
            for threshold in np.unique(cuts):
                mask = X[:, feature] <= threshold
                if not mask.any() or mask.all():
                    continue
                left = residuals[mask].mean()
                right = residuals[~mask].mean()
                sse = float(
                    ((residuals[mask] - left) ** 2).sum()
                    + ((residuals[~mask] - right) ** 2).sum()
                )
                if sse < best_sse:
                    best_sse = sse
                    self.feature, self.threshold = feature, float(threshold)
                    self.left_value, self.right_value = float(left), float(right)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        mask = X[:, self.feature] <= self.threshold
        return np.where(mask, self.left_value, self.right_value)


class GradientBoostingClassifier:
    """One-vs-rest gradient boosting with regression stumps."""

    def __init__(self, n_estimators: int = 30, learning_rate: float = 0.4):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self._stumps: list[list[_Stump]] = []
        self._base: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        n_classes = int(y.max()) + 1
        indicators = np.eye(n_classes)[y]
        self._base = indicators.mean(axis=0)
        predictions = np.tile(self._base, (len(y), 1))
        self._stumps = [[] for __ in range(n_classes)]
        for __round in range(self.n_estimators):
            for cls in range(n_classes):
                residuals = indicators[:, cls] - predictions[:, cls]
                stump = _Stump().fit(X, residuals)
                self._stumps[cls].append(stump)
                predictions[:, cls] += self.learning_rate * stump.predict(X)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._base is None:
            raise RuntimeError("classifier is not fitted")
        scores = np.tile(self._base, (len(X), 1))
        for cls, stumps in enumerate(self._stumps):
            for stump in stumps:
                scores[:, cls] += self.learning_rate * stump.predict(X)
        return np.argmax(scores, axis=1)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F-measure over the classes present in ``y_true``."""
    classes = np.unique(y_true)
    scores = []
    for cls in classes:
        tp = int(np.sum((y_pred == cls) & (y_true == cls)))
        fp = int(np.sum((y_pred == cls) & (y_true != cls)))
        fn = int(np.sum((y_pred != cls) & (y_true == cls)))
        if tp == 0:
            scores.append(0.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


def _make_estimator(name: str):
    if name == "logistic_regression":
        return LogisticRegressionClassifier()
    if name == "decision_tree":
        return DecisionTreeClassifier()
    if name == "gradient_boosting":
        return GradientBoostingClassifier()
    raise KeyError(f"unknown estimator {name!r}; choose from {ESTIMATOR_NAMES}")


def cross_val_f1(
    estimator_name: str,
    X: np.ndarray,
    y: np.ndarray,
    folds: int = 10,
    corrupt_labels: bool = False,
    seed: int = 77,
) -> float:
    """K-fold cross-validated macro F-measure (the pipeline's score module).

    ``corrupt_labels`` injects the library-version-2.0 bug: a large
    fraction of *training* labels is permuted before fitting, which is
    invisible at the API surface but destroys the learned model --
    exactly the class of silent regression the paper's examples
    describe.
    """
    rng = np.random.default_rng(seed)
    indexes = rng.permutation(len(y))
    folds = max(2, min(folds, len(y)))
    splits = np.array_split(indexes, folds)
    scores = []
    for fold in range(folds):
        test_idx = splits[fold]
        train_idx = np.concatenate([splits[i] for i in range(folds) if i != fold])
        y_train = y[train_idx].copy()
        if corrupt_labels:
            n_corrupt = int(0.9 * len(y_train))
            victims = rng.choice(len(y_train), size=n_corrupt, replace=False)
            y_train[victims] = rng.integers(0, int(y.max()) + 1, size=n_corrupt)
        model = _make_estimator(estimator_name)
        model.fit(X[train_idx], y_train)
        scores.append(macro_f1(y[test_idx], model.predict(X[test_idx])))
    return float(np.mean(scores))


@dataclass(frozen=True)
class LibraryFacade:
    """The versioned "ML library" the pipeline calls into.

    Version "1.0" behaves correctly.  Version "2.0" ships the injected
    training-label corruption bug.  ``buggy_versions`` can be overridden
    to move the bug (useful for tests).
    """

    buggy_versions: tuple[str, ...] = ("2.0",)

    def score(
        self,
        estimator_name: str,
        version: str,
        X: np.ndarray,
        y: np.ndarray,
        folds: int = 10,
    ) -> float:
        """Cross-validated score under the requested library version."""
        return cross_val_f1(
            estimator_name,
            X,
            y,
            folds=folds,
            corrupt_labels=version in self.buggy_versions,
        )
