"""DBSherlock / TPC-C performance-anomaly workload (Section 5.3).

The paper's third case study re-uses the DBSherlock dataset: TPC-C
workload logs with "a total of 202 numerical statistics" per run and 10
classes of injected performance anomalies, labeled normal/anomalous.
Two special challenges carry over to this reproduction:

1. *Historical mode* -- new instances cannot be executed; BugDoc reads
   only part of the provenance and early-stops hypotheses whose test
   instance is absent (served here by
   :class:`~repro.pipeline.runner.ReplayExecutor`).
2. *Dimensionality* -- 202 statistics are reduced by feature selection
   and bucketing "to 15 parameters with 8 possible values (buckets)
   each".

Substitution (see DESIGN.md): the TPC-C server logs are generated
synthetically.  Each of the 202 statistics has its own baseline
distribution; each anomaly class shifts a characteristic subset of
statistics (its *signature*), modeled on DBSherlock's anomaly classes
(workload spike, I/O saturation, backup, CPU saturation, lock
contention, ...).  Because the signatures are planted, exact ground
truth for precision/recall and the 98%-accuracy holdout experiment is
available by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..core.history import ExecutionHistory
from ..core.predicates import Comparator, Conjunction, Predicate
from ..core.types import Instance, Outcome, Parameter, ParameterKind, ParameterSpace

__all__ = [
    "ANOMALY_CLASSES",
    "N_STATISTICS",
    "MetricLog",
    "DBSherlockCase",
    "generate_metric_log",
    "select_features",
    "bucketize",
    "build_case",
    "superset_classifier_accuracy",
]

N_STATISTICS = 202
"""Statistics per log entry, as in the DBSherlock dataset."""

N_BUCKETS = 8
N_SELECTED = 15

ANOMALY_CLASSES = (
    "workload_spike",
    "io_saturation",
    "db_backup",
    "table_restart",
    "cpu_saturation",
    "flush_log",
    "network_congestion",
    "lock_contention",
    "poor_query",
    "poor_physical_design",
)
"""The 10 anomaly classes of the DBSherlock experiments."""

# Statistic-index signatures: which of the 202 statistics each anomaly
# shifts, and by how many baseline standard deviations.
_SIGNATURES: dict[str, dict[int, float]] = {
    "workload_spike": {3: 6.0, 17: 5.0, 42: 4.5},
    "io_saturation": {55: 6.5, 56: 6.0, 90: 4.0},
    "db_backup": {101: 7.0, 55: 3.5},
    "table_restart": {120: 6.0, 121: 5.5, 9: 3.0},
    "cpu_saturation": {0: 7.0, 1: 6.0, 63: 3.5},
    "flush_log": {77: 6.0, 78: 5.0},
    "network_congestion": {140: 6.5, 141: 5.5, 142: 4.0},
    "lock_contention": {160: 7.0, 161: 6.0, 33: 3.0},
    "poor_query": {180: 6.0, 181: 5.0, 17: 2.5},
    "poor_physical_design": {195: 6.5, 196: 5.0, 90: 2.5},
}


@dataclass
class MetricLog:
    """Raw generated logs: a matrix of statistics plus labels.

    Attributes:
        X: float matrix, shape (n_rows, 202).
        labels: string label per row: "normal" or an anomaly class.
    """

    X: np.ndarray
    labels: list[str]

    @property
    def n_rows(self) -> int:
        return int(self.X.shape[0])


def generate_metric_log(
    n_normal: int = 240,
    n_per_anomaly: int = 60,
    seed: int = 0,
    classes: tuple[str, ...] = ANOMALY_CLASSES,
) -> MetricLog:
    """Generate TPC-C-style metric logs with planted anomaly signatures."""
    rng = np.random.default_rng(seed)
    means = rng.uniform(10.0, 1000.0, size=N_STATISTICS)
    scales = rng.uniform(1.0, 30.0, size=N_STATISTICS)

    rows = [rng.normal(means, scales, size=(n_normal, N_STATISTICS))]
    labels = ["normal"] * n_normal
    for anomaly in classes:
        if anomaly not in _SIGNATURES:
            raise KeyError(f"unknown anomaly class {anomaly!r}")
        block = rng.normal(means, scales, size=(n_per_anomaly, N_STATISTICS))
        for stat_index, shift in _SIGNATURES[anomaly].items():
            block[:, stat_index] += shift * scales[stat_index] * (
                1.0 + 0.15 * rng.standard_normal(n_per_anomaly)
            )
        rows.append(block)
        labels.extend([anomaly] * n_per_anomaly)
    X = np.concatenate(rows, axis=0)
    return MetricLog(X=X, labels=labels)


def select_features(log: MetricLog, k: int = N_SELECTED) -> list[int]:
    """Pick the ``k`` statistics most separating normal vs anomalous.

    Uses a classic between/within variance ratio (Fisher score) against
    the binary normal/anomalous split -- the paper "applied feature
    selection ... in order to increase the probability of configurations
    that share parameter-value combinations".
    """
    labels = np.array([label != "normal" for label in log.labels])
    normal = log.X[~labels]
    anomalous = log.X[labels]
    mean_gap = np.abs(normal.mean(axis=0) - anomalous.mean(axis=0))
    pooled = normal.std(axis=0) + anomalous.std(axis=0) + 1e-9
    scores = mean_gap / pooled
    ranked = np.argsort(-scores)
    return sorted(int(i) for i in ranked[:k])


def bucketize(
    log: MetricLog, features: list[int], n_buckets: int = N_BUCKETS
) -> tuple[ParameterSpace, list[Instance]]:
    """Quantile-bucket the selected statistics into ordinal parameters.

    Each selected statistic becomes an ordinal parameter ``stat_<i>``
    with domain ``0..n_buckets-1``; each log row becomes an instance of
    bucket indexes ("we ... aggregated the values in buckets").
    """
    edges: dict[int, np.ndarray] = {}
    for feature in features:
        column = log.X[:, feature]
        quantiles = np.quantile(column, np.linspace(0, 1, n_buckets + 1)[1:-1])
        edges[feature] = quantiles
    space = ParameterSpace(
        [
            Parameter(
                f"stat_{feature}",
                tuple(range(n_buckets)),
                ParameterKind.ORDINAL,
            )
            for feature in features
        ]
    )
    instances = []
    for row in log.X:
        assignment = {
            f"stat_{feature}": int(np.searchsorted(edges[feature], row[feature]))
            for feature in features
        }
        instances.append(Instance(assignment))
    return space, instances


@dataclass
class DBSherlockCase:
    """One debugging problem: a single anomaly class vs normal logs.

    Attributes:
        anomaly: the anomaly class under diagnosis.
        space: bucketized 15-parameter space.
        training: the "given" history (50% split) -- free provenance.
        budget_pool: additional logged instances the algorithms may
            "execute" via replay (25% split).
        holdout: unseen labeled instances for the accuracy experiment
            (25% split).
        true_causes: planted ground truth as bucket-threshold
            conjunctions (one per selected signature statistic).
    """

    anomaly: str
    space: ParameterSpace
    training: ExecutionHistory
    budget_pool: ExecutionHistory
    holdout: list[tuple[Instance, Outcome]]
    true_causes: list[Conjunction] = field(default_factory=list)

    def replay_log(self) -> ExecutionHistory:
        """Everything servable in historical mode: training + budget pool."""
        merged = self.training.copy()
        for evaluation in self.budget_pool:
            if merged.outcome_of(evaluation.instance) is None:
                merged.append(evaluation)
        return merged

    def make_session(self, budget: int | None = None) -> "DebugSession":
        """A historical-mode debug session over this case.

        New-instance requests are served from the budget pool via a
        :class:`~repro.pipeline.runner.ReplayExecutor`; the DDT suspect
        tester draws its variation candidates from the unread pool
        (the paper's "reading only part of provenance" simulation).
        """
        from ..core.budget import InstanceBudget
        from ..core.session import DebugSession
        from ..pipeline.runner import ReplayExecutor

        pool_instances = list(self.budget_pool.instances)

        def candidate_source(conjunction: Conjunction, count: int) -> list[Instance]:
            matching = [
                instance
                for instance in pool_instances
                if conjunction.satisfied_by(instance)
            ]
            return matching[:count]

        return DebugSession(
            ReplayExecutor(self.replay_log()),
            self.space,
            history=self.training.copy(),
            budget=InstanceBudget(budget),
            candidate_source=candidate_source,
        )


def _dedupe_contradictions(
    pairs: list[tuple[Instance, Outcome]],
) -> list[tuple[Instance, Outcome]]:
    """Drop rows whose bucket vector already appeared with the other outcome.

    Bucketization can (rarely) collapse a normal and an anomalous row to
    one vector; the deterministic-evaluation model (Definition 2)
    requires one outcome per instance, so later contradictions lose.
    """
    seen: dict[Instance, Outcome] = {}
    kept = []
    for instance, outcome in pairs:
        if instance in seen:
            if seen[instance] is outcome:
                kept.append((instance, outcome))
            continue
        seen[instance] = outcome
        kept.append((instance, outcome))
    return kept


def build_case(
    anomaly: str,
    seed: int = 0,
    n_normal: int = 240,
    n_per_anomaly: int = 60,
) -> DBSherlockCase:
    """Build the full debugging problem for one anomaly class.

    The 50/25/25 split follows the paper: "50% of the data was used for
    training; 25% was the budget for pipeline instances that any
    sub-method of BugDoc requested; and we create a 25% holdout".
    """
    if anomaly not in _SIGNATURES:
        raise KeyError(f"unknown anomaly class {anomaly!r}")
    log = generate_metric_log(
        n_normal=n_normal,
        n_per_anomaly=n_per_anomaly,
        seed=seed,
        classes=(anomaly,),
    )
    features = select_features(log)
    space, instances = bucketize(log, features)
    pairs = _dedupe_contradictions(
        [
            (instance, Outcome.FAIL if label != "normal" else Outcome.SUCCEED)
            for instance, label in zip(instances, log.labels)
        ]
    )
    rng = random.Random(seed + 99)
    rng.shuffle(pairs)
    n = len(pairs)
    train_pairs = pairs[: n // 2]
    budget_pairs = pairs[n // 2 : (3 * n) // 4]
    holdout_pairs = pairs[(3 * n) // 4 :]

    training = ExecutionHistory.from_pairs(train_pairs)
    budget_pool = ExecutionHistory.from_pairs(budget_pairs)

    # Ground truth: each signature statistic that survived feature
    # selection yields a singleton high-bucket cause; verify against the
    # actual log (the bucket threshold is where anomalies separate).
    true_causes = []
    replayable = train_pairs + budget_pairs + holdout_pairs
    for stat_index in _SIGNATURES[anomaly]:
        if stat_index not in features:
            continue
        name = f"stat_{stat_index}"
        for threshold in range(N_BUCKETS - 1, 0, -1):
            candidate = Conjunction(
                [Predicate(name, Comparator.GT, threshold - 1)]
            )
            supported = any(
                candidate.satisfied_by(i) and o is Outcome.FAIL
                for i, o in replayable
            )
            refuted = any(
                candidate.satisfied_by(i) and o is Outcome.SUCCEED
                for i, o in replayable
            )
            if supported and not refuted:
                true_causes.append(candidate)
                break

    return DBSherlockCase(
        anomaly=anomaly,
        space=space,
        training=training,
        budget_pool=budget_pool,
        holdout=holdout_pairs,
        true_causes=true_causes,
    )


def superset_classifier_accuracy(
    causes: list[Conjunction], holdout: list[tuple[Instance, Outcome]]
) -> float:
    """The paper's holdout experiment: predict failure by cause superset.

    "if the pipeline instance is a superset of a minimal root cause, we
    predict failure.  This method is accurate 98% of the time."
    """
    if not holdout:
        return 1.0
    correct = 0
    for instance, outcome in holdout:
        predicted_fail = any(cause.satisfied_by(instance) for cause in causes)
        actual_fail = outcome is Outcome.FAIL
        if predicted_fail == actual_fail:
            correct += 1
    return correct / len(holdout)
