"""Synthetic stand-ins for the paper's classification datasets.

Figure 1's machine-learning pipeline explores the Iris, Digits, and
Images datasets.  Shipping those is unnecessary for reproducing the
debugging behaviour -- what matters is that the datasets have different
difficulty so that estimator/dataset combinations land on both sides of
the evaluation threshold.  We generate Gaussian-blob classification
problems with controlled class separation:

* ``iris``   -- 3 well-separated classes, 4 features (easy);
* ``digits`` -- 10 moderately-separated classes, 16 features (medium);
* ``images`` -- 5 poorly-separated classes, 32 features (hard).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "load_dataset", "DATASET_NAMES"]

DATASET_NAMES = ("iris", "digits", "images")

_SPECS = {
    # name: (n_classes, n_features, n_per_class, separation)
    # Separation is per-feature; effective class distance grows with
    # sqrt(n_features), so higher-dimensional sets get smaller values.
    "iris": (3, 4, 40, 4.0),
    "digits": (10, 16, 25, 1.5),
    "images": (5, 32, 40, 0.9),
}


@dataclass(frozen=True)
class Dataset:
    """A classification dataset: features ``X`` and integer labels ``y``."""

    name: str
    X: np.ndarray
    y: np.ndarray

    @property
    def n_classes(self) -> int:
        return int(self.y.max()) + 1

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])


def load_dataset(name: str, seed: int = 1234) -> Dataset:
    """Deterministically generate one of the named datasets.

    Raises:
        KeyError: for an unknown dataset name.
    """
    if name not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    n_classes, n_features, n_per_class, separation = _SPECS[name]
    # Stable per-name offset: ``hash()`` is randomized per process, which
    # would make the "same" dataset differ across runs.
    name_offset = int.from_bytes(name.encode("utf-8")[:4].ljust(4, b"\0"), "big")
    rng = np.random.default_rng(seed + name_offset % 10_000)
    centers = rng.normal(0.0, separation, size=(n_classes, n_features))
    rows = []
    labels = []
    for cls in range(n_classes):
        rows.append(
            centers[cls] + rng.normal(0.0, 1.0, size=(n_per_class, n_features))
        )
        labels.append(np.full(n_per_class, cls, dtype=np.int64))
    X = np.concatenate(rows, axis=0)
    y = np.concatenate(labels, axis=0)
    order = rng.permutation(len(y))
    return Dataset(name=name, X=X[order], y=y[order])
