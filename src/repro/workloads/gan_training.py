"""GAN training pipeline simulator (Section 5.3).

The paper applies BugDoc to a modified SAGAN trained on CIFAR-10,
hunting *mode collapse*: "Our evaluation function sets a threshold on
the Frechet Inception Distance (FID) metric, which is a proxy for mode
collapse.  This pipeline specified only 6 parameters limited to 5
possible values" -- with each configuration taking ~10 hours to train.

Substitution (see DESIGN.md): training is replaced by a deterministic
FID model grounded in the published GAN-stability findings the paper
cites (Lucic et al. 2017; Brock et al. 2018): collapse is driven by the
discriminator/generator learning-rate imbalance, by disabling spectral
normalization at high momentum, and partially mitigated by longer
training.  The simulator exposes the same 6x5 black box; the planted
collapse regions are the ground truth the harness scores against.
"""

from __future__ import annotations

from ..core.predicates import Comparator, Conjunction, Predicate
from ..core.types import Instance, Outcome, Parameter, ParameterKind, ParameterSpace
from ..pipeline.evaluation import WorkflowExecutor, predicate_evaluation
from ..pipeline.module import Module
from ..pipeline.workflow import Workflow

__all__ = ["FID_THRESHOLD", "make_space", "make_workflow", "make_executor", "true_causes"]

FID_THRESHOLD = 60.0
"""Evaluation: succeed iff the final FID stays below this (no collapse)."""

_LR_VALUES = (1e-5, 5e-5, 1e-4, 5e-4, 1e-3)
_STEP_VALUES = (20_000, 50_000, 100_000, 200_000, 400_000)


def make_space() -> ParameterSpace:
    """6 parameters x 5 values, matching the paper's GAN pipeline."""
    return ParameterSpace(
        [
            Parameter("lr_generator", _LR_VALUES, ParameterKind.ORDINAL),
            Parameter("lr_discriminator", _LR_VALUES, ParameterKind.ORDINAL),
            Parameter("beta1", (0.0, 0.25, 0.5, 0.75, 0.9), ParameterKind.ORDINAL),
            Parameter(
                "normalization",
                ("spectral", "batch", "layer", "instance", "none"),
            ),
            Parameter("steps", _STEP_VALUES, ParameterKind.ORDINAL),
            Parameter("batch_size", (16, 32, 64, 128, 256), ParameterKind.ORDINAL),
        ]
    )


def true_causes() -> list[Conjunction]:
    """Planted minimal definitive causes of mode collapse (FID >= threshold).

    1. A discriminator overwhelming the generator: ``lr_discriminator >=
       5e-4`` while ``lr_generator <= 5e-5`` collapses regardless of the
       other knobs.
    2. High momentum without spectral normalization: ``beta1 > 0.75``
       (i.e. 0.9) with ``normalization = none`` destabilizes training.
    """
    return [
        Conjunction(
            [
                Predicate("lr_discriminator", Comparator.GT, 1e-4),
                Predicate("lr_generator", Comparator.LE, 5e-5),
            ]
        ),
        Conjunction(
            [
                Predicate("beta1", Comparator.GT, 0.75),
                Predicate("normalization", Comparator.EQ, "none"),
            ]
        ),
    ]


def simulate_fid(
    lr_generator: float,
    lr_discriminator: float,
    beta1: float,
    normalization: str,
    steps: int,
    batch_size: int,
) -> float:
    """Deterministic FID model with the planted collapse regions.

    Healthy runs land in the 18-55 range (longer training and bigger
    batches help); collapsed runs jump far above the threshold.
    """
    collapse = (
        lr_discriminator > 1e-4 and lr_generator <= 5e-5
    ) or (beta1 > 0.75 and normalization == "none")
    if collapse:
        # Collapsed FID: worse with the imbalance magnitude.
        imbalance = lr_discriminator / max(lr_generator, 1e-6)
        return 120.0 + 10.0 * min(imbalance, 50.0) ** 0.5

    base = 48.0
    # Training length and batch size improve (reduce) FID sub-linearly.
    base -= 6.0 * (_STEP_VALUES.index(steps))
    base -= 1.5 * ((16, 32, 64, 128, 256).index(batch_size))
    # Mild penalties for non-spectral normalization and extreme rates.
    if normalization != "spectral":
        base += 4.0
    if lr_generator >= 5e-4:
        base += 3.0
    if beta1 >= 0.75:
        base += 2.0
    return max(base, 12.0)


def make_workflow() -> Workflow:
    """train -> compute FID, as a two-module workflow."""
    space = make_space()
    workflow = Workflow("gan-training", space, sink=("fid", "out"))
    workflow.add_module(
        Module(
            "train",
            lambda lr_generator, lr_discriminator, beta1, normalization, steps, batch_size: {
                "out": dict(
                    lr_generator=lr_generator,
                    lr_discriminator=lr_discriminator,
                    beta1=beta1,
                    normalization=normalization,
                    steps=steps,
                    batch_size=batch_size,
                )
            },
            inputs=(),
            parameters=(
                "lr_generator",
                "lr_discriminator",
                "beta1",
                "normalization",
                "steps",
                "batch_size",
            ),
        )
    )
    workflow.add_module(
        Module(
            "fid",
            lambda model: simulate_fid(**model),
            inputs=("model",),
        )
    )
    workflow.connect("train", "out", "fid", "model")
    return workflow


def make_executor() -> WorkflowExecutor:
    """Black box: succeed iff FID < threshold (no mode collapse)."""
    return WorkflowExecutor(
        make_workflow(),
        predicate_evaluation(lambda fid: float(fid) < FID_THRESHOLD),
    )


def oracle(instance: Instance) -> Outcome:
    """Closed-form ground truth (used only to validate the simulator)."""
    fid = simulate_fid(
        instance["lr_generator"],
        instance["lr_discriminator"],
        instance["beta1"],
        instance["normalization"],
        instance["steps"],
        instance["batch_size"],
    )
    return Outcome.FAIL if fid >= FID_THRESHOLD else Outcome.SUCCEED
