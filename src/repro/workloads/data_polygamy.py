"""Data Polygamy experiment pipeline simulator (Section 5.3).

The paper debugs a VisTrails pipeline reproducing a Data Polygamy
(Chirigati et al., SIGMOD 2016) significance experiment: "The parameter
space is large, consisting of 2 boolean, 3 categorical (3 to 10
possible values), and 7 numerical parameters.  Each instance takes 20
minutes to run ... Given a set of pipeline instances, some of which
crash and some of which execute to completion, we want to find at least
one minimal set of parameter-values ... which cause the execution to
crash."

Substitution (see DESIGN.md): the 20-minute statistical pipeline is
replaced by a deterministic simulator over the same parameter-space
shape.  The simulated pipeline performs a miniature version of the real
computation (build spatio-temporal aggregates, run a permutation test)
and *crashes* -- raises, like real code -- under planted conditions
modeled on the failure classes the original experiment hit:

* resolution/aggregation mismatch: weekly resolution with the
  ``gradient`` significance method indexes past the end of the derived
  series (an off-by-one bug in a code path only that combination takes);
* a zero permutation count dividing by zero in the p-value estimate.

Ground truth is exported for the evaluation harness.
"""

from __future__ import annotations

import math

from ..core.predicates import Comparator, Conjunction, Predicate
from ..core.types import Instance, Outcome, Parameter, ParameterKind, ParameterSpace
from ..pipeline.evaluation import WorkflowExecutor, predicate_evaluation
from ..pipeline.module import Module
from ..pipeline.workflow import Workflow

__all__ = ["make_space", "make_workflow", "make_executor", "true_causes"]


def make_space() -> ParameterSpace:
    """2 boolean + 3 categorical + 7 numerical parameters (paper's shape)."""
    return ParameterSpace(
        [
            # Booleans.
            Parameter("fdr_correction", (False, True)),
            Parameter("restrict_outliers", (False, True)),
            # Categoricals (3 to 10 values).
            Parameter(
                "significance_method",
                ("montecarlo", "gradient", "analytic"),
            ),
            Parameter(
                "temporal_resolution", ("hour", "day", "week", "month")
            ),
            Parameter(
                "spatial_aggregation",
                ("city", "borough", "district", "tract", "block"),
            ),
            # Numericals (bucketed ordinals).
            Parameter("n_permutations", (0, 100, 500, 1000, 5000), ParameterKind.ORDINAL),
            Parameter("p_value_threshold", (0.001, 0.01, 0.05, 0.1), ParameterKind.ORDINAL),
            Parameter("n_datasets", (10, 50, 100, 200, 300), ParameterKind.ORDINAL),
            Parameter("feature_window", (1, 2, 4, 8, 16), ParameterKind.ORDINAL),
            Parameter("noise_level", (0.0, 0.1, 0.2, 0.4), ParameterKind.ORDINAL),
            Parameter("min_support", (1, 5, 10, 25), ParameterKind.ORDINAL),
            Parameter("seed_bucket", (0, 1, 2, 3, 4, 5, 6, 7), ParameterKind.ORDINAL),
        ]
    )


def true_causes() -> list[Conjunction]:
    """The planted minimal definitive crash causes."""
    return [
        Conjunction(
            [
                Predicate("temporal_resolution", Comparator.EQ, "week"),
                Predicate("significance_method", Comparator.EQ, "gradient"),
            ]
        ),
        Conjunction([Predicate("n_permutations", Comparator.EQ, 0)]),
    ]


def _build_series(
    temporal_resolution: str, feature_window: int, n_datasets: int, seed_bucket: int
) -> list[float]:
    """Derive the aggregate feature series the significance test consumes."""
    lengths = {"hour": 48, "day": 30, "week": 8, "month": 12}
    length = lengths[temporal_resolution]
    return [
        math.sin(0.7 * i + seed_bucket) * math.log1p(n_datasets)
        for i in range(max(2, length // max(feature_window, 1)))
    ]


def _significance(
    series: list[float],
    significance_method: str,
    temporal_resolution: str,
    n_permutations: int,
    noise_level: float,
) -> float:
    """The (simulated) statistical test; hosts the planted bugs."""
    if significance_method == "gradient":
        # Off-by-one reproduction: the gradient path assumes at least
        # `len(series)` forward differences, which only weekly-resolution
        # series (the shortest) violate -- an IndexError, as in the real
        # failure class.
        window = len(series) if temporal_resolution == "week" else len(series) - 1
        gradient = [series[i + 1] - series[i] for i in range(window)]
        statistic = sum(abs(g) for g in gradient) / len(gradient)
    elif significance_method == "montecarlo":
        statistic = sum(series) / len(series)
    else:  # analytic
        statistic = max(series) - min(series)
    # Permutation-based p-value: a zero permutation count divides by zero.
    extreme = sum(
        1
        for k in range(n_permutations)
        if abs(math.sin(k * 12.9898)) * (1.0 + noise_level) >= abs(statistic)
    )
    return extreme / n_permutations


def make_workflow() -> Workflow:
    """Assemble the simulated Data Polygamy experiment DAG."""
    space = make_space()
    workflow = Workflow("data-polygamy", space, sink=("hypothesis_test", "out"))
    workflow.add_module(
        Module(
            "build_features",
            lambda temporal_resolution, feature_window, n_datasets, seed_bucket: (
                _build_series(
                    temporal_resolution, feature_window, n_datasets, seed_bucket
                )
            ),
            inputs=(),
            parameters=(
                "temporal_resolution",
                "feature_window",
                "n_datasets",
                "seed_bucket",
            ),
        )
    )
    workflow.add_module(
        Module(
            "clean",
            lambda series, restrict_outliers, min_support: (
                [s for s in series if not restrict_outliers or abs(s) < 10.0]
                or series[: max(min_support, 1)]
            ),
            inputs=("series",),
            parameters=("restrict_outliers", "min_support"),
        )
    )
    workflow.add_module(
        Module(
            "hypothesis_test",
            lambda series, significance_method, temporal_resolution, n_permutations, noise_level, p_value_threshold, fdr_correction, spatial_aggregation: {
                "out": _significance(
                    series,
                    significance_method,
                    temporal_resolution,
                    n_permutations,
                    noise_level,
                )
                <= (
                    p_value_threshold / (2.0 if fdr_correction else 1.0)
                )
            },
            inputs=("series",),
            parameters=(
                "significance_method",
                "temporal_resolution",
                "n_permutations",
                "noise_level",
                "p_value_threshold",
                "fdr_correction",
                "spatial_aggregation",
            ),
        )
    )
    workflow.connect("build_features", "out", "clean", "series")
    workflow.connect("clean", "out", "hypothesis_test", "series")
    return workflow


def make_executor() -> WorkflowExecutor:
    """Black box for BugDoc: any crash is the failure under investigation.

    The evaluation accepts every completed run (the experiment debugs
    *crashes*, not statistical quality), so ``fail`` means "the pipeline
    raised".
    """
    return WorkflowExecutor(
        make_workflow(),
        predicate_evaluation(lambda result: True),
        crash_is_fail=True,
    )


def oracle(instance: Instance) -> Outcome:
    """Closed-form ground truth (used only to validate the simulator)."""
    crash = (
        instance["temporal_resolution"] == "week"
        and instance["significance_method"] == "gradient"
    ) or instance["n_permutations"] == 0
    return Outcome.FAIL if crash else Outcome.SUCCEED
