"""The Figure 1 machine-learning pipeline, as a real workflow.

Reads a dataset, splits it, trains an estimator under a chosen library
version, and scores it with cross-validation -- wired through the
workflow engine so that BugDoc debugs an *actual* executing pipeline,
not a stub.  The planted bug is library version "2.0" (silent
training-label corruption), reproducing Tables 1-2: version 1.0 runs
score well on every dataset/estimator pair, version 2.0 runs fail the
``score >= 0.6`` evaluation.

The module also exports :func:`table1_history`, the paper's initial
provenance (Table 1), so examples and tests can replay the Shortcut
walk-through of Example 1 against live executions.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.history import ExecutionHistory
from ..core.predicates import Comparator, Conjunction, Predicate
from ..core.types import Instance, Parameter, ParameterSpace
from ..pipeline.evaluation import WorkflowExecutor, threshold_evaluation
from ..pipeline.module import Module
from ..pipeline.workflow import Workflow
from .classifiers import ESTIMATOR_NAMES, LibraryFacade
from .datasets import DATASET_NAMES, load_dataset

__all__ = [
    "SCORE_THRESHOLD",
    "make_space",
    "make_workflow",
    "make_executor",
    "table1_history",
    "true_cause",
]

SCORE_THRESHOLD = 0.6
"""Example 1's evaluation: succeed iff the F-measure is at least 0.6."""

_FOLDS = 5  # laptop-scale stand-in for the paper's 10-fold CV


def make_space() -> ParameterSpace:
    """Dataset x Estimator x LibraryVersion, as in Tables 1-2."""
    return ParameterSpace(
        [
            Parameter("dataset", DATASET_NAMES),
            Parameter("estimator", ESTIMATOR_NAMES),
            Parameter("library_version", ("1.0", "2.0")),
        ]
    )


@lru_cache(maxsize=64)
def _cached_score(dataset: str, estimator: str, version: str) -> float:
    """Train-and-score, memoized: the pipeline is deterministic, and
    debugging algorithms legitimately revisit configurations."""
    data = load_dataset(dataset)
    return LibraryFacade().score(estimator, version, data.X, data.y, folds=_FOLDS)


def make_workflow() -> Workflow:
    """Assemble the Figure 1 DAG: read -> split/train/evaluate -> score."""
    space = make_space()
    workflow = Workflow("ml-classification", space, sink=("score", "out"))
    workflow.add_module(
        Module(
            "read_dataset",
            lambda dataset: load_dataset(dataset),
            inputs=(),
            parameters=("dataset",),
        )
    )
    workflow.add_module(
        Module(
            "score",
            lambda data, estimator, library_version: _cached_score(
                data.name, estimator, library_version
            ),
            inputs=("data",),
            parameters=("estimator", "library_version"),
        )
    )
    workflow.connect("read_dataset", "out", "score", "data")
    return workflow


def make_executor() -> WorkflowExecutor:
    """The black-box executor BugDoc debugs: workflow + score >= 0.6."""
    return WorkflowExecutor(make_workflow(), threshold_evaluation(SCORE_THRESHOLD))


def true_cause() -> Conjunction:
    """Ground truth: library version 2.0 is the minimal definitive cause."""
    return Conjunction([Predicate("library_version", Comparator.EQ, "2.0")])


def table1_history(executor: WorkflowExecutor | None = None) -> ExecutionHistory:
    """The paper's Table 1: three previously-run instances.

    The instances are *actually executed* through the workflow so the
    recorded outcomes are real; with the planted bug they evaluate
    exactly as in the paper (two succeed on version 1.0, the gradient
    boosting run on version 2.0 fails).
    """
    executor = executor or make_executor()
    history = ExecutionHistory()
    for assignment in (
        {"dataset": "iris", "estimator": "logistic_regression", "library_version": "1.0"},
        {"dataset": "digits", "estimator": "decision_tree", "library_version": "1.0"},
        {"dataset": "iris", "estimator": "gradient_boosting", "library_version": "2.0"},
    ):
        instance = Instance(assignment)
        history.record(instance, executor(instance), result=executor.last_result)
    return history
