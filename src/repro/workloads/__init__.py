"""Real-world pipeline simulators (substrates S15-S18, Section 5.3).

Each workload exposes the same black-box surface the paper debugs --
a :class:`~repro.core.types.ParameterSpace` plus an executor -- with
planted, documented ground truth (see DESIGN.md for the substitutions):

* :mod:`~repro.workloads.ml_pipeline` -- the Figure 1 classification
  pipeline over real (from-scratch) estimators with a buggy library
  version;
* :mod:`~repro.workloads.data_polygamy` -- the crash-debugging VisTrails
  experiment (12 parameters);
* :mod:`~repro.workloads.gan_training` -- SAGAN mode-collapse hunting
  (6 parameters x 5 values, FID threshold);
* :mod:`~repro.workloads.dbsherlock` -- TPC-C performance anomalies in
  historical (replay-only) mode, 202 stats reduced to 15 x 8 buckets.
"""

from . import data_polygamy, dbsherlock, gan_training, ml_pipeline
from .classifiers import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LibraryFacade,
    LogisticRegressionClassifier,
    cross_val_f1,
    macro_f1,
)
from .datasets import DATASET_NAMES, Dataset, load_dataset

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "DecisionTreeClassifier",
    "GradientBoostingClassifier",
    "LibraryFacade",
    "LogisticRegressionClassifier",
    "cross_val_f1",
    "data_polygamy",
    "dbsherlock",
    "gan_training",
    "load_dataset",
    "macro_f1",
    "ml_pipeline",
]
