"""Evaluation procedures: mapping pipeline results to succeed / fail.

Definition 2 of the paper: "the evaluation procedure will be code that
looks at some property of the result of a given pipeline instance".
This module provides the common shapes -- threshold tests (the running
F-measure >= 0.6 example), arbitrary predicates, and the crash-to-fail
adapter used when the *failure mode under investigation is the crash
itself* (the Data Polygamy case study).
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.types import Instance, Outcome
from .module import ModuleError
from .workflow import Workflow

__all__ = [
    "threshold_evaluation",
    "predicate_evaluation",
    "WorkflowExecutor",
]


def threshold_evaluation(
    minimum: float, key: Callable[[object], float] | None = None
) -> Callable[[object], Outcome]:
    """Succeed iff the (extracted) result is at least ``minimum``.

    Args:
        minimum: inclusive success threshold (``score >= minimum``).
        key: optional extractor from the raw sink value to a float.
    """

    def evaluate(result: object) -> Outcome:
        value = key(result) if key is not None else result
        return Outcome.SUCCEED if float(value) >= minimum else Outcome.FAIL  # type: ignore[arg-type]

    return evaluate


def predicate_evaluation(
    is_acceptable: Callable[[object], bool],
) -> Callable[[object], Outcome]:
    """Succeed iff ``is_acceptable(result)`` is truthy."""

    def evaluate(result: object) -> Outcome:
        return Outcome.SUCCEED if is_acceptable(result) else Outcome.FAIL

    return evaluate


class WorkflowExecutor:
    """Adapts a :class:`Workflow` + evaluation function to the
    :class:`~repro.core.types.Executor` black-box protocol.

    Args:
        workflow: the pipeline to run.
        evaluation: maps the sink value to an :class:`Outcome`.
        crash_is_fail: treat a module crash as ``FAIL`` (True, the
            common case) or re-raise it (False -- for debugging the
            debugger, not the pipeline).

    The executor records the raw sink value of the last run in
    :attr:`last_result` for callers that want to log it into provenance.
    """

    def __init__(
        self,
        workflow: Workflow,
        evaluation: Callable[[object], Outcome],
        crash_is_fail: bool = True,
    ):
        self._workflow = workflow
        self._evaluation = evaluation
        self._crash_is_fail = crash_is_fail
        self.last_result: object = None
        self.executions = 0

    @property
    def workflow(self) -> Workflow:
        return self._workflow

    def __call__(self, instance: Instance) -> Outcome:
        self.executions += 1
        try:
            result = self._workflow.execute(instance)
        except ModuleError:
            if self._crash_is_fail:
                self.last_result = None
                return Outcome.FAIL
            raise
        self.last_result = result.sink_value
        return self._evaluation(result.sink_value)
