"""The workflow engine: a VisTrails-lite DAG of modules.

A :class:`Workflow` wires :class:`~repro.pipeline.module.Module` output
ports to downstream input ports, validates acyclicity, and executes a
pipeline instance by running modules in topological order.  The paper's
real-world case studies orchestrate their experiments with VisTrails;
this engine reproduces the part BugDoc depends on -- parameterized
dataflow execution with provenance of every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..core.types import Instance, ParameterSpace
from .module import Module, ModuleError

__all__ = ["Connection", "WorkflowResult", "Workflow", "CycleError"]


class CycleError(ValueError):
    """The module graph contains a cycle; dataflow execution is impossible."""


@dataclass(frozen=True)
class Connection:
    """One dataflow edge: (source module, output port) -> (target, input port)."""

    source: str
    source_port: str
    target: str
    target_port: str

    def __str__(self) -> str:
        return f"{self.source}.{self.source_port} -> {self.target}.{self.target_port}"


@dataclass(frozen=True)
class WorkflowResult:
    """Everything one workflow execution produced.

    Attributes:
        outputs: values of every module output port, keyed
            ``(module name, port name)``.
        sink_value: the value of the designated sink port (the
            pipeline's "result" that evaluation functions inspect).
        trace: module names in execution order.
    """

    outputs: Mapping[tuple[str, str], object]
    sink_value: object
    trace: tuple[str, ...]


class Workflow:
    """A parameterized DAG of modules.

    Args:
        name: workflow name (for provenance).
        space: the manipulable parameter space of the pipeline
            (Definition 1); instances are validated against it before
            execution.
        sink: ``(module name, port name)`` whose value is the pipeline's
            result.  Defaults to the single output port of the last
            added module.
    """

    def __init__(
        self,
        name: str,
        space: ParameterSpace,
        sink: tuple[str, str] | None = None,
    ):
        self.name = name
        self.space = space
        self._modules: dict[str, Module] = {}
        self._connections: list[Connection] = []
        self._sink = sink

    # -- Construction -----------------------------------------------------
    def add_module(self, module: Module) -> "Workflow":
        """Add a module; returns self for chaining."""
        if module.name in self._modules:
            raise ValueError(f"duplicate module name {module.name!r}")
        unknown = set(module.parameters) - set(self.space.names)
        if unknown:
            raise ValueError(
                f"module {module.name!r} references parameters outside the "
                f"workflow space: {sorted(unknown)}"
            )
        self._modules[module.name] = module
        return self

    def connect(
        self, source: str, source_port: str, target: str, target_port: str
    ) -> "Workflow":
        """Wire an output port to a downstream input port."""
        if source not in self._modules:
            raise ValueError(f"unknown source module {source!r}")
        if target not in self._modules:
            raise ValueError(f"unknown target module {target!r}")
        src = self._modules[source]
        dst = self._modules[target]
        if source_port not in {p.name for p in src.outputs}:
            raise ValueError(f"module {source!r} has no output port {source_port!r}")
        if target_port not in {p.name for p in dst.inputs}:
            raise ValueError(f"module {target!r} has no input port {target_port!r}")
        taken = any(
            c.target == target and c.target_port == target_port
            for c in self._connections
        )
        if taken:
            raise ValueError(
                f"input port {target}.{target_port} already has a connection"
            )
        self._connections.append(Connection(source, source_port, target, target_port))
        self._topo_cache: tuple[str, ...] | None = None
        return self

    @property
    def modules(self) -> tuple[Module, ...]:
        return tuple(self._modules.values())

    @property
    def connections(self) -> tuple[Connection, ...]:
        return tuple(self._connections)

    @property
    def sink(self) -> tuple[str, str]:
        if self._sink is not None:
            return self._sink
        if not self._modules:
            raise ValueError("workflow has no modules")
        last = list(self._modules.values())[-1]
        return (last.name, last.outputs[0].name)

    # -- Validation --------------------------------------------------------
    def topological_order(self) -> tuple[str, ...]:
        """Module names in a valid execution order.

        Raises:
            CycleError: if the connection graph is cyclic.
        """
        in_degree = {name: 0 for name in self._modules}
        children: dict[str, set[str]] = {name: set() for name in self._modules}
        for connection in self._connections:
            if connection.target not in children[connection.source]:
                children[connection.source].add(connection.target)
                in_degree[connection.target] += 1
        ready = [name for name, degree in in_degree.items() if degree == 0]
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for child in sorted(children[current]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._modules):
            raise CycleError(f"workflow {self.name!r} contains a cycle")
        return tuple(order)

    def validate(self) -> None:
        """Check structural well-formedness: acyclic, all inputs wired."""
        self.topological_order()
        wired = {(c.target, c.target_port) for c in self._connections}
        for module in self._modules.values():
            for port in module.inputs:
                if (module.name, port.name) not in wired:
                    raise ValueError(
                        f"input port {module.name}.{port.name} is not connected"
                    )
        sink_module, sink_port = self.sink
        if sink_module not in self._modules:
            raise ValueError(f"sink module {sink_module!r} does not exist")
        if sink_port not in {p.name for p in self._modules[sink_module].outputs}:
            raise ValueError(f"sink port {sink_module}.{sink_port} does not exist")

    # -- Execution ----------------------------------------------------------
    def execute(self, instance: Instance) -> WorkflowResult:
        """Run the workflow for one pipeline instance.

        Raises:
            ModuleError: when any module crashes (callers typically map
                this to ``Outcome.FAIL`` via the evaluation layer).
            ValueError: when the instance does not match the space or
                the workflow is malformed.
        """
        self.space.validate(instance)
        self.validate()
        outputs: dict[tuple[str, str], object] = {}
        trace: list[str] = []
        inbound: dict[str, list[Connection]] = {}
        for connection in self._connections:
            inbound.setdefault(connection.target, []).append(connection)

        for name in self.topological_order():
            module = self._modules[name]
            inputs: dict[str, object] = {}
            for connection in inbound.get(name, []):
                inputs[connection.target_port] = outputs[
                    (connection.source, connection.source_port)
                ]
            result = module.run(inputs, instance)
            trace.append(name)
            for port_name, value in result.items():
                outputs[(name, port_name)] = value

        sink_value = outputs[self.sink]
        return WorkflowResult(
            outputs=outputs, sink_value=sink_value, trace=tuple(trace)
        )
