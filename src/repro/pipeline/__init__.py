"""Workflow engine and execution engines (substrates S2-S3).

The paper's pipelines run under a provenance-enabled workflow system
(VisTrails); this subpackage provides the laptop-scale equivalent: a
module DAG engine (:mod:`~repro.pipeline.workflow`), evaluation
adapters (:mod:`~repro.pipeline.evaluation`), and execution engines
including the parallel dispatcher of Section 4.3
(:mod:`~repro.pipeline.runner`).
"""

from .evaluation import WorkflowExecutor, predicate_evaluation, threshold_evaluation
from .module import Module, ModuleError, Port
from .serialization import (
    ModuleRegistry,
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
)
from .runner import (
    CachingExecutor,
    CountingExecutor,
    FlakyExecutor,
    LatencyExecutor,
    ParallelDebugSession,
    ReplayExecutor,
)
from .workflow import Connection, CycleError, Workflow, WorkflowResult

__all__ = [
    "CachingExecutor",
    "Connection",
    "CountingExecutor",
    "CycleError",
    "FlakyExecutor",
    "LatencyExecutor",
    "Module",
    "ModuleError",
    "ModuleRegistry",
    "ParallelDebugSession",
    "Port",
    "ReplayExecutor",
    "Workflow",
    "WorkflowExecutor",
    "WorkflowResult",
    "predicate_evaluation",
    "threshold_evaluation",
    "workflow_from_dict",
    "workflow_from_json",
    "workflow_to_dict",
    "workflow_to_json",
]
