"""Workflow modules: the programs a computational pipeline connects.

A :class:`Module` is one box in Figure 1 of the paper -- "ReadFile",
"TrainTestSplit", "Estimator", "Score", ... -- with named input and
output ports and a set of module-level parameters.  Modules are plain
Python callables wrapped with port metadata; the engine in
:mod:`repro.pipeline.workflow` wires them into a DAG and routes data
between ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

__all__ = ["ModuleError", "Port", "Module"]


class ModuleError(RuntimeError):
    """A module raised during execution; the pipeline instance crashed.

    Crashes are first-class failures in BugDoc's model (the Data
    Polygamy case study debugs crash causes); the evaluation layer maps
    them to ``Outcome.FAIL`` via :class:`~repro.pipeline.evaluation.CrashToFail`.
    """

    def __init__(self, module_name: str, original: BaseException):
        super().__init__(f"module {module_name!r} failed: {original!r}")
        self.module_name = module_name
        self.original = original


@dataclass(frozen=True)
class Port:
    """A named input or output connection point on a module."""

    name: str
    description: str = ""


@dataclass
class Module:
    """One computational step in a workflow.

    The wrapped function receives keyword arguments: one per input port
    (the upstream value) and one per declared parameter (the instance's
    value for it).  It returns either a single value (for modules with
    one output port) or a mapping ``port name -> value``.

    Attributes:
        name: unique name within the workflow.
        func: the computation.
        inputs: input ports, in signature order.
        outputs: output ports; default is a single port called "out".
        parameters: names of the pipeline parameters this module
            consumes.  Parameter names are global to the workflow, so
            two modules may share one (e.g. a random seed).
    """

    name: str
    func: Callable[..., object]
    inputs: Sequence[Port] = field(default_factory=tuple)
    outputs: Sequence[Port] = field(default_factory=lambda: (Port("out"),))
    parameters: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("module name must be non-empty")
        self.inputs = tuple(
            Port(p) if isinstance(p, str) else p for p in self.inputs
        )
        self.outputs = tuple(
            Port(p) if isinstance(p, str) else p for p in self.outputs
        )
        if not self.outputs:
            raise ValueError(f"module {self.name!r} must declare an output port")
        names = [p.name for p in self.inputs] + [p.name for p in self.outputs]
        if len(set(p.name for p in self.inputs)) != len(self.inputs):
            raise ValueError(f"module {self.name!r} has duplicate input ports")
        if len(set(p.name for p in self.outputs)) != len(self.outputs):
            raise ValueError(f"module {self.name!r} has duplicate output ports")
        del names
        self.parameters = tuple(self.parameters)

    def run(
        self,
        inputs: Mapping[str, object],
        parameters: Mapping[str, object],
    ) -> dict[str, object]:
        """Execute the module, normalizing its result to a port mapping.

        Raises:
            ModuleError: wrapping any exception the function raised.
        """
        kwargs: dict[str, object] = {}
        for port in self.inputs:
            if port.name not in inputs:
                raise ModuleError(
                    self.name, KeyError(f"missing input {port.name!r}")
                )
            kwargs[port.name] = inputs[port.name]
        for parameter in self.parameters:
            if parameter not in parameters:
                raise ModuleError(
                    self.name, KeyError(f"missing parameter {parameter!r}")
                )
            kwargs[parameter] = parameters[parameter]
        try:
            result = self.func(**kwargs)
        except ModuleError:
            raise
        except Exception as exc:
            raise ModuleError(self.name, exc) from exc

        port_names = [p.name for p in self.outputs]
        if len(port_names) == 1:
            if isinstance(result, Mapping) and set(result.keys()) == set(port_names):
                return dict(result)
            return {port_names[0]: result}
        if not isinstance(result, Mapping):
            raise ModuleError(
                self.name,
                TypeError(
                    f"module with ports {port_names} must return a mapping, "
                    f"got {type(result).__name__}"
                ),
            )
        missing = set(port_names) - set(result.keys())
        if missing:
            raise ModuleError(
                self.name, KeyError(f"missing output ports: {sorted(missing)}")
            )
        return {name: result[name] for name in port_names}
