"""Execution engines: caching, counting, latency simulation, parallelism,
and historical replay.

The paper's prototype "contains a dispatching component that runs in a
single thread and spawns multiple pipeline instances in parallel" with
"five execution engine workers" (Section 5).  :class:`ParallelDebugSession`
reproduces that architecture on a thread pool: the debugging algorithms
submit batches of independent instances and the dispatcher fans them
out, preserving the session's budget/history accounting.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from ..core.budget import InstanceBudget
from ..core.history import ExecutionHistory
from ..core.session import DebugSession, InstanceUnavailable
from ..core.types import Executor, Instance, Outcome, ParameterSpace
from ..concurrency.scheduler import SharedScheduler
from ..concurrency.singleflight import SingleFlightCache

__all__ = [
    "CountingExecutor",
    "CachingExecutor",
    "LatencyExecutor",
    "FlakyExecutor",
    "ReplayExecutor",
    "ParallelDebugSession",
]


class CountingExecutor:
    """Wraps an executor, counting calls (used by cost accounting tests)."""

    def __init__(self, inner: Executor):
        self._inner = inner
        self._lock = threading.Lock()
        self.calls = 0

    def __call__(self, instance: Instance) -> Outcome:
        with self._lock:
            self.calls += 1
        return self._inner(instance)


class CachingExecutor:
    """Memoizes outcomes per instance (idempotent black box).

    The :class:`~repro.core.session.DebugSession` already avoids
    re-executing instances in its history; this cache is for executors
    shared across *multiple* sessions (e.g. the evaluation harness runs
    several algorithms against one pipeline and the paper charges each
    algorithm only for instances new *to it*).

    Built on the service layer's single-flight primitive: concurrent
    requests for the same uncached instance trigger exactly one inner
    execution -- the earlier implementation only guarded the dict, so
    two racing sessions both ran the pipeline.
    """

    def __init__(self, inner: Executor):
        self._inner = inner
        self._cache = SingleFlightCache()

    def __call__(self, instance: Instance) -> Outcome:
        return self._cache.get_or_execute(  # type: ignore[return-value]
            instance, lambda: self._inner(instance)
        )

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def stats(self):
        """Single-flight :class:`~repro.concurrency.singleflight.CacheStats`."""
        return self._cache.stats


class LatencyExecutor:
    """Adds simulated wall-clock cost per execution.

    Stands in for the paper's expensive pipelines (20-minute Data
    Polygamy runs, 10-hour GAN training) at laptop scale: the Figure 6
    scalability benchmark measures how the parallel dispatcher hides
    this latency.
    """

    def __init__(self, inner: Executor, latency_seconds: float):
        if latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        self._inner = inner
        self._latency = latency_seconds

    def __call__(self, instance: Instance) -> Outcome:
        time.sleep(self._latency)
        return self._inner(instance)


class FlakyExecutor:
    """Failure injection: raises on selected calls.

    Used by the test suite to verify that budget accounting refunds
    crashed executions and that algorithms survive transient executor
    errors.
    """

    def __init__(
        self,
        inner: Executor,
        should_raise: Callable[[int, Instance], bool],
        error_factory: Callable[[], BaseException] = lambda: RuntimeError(
            "injected executor failure"
        ),
    ):
        self._inner = inner
        self._should_raise = should_raise
        self._error_factory = error_factory
        self._lock = threading.Lock()
        self.calls = 0

    def __call__(self, instance: Instance) -> Outcome:
        with self._lock:
            self.calls += 1
            call_index = self.calls
        if self._should_raise(call_index, instance):
            raise self._error_factory()
        return self._inner(instance)


class ReplayExecutor:
    """Historical mode: serves only previously-logged outcomes.

    Section 5.3 (DBSherlock): "it is not possible to derive and run
    additional instances.  We simulated the creation of new instances by
    reading only part of provenance and testing the algorithms on unread
    data, with an early stop when the pipeline instance to be tested was
    not present."  Requests for unlogged instances raise
    :class:`~repro.core.session.InstanceUnavailable`, which the
    algorithms treat as "hypothesis untestable".
    """

    def __init__(self, log: ExecutionHistory):
        self._log = log
        self.misses = 0

    def __call__(self, instance: Instance) -> Outcome:
        outcome = self._log.outcome_of(instance)
        if outcome is None:
            self.misses += 1
            raise InstanceUnavailable(instance)
        return outcome


class ParallelDebugSession(DebugSession):
    """A debug session whose batch evaluation fans out to worker threads.

    Single instances still run inline; ``evaluate_many`` dispatches the
    batch to a pool of ``workers`` threads, mirroring the paper's
    dispatcher-plus-workers prototype.  Because instances in a batch are
    speculatively independent (Section 4.3), some executions may turn
    out to be unnecessary -- that waste is the measured trade-off of
    Figure 6.

    Since the service layer landed, this class is a thin adapter: it
    owns a private :class:`~repro.concurrency.scheduler.SharedScheduler`
    (elastic worker pool, budget-aware dispatch) and plugs it into the
    base session's backend hook.  Multi-job deployments should use
    :class:`~repro.service.service.DebugService` instead, which shares
    one scheduler and execution cache across sessions.

    Budget note: batch items that exhaust the budget mid-flight are
    dropped (their results discarded) rather than aborting the whole
    batch; per-item semantics match serial evaluation.
    """

    def __init__(
        self,
        executor: Executor,
        space: ParameterSpace,
        history: ExecutionHistory | None = None,
        budget: InstanceBudget | None = None,
        workers: int = 5,
        candidate_source=None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._scheduler = SharedScheduler(workers=workers, name="parallel-session")
        super().__init__(
            executor,
            space,
            history=history,
            budget=budget,
            candidate_source=candidate_source,
            backend=self._scheduler.backend("session"),
        )
        self.workers = workers

    @property
    def scheduler(self) -> SharedScheduler:
        """The session-private scheduler (shared ones live in the service)."""
        return self._scheduler

    @property
    def instances_per_worker(self) -> dict[int, int]:
        """Dispatched-request counts keyed by worker slot (diagnostics)."""
        snapshot = self._scheduler.stats_snapshot()
        return dict(snapshot["dispatched_by_worker"])  # type: ignore[call-overload]
