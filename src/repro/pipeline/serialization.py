"""Workflow serialization: persist pipeline *structure* as JSON.

Provenance systems (VisTrails among them) store workflow specifications
so that any logged run can be re-instantiated later.  A workflow's
structure -- parameter space, modules with their ports and parameter
bindings, connections, sink -- serializes cleanly; the module
*computations* are Python callables and are resolved at load time
through a :class:`ModuleRegistry`, the standard pattern for
code-carrying documents (the JSON names the function, the registry
supplies it).

Round-trip contract: ``workflow_from_dict(workflow_to_dict(w), registry)``
reconstructs a workflow that validates identically and executes every
instance to the same results, provided the registry maps each module
name to the same callable.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping

from ..core.types import Parameter, ParameterKind, ParameterSpace
from ..provenance.record import decode_value, encode_value
from .module import Module, Port
from .workflow import Workflow

__all__ = [
    "ModuleRegistry",
    "space_to_dict",
    "space_from_dict",
    "workflow_to_dict",
    "workflow_from_dict",
    "workflow_to_json",
    "workflow_from_json",
]


class ModuleRegistry:
    """Maps module *function names* to callables at load time."""

    def __init__(self, functions: Mapping[str, Callable[..., object]] | None = None):
        self._functions: dict[str, Callable[..., object]] = dict(functions or {})

    def register(self, name: str, func: Callable[..., object]) -> "ModuleRegistry":
        """Register (or replace) one function; returns self for chaining."""
        self._functions[name] = func
        return self

    def resolve(self, name: str) -> Callable[..., object]:
        """Look up a function.

        Raises:
            KeyError: with the list of known names, when absent.
        """
        if name not in self._functions:
            known = ", ".join(sorted(self._functions)) or "(none)"
            raise KeyError(
                f"module function {name!r} not in registry; known: {known}"
            )
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions


def space_to_dict(space: ParameterSpace) -> dict:
    """Serialize a parameter space (values use the typed provenance codec)."""
    return {
        "parameters": [
            {
                "name": parameter.name,
                "kind": parameter.kind.value,
                "domain": [encode_value(v) for v in parameter.domain],
            }
            for parameter in space.parameters
        ]
    }


def space_from_dict(payload: Mapping) -> ParameterSpace:
    """Inverse of :func:`space_to_dict`."""
    parameters = []
    for entry in payload["parameters"]:
        parameters.append(
            Parameter(
                entry["name"],
                tuple(decode_value(v) for v in entry["domain"]),
                ParameterKind(entry["kind"]),
            )
        )
    return ParameterSpace(parameters)


def workflow_to_dict(workflow: Workflow) -> dict:
    """Serialize workflow structure (not module code; see module docs)."""
    sink_module, sink_port = workflow.sink
    return {
        "name": workflow.name,
        "space": space_to_dict(workflow.space),
        "modules": [
            {
                "name": module.name,
                "function": module.name,  # registry key: one function per module
                "inputs": [port.name for port in module.inputs],
                "outputs": [port.name for port in module.outputs],
                "parameters": list(module.parameters),
            }
            for module in workflow.modules
        ],
        "connections": [
            {
                "source": connection.source,
                "source_port": connection.source_port,
                "target": connection.target,
                "target_port": connection.target_port,
            }
            for connection in workflow.connections
        ],
        "sink": {"module": sink_module, "port": sink_port},
    }


def workflow_from_dict(payload: Mapping, registry: ModuleRegistry) -> Workflow:
    """Rebuild a workflow; module callables come from ``registry``.

    Raises:
        KeyError: when a module's function is not registered.
        ValueError: when the payload describes an ill-formed workflow
            (duplicate modules, bad ports, unknown parameters) -- the
            same validation a hand-built workflow gets.
    """
    space = space_from_dict(payload["space"])
    sink = (payload["sink"]["module"], payload["sink"]["port"])
    workflow = Workflow(payload["name"], space, sink=sink)
    for entry in payload["modules"]:
        workflow.add_module(
            Module(
                entry["name"],
                registry.resolve(entry["function"]),
                inputs=tuple(Port(p) for p in entry["inputs"]),
                outputs=tuple(Port(p) for p in entry["outputs"]),
                parameters=tuple(entry["parameters"]),
            )
        )
    for connection in payload["connections"]:
        workflow.connect(
            connection["source"],
            connection["source_port"],
            connection["target"],
            connection["target_port"],
        )
    workflow.validate()
    return workflow


def workflow_to_json(workflow: Workflow, indent: int | None = 2) -> str:
    """JSON text form of :func:`workflow_to_dict`."""
    return json.dumps(workflow_to_dict(workflow), indent=indent, sort_keys=True)


def workflow_from_json(text: str, registry: ModuleRegistry) -> Workflow:
    """Inverse of :func:`workflow_to_json`."""
    return workflow_from_dict(json.loads(text), registry)
