"""Command-line interface: debug the bundled workloads and rerun figures.

Usage (after ``pip install -e .``, which provides the ``repro`` script)::

    repro list
    repro debug gan --algorithm decision_trees --budget 200
    repro debug ml --algorithm shortcut --output json
    repro debug ml --watch
    repro debug dbsherlock --anomaly cpu_saturation
    repro synth --scenario disjunction --pipelines 5
    repro serve ml gan --replicas 3 --workers 8 --output json
    repro serve ml --events jsonl --backend process
    repro serve ml --store runs.db --metrics json
    repro serve ml gan --http 8080 --store runs.db --workers 4
    repro query jobs --store runs.db
    repro query seq suspect_confirmed suspect_refuted --store runs.db
    repro query agg --metric span:solver --stat p95 --group-by workflow \
        --store runs.db

``debug`` runs BugDoc on one of the Section 5.3 workloads and prints
the asserted minimal definitive root causes next to the planted ground
truth (``--output json`` emits the same report machine-readably for
service clients; ``--watch`` streams live progress events while the
search runs, durably when ``--store`` is given).  ``synth`` generates a
synthetic suite and reports FindOne metrics for the chosen algorithm.
``serve`` runs a batch of debugging jobs concurrently on one
:class:`~repro.service.DebugService` -- the shared scheduler and
cross-job execution cache -- and reports per-job results plus
service-level statistics; ``--events jsonl`` streams every job event
as a JSON line while the batch runs, ``--backend process`` executes
the pipelines on a :class:`~repro.exec.ProcessPool` of worker
processes, ``--store`` additionally persists every job's event log
(schema v4), and ``--metrics json`` appends the service metrics
snapshot.  ``serve --http PORT`` runs the always-on HTTP/JSON
front-end instead of a batch: jobs arrive over ``POST /jobs``, stream
their event logs over NDJSON/SSE, and -- with ``--store`` -- ride the
schema-v5 durable job queue, so a killed server resumes queued work
exactly once on restart.  ``query`` is the process-query engine over persisted logs:
``jobs`` lists job rows, ``events`` streams filtered events as JSON
lines, ``seq`` finds jobs matching an ordered event pattern
(SIGNAL-style eventually-follows), and ``agg`` computes grouped
aggregates (count/sum/mean/min/max/p50/p95) over span durations,
event counts, or job columns.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from .core import Algorithm, BugDoc, DDTConfig, DebugSession
from .eval import format_table, match_synthetic, score_find_one
from .exec import EventBus, ExecutorSpec, ProcessPool
from .service import DebugService, JobGoal, JobSpec
from .synth import Scenario, make_suite
from .workloads import data_polygamy, dbsherlock, gan_training, ml_pipeline

WORKLOADS = ("ml", "data_polygamy", "gan", "dbsherlock")
# Workloads with executable simulators (dbsherlock is replay-only, so a
# shared execution pool cannot create new instances for it).
SERVE_WORKLOADS = ("ml", "data_polygamy", "gan")
# Spawn-safe executor builders for --backend process (worker processes
# rebuild the pipeline from these import paths).
WORKLOAD_BUILDERS = {
    "ml": "repro.workloads.ml_pipeline:make_executor",
    "data_polygamy": "repro.workloads.data_polygamy:make_executor",
    "gan": "repro.workloads.gan_training:make_executor",
}


def _algorithm(name: str) -> Algorithm:
    try:
        return Algorithm(name)
    except ValueError:
        valid = ", ".join(a.value for a in Algorithm)
        raise SystemExit(f"unknown algorithm {name!r}; choose from: {valid}")


def _workload_bundle(workload: str):
    """(executor, space, history, true causes, label) for an executable
    workload -- shared by ``debug`` and ``serve``."""
    if workload == "ml":
        executor = ml_pipeline.make_executor()
        return (
            executor,
            ml_pipeline.make_space(),
            ml_pipeline.table1_history(executor),
            [ml_pipeline.true_cause()],
            "ml-classification",
        )
    if workload == "data_polygamy":
        return (
            data_polygamy.make_executor(),
            data_polygamy.make_space(),
            None,
            data_polygamy.true_causes(),
            "data-polygamy",
        )
    return (
        gan_training.make_executor(),
        gan_training.make_space(),
        None,
        gan_training.true_causes(),
        "gan-training",
    )


def _build_debug_target(args):
    """Return (session, true causes, label)."""
    if args.workload == "dbsherlock":
        case = dbsherlock.build_case(args.anomaly, seed=args.seed)
        session = case.make_session(budget=args.budget)
        return session, case.true_causes, f"dbsherlock/{args.anomaly}"
    executor, space, history, true_causes, label = _workload_bundle(
        args.workload
    )
    session = DebugSession(executor, space, history=history)
    return session, true_causes, label


def cmd_list(args) -> int:
    rows = [
        ["ml", "Figure 1 classification pipeline (library-version bug)"],
        ["data_polygamy", "crash debugging, 12 parameters (Section 5.3)"],
        ["gan", "mode-collapse hunting, 6x5 parameters (Section 5.3)"],
        ["dbsherlock", "OLTP anomalies, historical mode (Section 5.3)"],
    ]
    print(format_table(["workload", "description"], rows, title="Workloads"))
    print()
    print("Algorithms: " + ", ".join(a.value for a in Algorithm))
    return 0


def _format_event(event, started: float) -> str:
    """One human-readable progress line for ``repro debug --watch``.

    ``started`` is a ``time.monotonic()`` reading: offsets are computed
    monotonic-minus-monotonic (events stamp ``event.monotonic`` at
    publish).  Wall clocks (``event.timestamp``) can step backwards
    under NTP and must never be subtracted to produce a duration.
    """
    offset = event.monotonic - started
    details = " ".join(f"{k}={v}" for k, v in event.payload.items())
    return f"[{offset:7.2f}s] {event.kind:<18} {details}".rstrip()


def cmd_debug(args) -> int:
    session, true_causes, label = _build_debug_target(args)
    if args.budget is not None and session.budget.limit is None:
        session.budget._limit = args.budget  # noqa: SLF001 - CLI convenience
    algorithm = _algorithm(args.algorithm)
    bugdoc = BugDoc(session=session, seed=args.seed)

    def run_search():
        if algorithm in (Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT):
            return bugdoc.find_one(algorithm)
        return bugdoc.find_all(
            algorithm,
            ddt_config=DDTConfig(
                find_all=True, tests_per_suspect=args.tests_per_suspect,
                seed=args.seed,
            ),
        )

    started = time.perf_counter()
    mono_started = time.monotonic()
    if args.watch:
        # Live progress: the search runs on a worker thread publishing
        # to a local event bus; the main thread streams the events.
        # With --output json the event lines go to stderr so stdout
        # stays a single machine-readable document.  With --store the
        # bus is durable: the watch stream is also written through to
        # the schema-v4 event log, queryable later via `repro query`
        # (a rerun under the same label replaces the prior log).
        store = None
        if getattr(args, "store", None) is not None:
            from .obs import DurableEventBus
            from .provenance import SQLiteProvenanceStore

            store = SQLiteProvenanceStore(args.store)
            bus: EventBus = DurableEventBus(store)
            bus.publish(
                label,
                "submitted",
                {"workflow": label, "algorithm": algorithm.value},
            )
        else:
            bus = EventBus()
        session.progress = bus.publisher(label)
        sink = sys.stderr if args.output == "json" else sys.stdout
        box: dict[str, object] = {}

        def worker() -> None:
            try:
                box["report"] = run_search()
            except BaseException as error:
                box["error"] = error
            finally:
                try:
                    bus.publish(
                        label,
                        "finished",
                        {
                            "status": (
                                "failed" if "error" in box else "succeeded"
                            ),
                            "budget_spent": session.budget.spent,
                            "wall_seconds": time.perf_counter() - started,
                        },
                        close=True,
                    )
                except Exception:
                    pass

        thread = threading.Thread(
            target=worker, name="repro-debug-watch", daemon=True
        )
        thread.start()
        for event in bus.events(label):
            if not event.terminal:
                print(_format_event(event, mono_started), file=sink, flush=True)
        thread.join()
        if store is not None:
            bus.close()  # type: ignore[union-attr]
            store.close()
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        report = box["report"]
    else:
        report = run_search()
    elapsed = time.perf_counter() - started

    if args.output == "json":
        payload = {
            "workload": label,
            "algorithm": algorithm.value,
            "causes": [str(cause) for cause in report.causes],
            "ground_truth": [str(cause) for cause in true_causes],
            "instances_executed": report.instances_executed,
            "budget": {
                "limit": session.budget.limit,
                "spent": session.budget.spent,
                "exhausted": report.budget_exhausted,
            },
            "wall_seconds": elapsed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"workload: {label}")
    print(f"algorithm: {algorithm.value}")
    print(f"instances executed: {report.instances_executed}  "
          f"({elapsed:.2f}s wall)")
    print("\nasserted minimal definitive root causes:")
    if report.causes:
        for cause in report.causes:
            print(f"  - {cause}")
    else:
        print("  (none)")
    print("\nplanted ground truth:")
    for cause in true_causes:
        print(f"  - {cause}")
    return 0


def _serve_specs(workload: str, args) -> list[JobSpec]:
    """Build all replica jobs for one workload.

    The (deterministic) executor and any seed history are built once
    and shared: replicas are separate jobs, but re-running e.g. the ml
    Table 1 instances per replica would waste the very executions the
    service deduplicates.  (The service copies the history per session,
    so sharing the object across specs is safe.)
    """
    executor, space, history, _, _ = _workload_bundle(workload)
    algorithm = _algorithm(args.algorithm)
    goal = (
        JobGoal.FIND_ONE
        if algorithm in (Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT)
        else JobGoal.FIND_ALL
    )
    executor_spec = None
    if getattr(args, "backend", "inline") in ("process", "remote"):
        executor_spec = ExecutorSpec.from_builder(WORKLOAD_BUILDERS[workload])
    from .obs.trace import TraceContext

    return [
        JobSpec(
            job_id=f"{workload}-r{replica}",
            executor=executor,
            executor_spec=executor_spec,
            space=space,
            workflow=workload,
            algorithm=algorithm,
            goal=goal,
            budget=args.budget,
            history=history,
            seed=args.seed + replica,
            parallel_batches=args.parallel_batches,
            # One root context per job, minted here at the CLI edge:
            # every event the job publishes anywhere (service, pool
            # worker, fleet worker) carries this trace_id.
            trace=TraceContext.new().to_payload(),
        )
        for replica in range(args.replicas)
    ]


def _http_templates(workloads) -> dict:
    """Named submit templates for the HTTP front-end, one per workload.

    Each template is a durable-queue payload skeleton (executor wire
    spec + parameter-space tables); a ``POST /jobs`` body that names
    the workload inherits it and only has to add a ``job_id``.  Spaces
    come from ``make_space()`` directly -- templates must stay cheap,
    so no executor (or ml Table 1 history) is built here.
    """
    from .service import space_to_payload

    spaces = {
        "ml": ml_pipeline.make_space,
        "data_polygamy": data_polygamy.make_space,
        "gan": gan_training.make_space,
    }
    return {
        workload: {
            "workflow": workload,
            "algorithm": "combined",
            "goal": "find_all",
            "executor_spec": ExecutorSpec.from_builder(
                WORKLOAD_BUILDERS[workload]
            ).to_wire(),
            "space": space_to_payload(spaces[workload]()),
        }
        for workload in workloads
    }


def _cmd_serve_http(args, workloads) -> int:
    """``repro serve --http PORT``: the always-on HTTP/JSON service.

    Jobs arrive over HTTP instead of as a fixed batch.  With --store
    the durable job queue makes submissions crash-safe: on start-up
    the queue is recovered, so jobs queued when a previous incarnation
    was killed resume exactly once and finished jobs replay from the
    persisted ``jobs``/``job_events`` tables with zero re-execution.
    """
    import signal

    from .service import DebugServiceHTTP, TenantQuota

    store = None
    if args.store is not None:
        from .provenance import SQLiteProvenanceStore

        store = SQLiteProvenanceStore(args.store)
    pool = None
    fleet_procs = []
    if args.backend == "process":
        pool = ProcessPool(
            max_workers=args.workers,
            prewarm=min(2, args.workers),
            store_path=args.store,
        )
    elif args.backend == "remote":
        import subprocess

        from .exec import RemoteWorkerPool

        pool = RemoteWorkerPool(store=store, max_dispatch=args.workers)
        for index in range(args.fleet):
            fleet_procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        pool.endpoint,
                        "--name",
                        f"http-w{index}",
                        "--reconnect",
                        "3",
                    ]
                )
            )
        if args.fleet and not pool.wait_for_workers(1, timeout=30.0):
            print(
                "warning: no fleet worker joined; runs fall back locally",
                file=sys.stderr,
            )
    quotas = {}
    for raw in args.quota or []:
        try:
            tenant, caps = raw.split("=", 1)
            max_active_text, __, priority_text = caps.partition(":")
            quotas[tenant] = TenantQuota(
                max_active=int(max_active_text),
                priority=int(priority_text) if priority_text else 1,
            )
        except ValueError:
            raise SystemExit(
                f"--quota must be TENANT=MAX_ACTIVE[:PRIORITY], got {raw!r}"
            )
    service = DebugService(
        workers=args.workers,
        store=store,
        pool=pool,
        autoscale=args.autoscale,
        # The HTTP tier maps tenant quotas onto JobSpec.priority, so
        # the scheduler must honor priorities as proportional weights;
        # the controller pool is sized to the worker count.
        weighted_fairness=True,
        max_concurrent_jobs=max(args.workers, 1),
    )
    api = DebugServiceHTTP(
        service,
        store=store,
        port=args.http,
        templates=_http_templates(workloads),
        quotas=quotas,
    )
    resume_report = api.resume()
    retention = None
    if store is not None and args.compact_interval > 0:
        from .obs.retention import RetentionPolicy, RetentionThread

        retention = RetentionThread(
            store,
            RetentionPolicy(max_age_seconds=args.compact_max_age),
            interval_seconds=args.compact_interval,
        ).start()

    def _terminate(signum, frame):  # noqa: ARG001 - signal contract
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    # The banner is machine-readable: smoke tests bind port 0 and read
    # the real port back from this line.
    print(
        json.dumps(
            {
                "serving": {
                    "host": api.host,
                    "port": api.port,
                    "workloads": list(workloads),
                    "durable": api.queue is not None,
                    "resume": resume_report,
                }
            },
            sort_keys=True,
        ),
        flush=True,
    )
    try:
        api.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if retention is not None:
            retention.stop()
        api.shutdown()
        service.shutdown()
        if pool is not None:
            pool.shutdown()
        for proc in fleet_procs:
            proc.terminate()
        for proc in fleet_procs:
            try:
                proc.wait(timeout=5.0)
            except Exception:
                proc.kill()
        if store is not None:
            store.close()
    return 0


def cmd_serve(args) -> int:
    """Run many debugging jobs concurrently on one DebugService."""
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.replicas < 1:
        raise SystemExit("--replicas must be at least 1")
    # Dedupe while preserving order: `serve gan gan` would otherwise
    # build colliding job ids.
    workloads = list(dict.fromkeys(args.workloads or SERVE_WORKLOADS))
    for workload in workloads:
        if workload not in SERVE_WORKLOADS:
            raise SystemExit(
                f"workload {workload!r} not servable; choose from: "
                + ", ".join(SERVE_WORKLOADS)
            )
    if args.http is not None:
        return _cmd_serve_http(args, workloads)
    store = None
    if args.store is not None:
        from .provenance import SQLiteProvenanceStore

        store = SQLiteProvenanceStore(args.store)
    specs = [
        spec for workload in workloads for spec in _serve_specs(workload, args)
    ]
    pool = None
    fleet_procs = []
    if args.backend == "process":
        pool = ProcessPool(
            max_workers=args.workers,
            prewarm=min(2, args.workers),
            store_path=args.store,
        )
    elif args.backend == "remote":
        import subprocess

        from .exec import RemoteWorkerPool

        pool = RemoteWorkerPool(store=store, max_dispatch=args.workers)
        for index in range(args.fleet):
            fleet_procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        pool.endpoint,
                        "--name",
                        f"serve-w{index}",
                        "--reconnect",
                        "3",
                    ]
                )
            )
        if args.fleet and not pool.wait_for_workers(1, timeout=30.0):
            print(
                "warning: no fleet worker joined; runs fall back locally",
                file=sys.stderr,
            )
    started = time.perf_counter()
    try:
        with DebugService(
            workers=args.workers,
            store=store,
            pool=pool,
            autoscale=args.autoscale,
        ) as service:
            if args.events == "jsonl":
                # Subscribe before submitting: the firehose has no
                # replay, so the subscription must exist before the
                # first event can fire.
                stream = service.events.stream()
                handles = [service.submit(spec) for spec in specs]
                finished = 0
                for event in stream:
                    print(
                        json.dumps(event.to_dict(), sort_keys=True),
                        flush=True,
                    )
                    if event.kind == "finished":
                        finished += 1
                        if finished == len(handles):
                            break
                results = [handle.result() for handle in handles]
            else:
                results = service.run_all(specs)
            elapsed = time.perf_counter() - started
            cache_stats = service.cache.stats.snapshot()
            scheduler_stats = service.scheduler.stats_snapshot()
            service_stats = service.stats()
            metrics_snapshot = (
                service.metrics.snapshot() if args.metrics == "json" else None
            )
    finally:
        if pool is not None:
            pool.shutdown()
        for proc in fleet_procs:
            proc.terminate()
        for proc in fleet_procs:
            try:
                proc.wait(timeout=5.0)
            except Exception:
                proc.kill()
        if store is not None:
            store.close()

    if args.output == "json":
        # Per-job entries carry their own wall_seconds and cache stats
        # (requests / hits / executions), so the batch summary agrees
        # with the per-job progress events instead of reporting only
        # service-wide aggregates.
        print(
            json.dumps(
                {
                    "jobs": [result.to_dict() for result in results],
                    "service": {
                        "workers": args.workers,
                        "backend": args.backend,
                        "wall_seconds": elapsed,
                        "cache": cache_stats,
                        "scheduler": scheduler_stats,
                        "pool": pool.stats() if pool is not None else None,
                        "events": service_stats.get("events"),
                    },
                    "metrics": metrics_snapshot,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if all(result.succeeded for result in results) else 1

    rows = [
        [
            result.job_id,
            result.status.value,
            "; ".join(str(c) for c in result.report.causes)
            if result.report is not None and result.report.causes
            else "(none)",
            str(result.new_executions),
            str(result.cache_stats.get("hits", 0))
            if result.cache_stats
            else "-",
            # Per-job columnar-engine health: reference-path fallbacks
            # (0 on clean runs) / compile-cache hits / store shards x
            # parallel fan-outs.
            f"{result.engine_stats['fallbacks']}"
            f"/{result.engine_stats['compile_hits']}"
            f"/{result.engine_stats.get('shards', 1)}"
            f"x{result.engine_stats.get('parallel_queries', 0)}"
            if result.engine_stats
            else "-",
            f"{result.wall_seconds:.2f}s",
        ]
        for result in results
    ]
    print(
        format_table(
            [
                "job",
                "status",
                "causes",
                "executed",
                "cache hits",
                "fb/ch/shxpq",
                "wall",
            ],
            rows,
            title=f"DebugService: {len(results)} jobs, {args.workers} workers",
        )
    )
    print()
    print(
        f"service wall: {elapsed:.2f}s  "
        f"pipeline executions: {cache_stats['executions']:.0f}  "
        f"cache hit rate: {cache_stats['hit_rate']:.0%}  "
        f"coalesced in-flight: {cache_stats['coalesced']:.0f}"
    )
    print(
        f"scheduler: {scheduler_stats['dispatched']} dispatched, "
        f"{scheduler_stats['skipped']} budget-skipped"
    )
    pool_stats = service_stats.get("pool")
    if pool_stats is not None and "spawned" in pool_stats:
        print(
            f"pool: {pool_stats['runs']} runs, "
            f"{pool_stats['store_hits']} store hits, "
            f"{pool_stats['spawned']} spawned, "
            f"{pool_stats['crashes']} crashes, "
            f"{pool_stats['timeouts']} timeouts, "
            f"{pool_stats['retries']} retries"
        )
    elif pool_stats is not None:
        print(
            f"fleet: {pool_stats['runs']} runs "
            f"({pool_stats['local_runs']} local), "
            f"{pool_stats['store_hits']} store hits, "
            f"{pool_stats['workers_joined']} joined, "
            f"{pool_stats['workers_evicted']} evicted, "
            f"{pool_stats['workers_rejoined']} rejoined, "
            f"{pool_stats['redispatches']} redispatched"
        )
    event_stats = service_stats.get("events")
    if event_stats is not None:
        print(
            f"event log: {event_stats['flushed']} persisted, "
            f"{event_stats['dropped']} dropped, "
            f"{event_stats['errors']} errors"
        )
    if metrics_snapshot is not None:
        print(json.dumps({"metrics": metrics_snapshot}, sort_keys=True))
    for result in results:
        if result.error is not None:
            print(f"{result.job_id} error: {result.error!r}")
    return 0 if all(result.succeeded for result in results) else 1


def cmd_worker(args) -> int:
    """Join a remote execution fleet and serve runs until dismissed."""
    host, __, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"--connect must be HOST:PORT, got {args.connect!r}")
    from .exec.remote import FleetWorker

    worker = FleetWorker(
        host or "127.0.0.1",
        port,
        name=args.name,
        reconnect_attempts=args.reconnect,
        max_runs=args.max_runs,
    )
    try:
        worker.run_forever()
    except KeyboardInterrupt:
        worker.stop()
    except ConnectionError as error:
        raise SystemExit(str(error))
    return 0


def cmd_query(args) -> int:
    """Process queries over a store's persisted job event logs."""
    from .obs.query import Predicate, QueryEngine
    from .provenance import SQLiteProvenanceStore

    store = SQLiteProvenanceStore(args.store)
    try:
        return _run_query(args, QueryEngine(store), Predicate)
    except BrokenPipeError:
        # Downstream pipe (head, grep -q) closed early; not an error.
        sys.stderr.close()
        return 0
    finally:
        store.close()


def _run_query(args, engine, Predicate) -> int:
    if args.query_command == "jobs":
        rows = engine.jobs(
            workflow=args.workflow, limit=args.limit, offset=args.offset
        )
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if args.query_command == "events":
        try:
            predicates = [Predicate.parse(e) for e in args.where]
        except ValueError as error:
            raise SystemExit(str(error))
        for row in engine.events(
            workflow=args.workflow,
            kinds=args.kind or None,
            predicates=predicates,
            limit=args.limit,
            offset=args.offset,
        ):
            print(json.dumps(row, sort_keys=True))
        return 0
    if args.query_command == "seq":
        matches = engine.sequence(
            args.pattern,
            workflow=args.workflow,
            limit=args.limit,
            offset=args.offset,
        )
        print(
            json.dumps(
                {
                    "pattern": args.pattern,
                    "count": len(matches),
                    "matches": matches,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if args.query_command == "trace":
        print(json.dumps(engine.trace(args.trace_id), indent=2, sort_keys=True))
        return 0
    try:
        groups = engine.aggregate(
            args.metric,
            stat=args.stat,
            group_by=args.group_by,
            workflow=args.workflow,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(
        json.dumps(
            {
                "metric": args.metric,
                "stat": args.stat,
                "group_by": args.group_by,
                "groups": groups,
                "rollup": {
                    "hits": engine.rollup_hits,
                    "misses": engine.rollup_misses,
                },
            },
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def cmd_compact(args) -> int:
    """One retention sweep: roll aged terminal jobs into summaries."""
    from .obs.retention import RetentionPolicy, compact
    from .provenance import SQLiteProvenanceStore

    if not args.compact_all and args.max_age is None and args.max_raw_jobs is None:
        raise SystemExit(
            "pass --max-age and/or --max-raw-jobs (or --all to compact"
            " every terminal job)"
        )
    policy = RetentionPolicy(
        max_age_seconds=args.max_age, max_raw_jobs=args.max_raw_jobs
    )
    store = SQLiteProvenanceStore(args.store)
    try:
        report = compact(
            store, policy, workflow=args.workflow, compact_all=args.compact_all
        )
    finally:
        store.close()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_dashboard(args) -> int:
    """Render the longitudinal regression dashboard (canonical JSON)."""
    from .obs.dashboard import build_dashboard, diff_dashboards, render_dashboard
    from .provenance import SQLiteProvenanceStore

    store = SQLiteProvenanceStore(args.store)
    try:
        document = build_dashboard(
            store, workflow=args.workflow, bucket_seconds=args.bucket
        )
    finally:
        store.close()
    if args.diff is not None:
        with open(args.diff, encoding="utf-8") as handle:
            baseline = json.load(handle)
        lines = diff_dashboards(baseline, document)
        if not lines:
            print("dashboard matches baseline")
            return 0
        for line in lines:
            print(line)
        return 1
    sys.stdout.write(render_dashboard(document))
    return 0


def cmd_synth(args) -> int:
    scenario = Scenario(args.scenario)
    suite = make_suite(
        scenario,
        args.pipelines,
        seed=args.seed,
        min_parameters=3,
        max_parameters=7,
        min_values=5,
        max_values=10,
    )
    algorithm = _algorithm(args.algorithm)
    reports = []
    budgets = []
    import random as random_module

    for index, pipeline in enumerate(suite):
        rng = random_module.Random(args.seed + index)
        session = DebugSession(
            pipeline.oracle,
            pipeline.space,
            history=pipeline.initial_history(rng),
        )
        bugdoc = BugDoc(session=session, seed=args.seed + index)
        if algorithm in (Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT):
            result = bugdoc.find_one(algorithm)
        else:
            result = bugdoc.find_one(
                algorithm, ddt_config=DDTConfig(find_all=False, seed=index)
            )
        budgets.append(result.instances_executed)
        reports.append(
            match_synthetic(
                result.causes,
                pipeline.true_causes,
                pipeline.space,
                pipeline.oracle,
                seed=index,
            )
        )
    prf = score_find_one(reports)
    print(f"scenario: {scenario.value}  pipelines: {len(suite)}")
    print(f"algorithm: {algorithm.value}")
    print(f"mean instances executed: {sum(budgets) / len(budgets):.1f}")
    print(f"FindOne {prf}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BugDoc reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and algorithms")

    debug = sub.add_parser("debug", help="debug a bundled workload")
    debug.add_argument("workload", choices=WORKLOADS)
    debug.add_argument(
        "--algorithm", default="combined", help="shortcut | stacked_shortcut | decision_trees | combined"
    )
    debug.add_argument("--budget", type=int, default=None)
    debug.add_argument("--seed", type=int, default=0)
    debug.add_argument("--tests-per-suspect", type=int, default=24)
    debug.add_argument(
        "--anomaly",
        default="cpu_saturation",
        choices=dbsherlock.ANOMALY_CLASSES,
        help="dbsherlock anomaly class",
    )
    debug.add_argument(
        "--output",
        default="text",
        choices=("text", "json"),
        help="report format (json is machine-readable for service clients)",
    )
    debug.add_argument(
        "--watch",
        action="store_true",
        help="stream live progress events (rounds, confirmations, budget)"
        " while the search runs; with --output json they go to stderr",
    )
    debug.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="with --watch: persist the event stream to this SQLite"
        " store so 'repro query' can replay it later",
    )

    serve = sub.add_parser(
        "serve", help="run a batch of debugging jobs on one shared service"
    )
    serve.add_argument(
        "workloads",
        nargs="*",
        metavar="workload",
        help=f"workloads to serve (default: all of {', '.join(SERVE_WORKLOADS)})",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="jobs per workload (distinct seeds; they share the cache)",
    )
    serve.add_argument("--algorithm", default="combined")
    serve.add_argument("--budget", type=int, default=None)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--workers", type=int, default=5)
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="SQLite provenance database backing the persistent cache tier",
    )
    serve.add_argument(
        "--parallel-batches",
        action="store_true",
        help="fan each job's speculative batches out on the shared pool",
    )
    serve.add_argument(
        "--backend",
        default="inline",
        choices=("inline", "process", "remote"),
        help="where pipelines execute: in-process (inline), on a pool"
        " of worker processes sized to --workers (process), or on a"
        " remote worker fleet joined over sockets (remote)",
    )
    serve.add_argument(
        "--fleet",
        type=int,
        default=2,
        help="with --backend remote: local worker subprocesses spawned"
        " to join the fleet (0 spawns none; point external 'repro"
        " worker --connect' members at the printed endpoint instead)",
    )
    serve.add_argument(
        "--autoscale",
        action="store_true",
        help="grow/shrink the execution pool from live scheduler queue"
        " depth instead of keeping its construction size",
    )
    serve.add_argument(
        "--events",
        default="none",
        choices=("none", "jsonl"),
        help="stream every job progress event as a JSON line to stdout"
        " while the batch runs",
    )
    serve.add_argument(
        "--metrics",
        default="none",
        choices=("none", "json"),
        help="print the service metrics snapshot (counters, gauges,"
        " histogram percentiles) after the batch",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve an HTTP/JSON API on this port instead of running a"
        " batch (0 picks an ephemeral port, echoed in the banner);"
        " with --store, submissions ride the durable job queue and a"
        " restart resumes queued work exactly once",
    )
    serve.add_argument(
        "--quota",
        action="append",
        default=None,
        metavar="TENANT=MAX_ACTIVE[:PRIORITY]",
        help="with --http: per-tenant admission quota (max in-flight"
        " jobs, 429 beyond) and default scheduler weight (repeatable)",
    )
    serve.add_argument(
        "--compact-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --http and --store: run a background retention sweep"
        " this often (0 disables); terminal jobs older than"
        " --compact-max-age roll into summaries",
    )
    serve.add_argument(
        "--compact-max-age",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="age bound for the background sweep (last event older than"
        " this compacts)",
    )
    serve.add_argument(
        "--output", default="text", choices=("text", "json")
    )

    worker = sub.add_parser(
        "worker", help="join a remote execution fleet as one worker"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's fleet endpoint (see 'repro serve"
        " --backend remote')",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="stable fleet identity (rejoining under the same name"
        " resumes the membership slot); default: hostname-pid",
    )
    worker.add_argument(
        "--reconnect",
        type=int,
        default=5,
        help="redial attempts after a dead transport before giving up",
    )
    worker.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="leave the fleet after executing this many runs",
    )

    query = sub.add_parser(
        "query", help="process queries over persisted job event logs"
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)

    def _query_common(p) -> None:
        p.add_argument(
            "--store",
            required=True,
            metavar="PATH",
            help="SQLite store holding the persisted event logs",
        )
        p.add_argument(
            "--workflow", default=None, help="restrict to one workflow"
        )

    def _query_paging(p) -> None:
        p.add_argument(
            "--limit",
            type=int,
            default=None,
            help="return at most this many results (paged in the store,"
            " not materialized)",
        )
        p.add_argument(
            "--offset",
            type=int,
            default=None,
            help="skip this many results first (page with --limit)",
        )

    q_jobs = query_sub.add_parser("jobs", help="list persisted jobs")
    _query_common(q_jobs)
    _query_paging(q_jobs)

    q_events = query_sub.add_parser(
        "events", help="stream matching events as JSON lines"
    )
    _query_common(q_events)
    q_events.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="event kind filter (repeatable)",
    )
    q_events.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD OP VALUE",
        help="predicate like 'data.remaining<100' or 'kind=span'"
        " (repeatable; all must hold)",
    )
    _query_paging(q_events)

    q_seq = query_sub.add_parser(
        "seq",
        help="find jobs whose stream contains the kinds in order"
        " (eventually-follows)",
    )
    _query_common(q_seq)
    _query_paging(q_seq)
    q_seq.add_argument(
        "pattern",
        nargs="+",
        metavar="KIND[ FIELD OP VALUE]",
        help="ordered event steps; a step may carry a payload predicate,"
        " e.g. 'suspect_confirmed' 'suspect_refuted'",
    )

    q_trace = query_sub.add_parser(
        "trace",
        help="rebuild the causal span tree for one trace id (spans from"
        " every process/machine the job touched)",
    )
    _query_common(q_trace)
    q_trace.add_argument("trace_id", help="the trace_id stamped on events")

    q_agg = query_sub.add_parser(
        "agg", help="aggregate span durations / event counts across jobs"
    )
    _query_common(q_agg)
    q_agg.add_argument(
        "--metric",
        required=True,
        help="span:<name> (seconds), count:<kind>, or a numeric jobs"
        " column such as budget_spent",
    )
    q_agg.add_argument(
        "--stat",
        default="p95",
        choices=("count", "sum", "mean", "min", "max", "p50", "p95"),
    )
    q_agg.add_argument(
        "--group-by",
        default=None,
        choices=("workflow", "spec_fingerprint", "algorithm", "status"),
    )

    compact_p = sub.add_parser(
        "compact",
        help="roll terminal jobs' raw events into summaries (retention)",
    )
    compact_p.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="SQLite store to compact (safe while a service is writing)",
    )
    compact_p.add_argument(
        "--workflow", default=None, help="restrict to one workflow"
    )
    compact_p.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="compact terminal jobs whose last event is older than this",
    )
    compact_p.add_argument(
        "--max-raw-jobs",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N terminal jobs raw; oldest beyond compact",
    )
    compact_p.add_argument(
        "--all",
        dest="compact_all",
        action="store_true",
        help="compact every terminal job regardless of age/count bounds",
    )

    dash = sub.add_parser(
        "dashboard",
        help="longitudinal per-workflow trajectories from job summaries",
    )
    dash.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="SQLite store holding jobs and summaries",
    )
    dash.add_argument(
        "--workflow", default=None, help="restrict to one workflow"
    )
    dash.add_argument(
        "--bucket",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="time-bucket width for the trajectories",
    )
    dash.add_argument(
        "--diff",
        default=None,
        metavar="PATH",
        help="compare against a baseline dashboard JSON; exit 1 and"
        " print the differences when the trajectories moved",
    )

    synth = sub.add_parser("synth", help="run a synthetic FindOne experiment")
    synth.add_argument(
        "--scenario",
        default="single",
        choices=[s.value for s in Scenario],
    )
    synth.add_argument("--pipelines", type=int, default=5)
    synth.add_argument("--algorithm", default="decision_trees")
    synth.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "debug":
        return cmd_debug(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "worker":
        return cmd_worker(args)
    if args.command == "query":
        return cmd_query(args)
    if args.command == "compact":
        return cmd_compact(args)
    if args.command == "dashboard":
        return cmd_dashboard(args)
    return cmd_synth(args)


if __name__ == "__main__":
    sys.exit(main())
